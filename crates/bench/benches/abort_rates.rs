//! §6.1 text claim — "the read-only transactions aborted due to version
//! inconsistency are below 2.5 % out of the total number of transactions
//! in all experiments" — plus the same-version-routing ablation: the
//! scheduler policy that keeps aborts low (DESIGN.md ablation 2).

use dmv_bench::{banner, shape_check, SEED};
use dmv_common::clock::TimeScale;
use dmv_core::cluster::{ClusterSpec, DmvCluster};
use dmv_tpcw::backend::{load_cluster, Backend};
use dmv_tpcw::emulator::{run_emulator, EmulatorConfig};
use dmv_tpcw::interactions::IdAllocator;
use dmv_tpcw::populate::{generate, TpcwScale};
use dmv_tpcw::schema::tpcw_schema;
use dmv_tpcw::Mix;
use std::sync::Arc;
use std::time::Duration;

const TIME_SCALE: f64 = 0.25;

fn run_once(mix: Mix, slaves: usize, same_version_routing: bool) -> f64 {
    let scale = TpcwScale::small();
    let mut spec = ClusterSpec::new(tpcw_schema(), TimeScale::new(TIME_SCALE));
    spec.n_slaves = slaves;
    spec.same_version_routing = same_version_routing;
    spec.detect_interval = Duration::from_millis(500);
    let cluster = DmvCluster::start(spec);
    let pop = generate(scale, SEED);
    load_cluster(&cluster, &pop).expect("population loads");
    cluster.finish_load();
    let ids = Arc::new(IdAllocator::from_population(scale, &pop));
    let backend = Backend::Dmv(cluster.session());
    let cfg = EmulatorConfig {
        mix,
        n_clients: 24,
        think_time: Duration::from_millis(150),
        duration: Duration::from_secs(10),
        warmup: Duration::from_secs(2),
        retries: 30,
        seed: SEED,
        series_window: Duration::from_secs(2),
    };
    let _ = run_emulator(&backend, cluster.clock(), &ids, scale, cfg);
    let rate = cluster.version_abort_rate();
    cluster.shutdown();
    rate
}

fn main() {
    banner("Abort rates", "version-conflict aborts (< 2.5% in all paper experiments)");
    let mut ok = true;
    let mut with_routing = Vec::new();
    for mix in Mix::ALL {
        for slaves in [2usize, 4] {
            let rate = run_once(mix, slaves, true);
            println!(
                "  {mix:>9} mix, {slaves} slaves, version-aware routing: {:.2}%",
                rate * 100.0
            );
            with_routing.push(rate);
            ok &= shape_check(
                &format!("{mix}/{slaves} slaves under 2.5%"),
                rate < 0.025,
                &format!("{:.2}%", rate * 100.0),
            );
        }
    }

    println!("\n--- ablation: plain load balancing (no same-version preference) ---");
    let ablated = run_once(Mix::Ordering, 4, false);
    let routed = run_once(Mix::Ordering, 4, true);
    println!(
        "  ordering mix, 4 slaves: routed {:.2}% vs plain {:.2}%",
        routed * 100.0,
        ablated * 100.0
    );
    ok &= shape_check(
        "version-aware routing does not increase aborts",
        routed <= ablated + 0.01,
        &format!("routed {:.2}% vs plain {:.2}%", routed * 100.0, ablated * 100.0),
    );
    println!("\nAbort-rate experiment overall: {}", if ok { "PASS" } else { "FAIL" });
}
