//! Figure 3 — throughput scaling of the DMV in-memory tier vs a
//! stand-alone InnoDB-style on-disk database, for the browsing,
//! shopping and ordering TPC-W mixes with 1, 2, 4 and 8 slaves.
//!
//! Paper result: with 8 slaves the in-memory tier beats InnoDB by
//! ×14.6 (browsing), ×17.6 (shopping) and ×6.5 (ordering); browsing and
//! shopping scale near-linearly with slaves while ordering scales worse
//! (master saturation from update/index work).
//!
//! Absolute WIPS differ from the paper (simulated substrate, scaled
//! database); the shape checks assert the *relative* results.

use dmv_bench::{banner, deploy_disk, deploy_dmv, shape_check, DmvOptions, SEED};
use dmv_tpcw::emulator::{run_emulator, EmulatorConfig};
use dmv_tpcw::populate::TpcwScale;
use dmv_tpcw::Mix;
use std::collections::HashMap;
use std::time::Duration;

const TIME_SCALE: f64 = 0.25;
const SLAVE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn emulator_cfg(mix: Mix) -> EmulatorConfig {
    EmulatorConfig {
        mix,
        n_clients: 32,
        think_time: Duration::from_millis(150),
        duration: Duration::from_secs(8),
        warmup: Duration::from_secs(3),
        retries: 20,
        seed: SEED,
        series_window: Duration::from_secs(2),
    }
}

fn main() {
    banner("Figure 3", "DMV in-memory tier vs stand-alone InnoDB (peak WIPS)");
    let scale = TpcwScale::small();
    let mut wips: HashMap<(Mix, String), f64> = HashMap::new();

    for mix in Mix::ALL {
        println!("\n--- {mix} mix ({}% updates) ---", (mix.update_fraction() * 100.0).round());

        // Stand-alone on-disk baseline (buffer pool ~40% of the DB).
        let (_db, backend, ids, clock) = deploy_disk(scale, TIME_SCALE, 0.4);
        let report = run_emulator(&backend, clock, &ids, scale, emulator_cfg(mix));
        println!(
            "  InnoDB baseline : {:8.1} WIPS   mean {:6.1} ms   p90 {:6.1} ms",
            report.wips,
            report.mean_latency.as_secs_f64() * 1e3,
            report.p90_latency.as_secs_f64() * 1e3
        );
        wips.insert((mix, "innodb".into()), report.wips);

        for n in SLAVE_COUNTS {
            let d = deploy_dmv(scale, TIME_SCALE, DmvOptions { slaves: n, ..Default::default() });
            let report = run_emulator(&d.backend, d.clock, &d.ids, scale, emulator_cfg(mix));
            println!(
                "  DMV {n} slave(s) : {:8.1} WIPS   mean {:6.1} ms   p90 {:6.1} ms   aborts {:.2}%",
                report.wips,
                report.mean_latency.as_secs_f64() * 1e3,
                report.p90_latency.as_secs_f64() * 1e3,
                d.cluster.version_abort_rate() * 100.0
            );
            wips.insert((mix, format!("dmv{n}")), report.wips);
            d.cluster.shutdown();
        }

        let base = wips[&(mix, "innodb".to_string())];
        print!("  speedup vs InnoDB:");
        for n in SLAVE_COUNTS {
            print!("  {}sl ×{:.1}", n, wips[&(mix, format!("dmv{n}"))] / base);
        }
        println!();
    }

    println!("\n--- shape checks ---");
    let mut ok = true;
    for mix in Mix::ALL {
        let base = wips[&(mix, "innodb".to_string())];
        let best = wips[&(mix, "dmv8".to_string())];
        ok &= shape_check(
            &format!("{mix}: DMV(8) beats InnoDB"),
            best > base * 2.0,
            &format!("×{:.1} (paper: ×6.5–17.6)", best / base),
        );
        let one = wips[&(mix, "dmv1".to_string())];
        ok &= shape_check(
            &format!("{mix}: tier scales with slaves"),
            best > one * 1.5,
            &format!("8 slaves ×{:.1} over 1 slave", best / one),
        );
    }
    let shopping8 =
        wips[&(Mix::Shopping, "dmv8".to_string())] / wips[&(Mix::Shopping, "innodb".to_string())];
    let ordering8 =
        wips[&(Mix::Ordering, "dmv8".to_string())] / wips[&(Mix::Ordering, "innodb".to_string())];
    ok &= shape_check(
        "ordering speedup < shopping speedup (master saturation)",
        ordering8 < shopping8,
        &format!("ordering ×{ordering8:.1} vs shopping ×{shopping8:.1}"),
    );
    println!("\nFigure 3 overall: {}", if ok { "PASS" } else { "FAIL" });
}
