//! Figure 4 — fault tolerance with node reintegration (shopping mix).
//!
//! Master + 4 slaves; the master is killed mid-run. The paper shows
//! throughput degrading gracefully by ~20 % (a slave is promoted, so one
//! fewer serves reads), then — after ~6 minutes of reboot time — the
//! failed node reintegrates as a slave: ~5 s of catch-up (selective page
//! transfer, worst case: everything since the run's start) plus a cache
//! warm-up period, after which throughput returns to normal.
//!
//! The timeline here is compressed (kill at 40 s, 30 s "reboot") but
//! keeps the phases and their ordering.

use dmv_bench::{banner, deploy_dmv, mean_rate, print_series, shape_check, DmvOptions, SEED};
use dmv_tpcw::emulator::{spawn_emulator, EmulatorConfig};
use dmv_tpcw::populate::TpcwScale;
use dmv_tpcw::Mix;
use std::time::Duration;

fn main() {
    banner("Figure 4", "node reintegration under the shopping mix (master killed)");
    let time_scale = 0.25;
    let scale = TpcwScale::small();
    let d = deploy_dmv(
        scale,
        time_scale,
        DmvOptions {
            slaves: 4,
            // Long checkpoint period = the paper's worst case: every
            // modification since the start of the run is transferred.
            checkpoint_period: Some(Duration::from_secs(2400)),
            ..Default::default()
        },
    );

    let kill_at = Duration::from_secs(40);
    let reboot = Duration::from_secs(30); // the paper's 6-minute reboot, compressed
    let total = Duration::from_secs(160);

    let cfg = EmulatorConfig {
        mix: Mix::Shopping,
        n_clients: 24,
        think_time: Duration::from_millis(200),
        duration: total,
        warmup: Duration::ZERO,
        retries: 30,
        seed: SEED,
        series_window: Duration::from_secs(5),
    };
    let handle = spawn_emulator(&d.backend, d.clock, &d.ids, scale, cfg);

    let master = d.cluster.master(0).id();
    while d.clock.now_paper() < kill_at {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("  t={:>4}s  killing master {master}", d.clock.now_paper().as_secs());
    d.cluster.kill_replica(master);

    while d.clock.now_paper() < kill_at + reboot {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("  t={:>4}s  node rebooted; reintegrating", d.clock.now_paper().as_secs());
    let report = d.cluster.reintegrate(master).expect("reintegration succeeds");
    println!(
        "  t={:>4}s  catch-up done: {} pages / {} KiB in {:.1}s (paper: ~5s)",
        d.clock.now_paper().as_secs(),
        report.pages,
        report.bytes / 1024,
        report.duration.as_secs_f64()
    );

    let emu = handle.join();
    d.cluster.shutdown();
    print_series("throughput timeline (paper Figure 4)", &emu.series);

    let pre = mean_rate(&emu.series, Duration::from_secs(10), kill_at);
    let degraded = mean_rate(&emu.series, kill_at + Duration::from_secs(5), kill_at + reboot);
    let recovered = mean_rate(&emu.series, total - Duration::from_secs(30), total);

    println!("\n--- shape checks ---");
    let mut ok = true;
    ok &= shape_check(
        "service continues through master failure",
        degraded > 0.0,
        &format!("{degraded:.1} WIPS while degraded"),
    );
    ok &= shape_check(
        "graceful degradation (one fewer read replica)",
        degraded < pre * 0.97 && degraded > pre * 0.3,
        &format!("pre {pre:.1} → degraded {degraded:.1} WIPS (paper: ~20% drop)"),
    );
    ok &= shape_check(
        "catch-up is seconds, not minutes",
        report.duration < Duration::from_secs(30),
        &format!("{:.1}s", report.duration.as_secs_f64()),
    );
    ok &= shape_check(
        "throughput recovers after reintegration + warmup",
        recovered > degraded && recovered > pre * 0.85,
        &format!("recovered {recovered:.1} vs pre {pre:.1} WIPS"),
    );
    println!("\nFigure 4 overall: {}", if ok { "PASS" } else { "FAIL" });
}
