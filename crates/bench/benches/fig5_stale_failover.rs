//! Figure 5 — fail-over onto a *stale* backup: replicated InnoDB tier
//! (a, b) vs the DMV in-memory tier (c, d).
//!
//! Paper result: the on-disk tier serves at half capacity for close to
//! 3 minutes while the spare replays the on-disk binlog; the DMV tier
//! (master killed — the worst case, with master reconfiguration)
//! completes fail-over in ~70 s, less than a third of the InnoDB time,
//! because only changed in-memory pages are transferred.

use dmv_bench::{banner, dmv_stale_failover, innodb_stale_failover, print_series, shape_check};
use std::time::Duration;

fn main() {
    banner("Figure 5", "fail-over onto a stale backup: InnoDB tier vs DMV tier");
    let time_scale = 0.25;
    let kill_at = Duration::from_secs(80);
    let total = Duration::from_secs(260);

    println!("\n--- (a, b) replicated InnoDB tier: 2 actives + stale passive spare ---");
    let innodb = innodb_stale_failover(time_scale, kill_at, total);
    print_series("InnoDB tier throughput", &innodb.series);
    println!(
        "  pre-failure {:.1} WIPS; fail-over total {:.0}s (DB update {:.0}s, warmup {:.0}s)",
        innodb.pre_rate,
        innodb.phases.total.as_secs_f64(),
        innodb.phases.db_update.as_secs_f64(),
        innodb.phases.cache_warmup.as_secs_f64()
    );

    println!("\n--- (c, d) DMV tier: master + 2 active slaves + stale backup (master killed) ---");
    let dmv = dmv_stale_failover(time_scale, kill_at, total);
    print_series("DMV tier throughput", &dmv.series);
    println!(
        "  pre-failure {:.1} WIPS; fail-over total {:.0}s (recovery {:.1}s, DB update {:.1}s, warmup {:.0}s)",
        dmv.pre_rate,
        dmv.phases.total.as_secs_f64(),
        dmv.phases.recovery.as_secs_f64(),
        dmv.phases.db_update.as_secs_f64(),
        dmv.phases.cache_warmup.as_secs_f64()
    );

    println!("\n--- shape checks ---");
    let mut ok = true;
    ok &= shape_check(
        "InnoDB tier degrades but keeps serving during replay",
        innodb.pre_rate > 0.0 && innodb.phases.db_update > Duration::from_secs(1),
        &format!("replay took {:.0}s", innodb.phases.db_update.as_secs_f64()),
    );
    ok &= shape_check(
        "DMV DB-update (page transfer) beats InnoDB log replay",
        dmv.phases.db_update < innodb.phases.db_update,
        &format!(
            "DMV {:.1}s vs InnoDB {:.1}s",
            dmv.phases.db_update.as_secs_f64(),
            innodb.phases.db_update.as_secs_f64()
        ),
    );
    ok &= shape_check(
        "DMV total fail-over < InnoDB total fail-over (paper: <1/3)",
        dmv.phases.total < innodb.phases.total,
        &format!(
            "DMV {:.0}s vs InnoDB {:.0}s",
            dmv.phases.total.as_secs_f64(),
            innodb.phases.total.as_secs_f64()
        ),
    );
    println!("\nFigure 5 overall: {}", if ok { "PASS" } else { "FAIL" });
}
