//! Figure 6 — fail-over stage weights: cleanup (Recovery), data
//! migration (DB Update) and buffer-cache warmup (Cache Warmup), for the
//! replicated InnoDB tier and the DMV tier.
//!
//! Paper result: DB Update dominates the InnoDB fail-over (~94 s of
//! on-disk log replay); the DMV catch-up stage is much smaller (only
//! in-memory pages are transferred — long update chains collapse into
//! one page image); cache warm-up is similar for both; DMV adds a small
//! (~6 s) Recovery stage for aborting partially propagated transactions
//! and master reconfiguration.

use dmv_bench::{banner, dmv_stale_failover, innodb_stale_failover, shape_check, FailoverPhases};
use std::time::Duration;

fn bar(label: &str, p: &FailoverPhases) {
    println!(
        "  {label:<14} Recovery {:>6.1}s | DB Update {:>6.1}s | Cache Warmup {:>6.1}s | total {:>6.1}s",
        p.recovery.as_secs_f64(),
        p.db_update.as_secs_f64(),
        p.cache_warmup.as_secs_f64(),
        p.total.as_secs_f64()
    );
}

fn main() {
    banner("Figure 6", "fail-over stage weights: Recovery / DB Update / Cache Warmup");
    let time_scale = 0.25;
    let kill_at = Duration::from_secs(80);
    let total = Duration::from_secs(260);

    let innodb = innodb_stale_failover(time_scale, kill_at, total);
    let dmv = dmv_stale_failover(time_scale, kill_at, total);

    println!();
    bar("InnoDB", &innodb.phases);
    bar("DMV", &dmv.phases);

    println!("\n--- shape checks ---");
    let mut ok = true;
    ok &= shape_check(
        "DB Update dominates the InnoDB fail-over",
        innodb.phases.db_update >= innodb.phases.recovery
            && innodb.phases.db_update.as_secs_f64() >= innodb.phases.total.as_secs_f64() * 0.3,
        &format!(
            "{:.1}s of {:.1}s total",
            innodb.phases.db_update.as_secs_f64(),
            innodb.phases.total.as_secs_f64()
        ),
    );
    ok &= shape_check(
        "DMV catch-up is considerably reduced vs log replay",
        dmv.phases.db_update.as_secs_f64() < innodb.phases.db_update.as_secs_f64() * 0.5,
        &format!(
            "DMV {:.1}s vs InnoDB {:.1}s",
            dmv.phases.db_update.as_secs_f64(),
            innodb.phases.db_update.as_secs_f64()
        ),
    );
    ok &= shape_check(
        "DMV adds a small Recovery stage (master reconfiguration)",
        dmv.phases.recovery > Duration::ZERO && dmv.phases.recovery < Duration::from_secs(30),
        &format!("{:.1}s (paper: ~6s)", dmv.phases.recovery.as_secs_f64()),
    );
    println!("\nFigure 6 overall: {}", if ok { "PASS" } else { "FAIL" });
}
