//! Figure 7 — fail-over onto an up-to-date but **cold** spare backup.
//!
//! The spare receives the replication stream (no catch-up needed) but
//! serves no reads, so its buffer cache is cold. When the active slave
//! dies and the spare takes over, the paper sees a significant
//! throughput drop and more than a minute until peak throughput is
//! restored — the entire working set must be swapped in.

use dmv_bench::{banner, print_series, shape_check, spare_failover_experiment};
use dmv_core::scheduler::WarmupStrategy;

fn main() {
    banner("Figure 7", "fail-over onto a cold up-to-date spare backup");
    let out = spare_failover_experiment(WarmupStrategy::None);
    print_series("throughput timeline", &out.series);
    println!(
        "\n  pre-failure {:.1} WIPS; post-failure minimum {:.1} WIPS; tail {:.1} WIPS",
        out.pre_rate, out.post_min_rate, out.tail_rate
    );

    println!("\n--- shape checks ---");
    let mut ok = true;
    ok &= shape_check(
        "cold backup causes a significant throughput drop",
        out.post_min_rate < out.pre_rate * 0.75,
        &format!(
            "min {:.1} vs pre {:.1} WIPS ({:.0}% of pre)",
            out.post_min_rate,
            out.pre_rate,
            100.0 * out.post_min_rate / out.pre_rate
        ),
    );
    ok &= shape_check(
        "throughput eventually recovers",
        out.tail_rate > out.pre_rate * 0.8,
        &format!("tail {:.1} vs pre {:.1} WIPS", out.tail_rate, out.pre_rate),
    );
    println!("\nFigure 7 overall: {}", if ok { "PASS" } else { "FAIL" });
}
