//! Figure 8 — fail-over onto a spare kept warm by routing ~1 % of the
//! read-only workload to it.
//!
//! Paper result: "the effect of the failure is almost unnoticeable due
//! to the fact that the most frequently referenced pages are in the
//! cache."

use dmv_bench::{banner, print_series, shape_check, spare_failover_experiment};
use dmv_core::scheduler::WarmupStrategy;

fn main() {
    banner("Figure 8", "fail-over onto a warm spare (1% query-execution warmup)");
    let out = spare_failover_experiment(WarmupStrategy::QueryFraction(0.01));
    print_series("throughput timeline", &out.series);
    println!(
        "\n  pre-failure {:.1} WIPS; post-failure minimum {:.1} WIPS; tail {:.1} WIPS",
        out.pre_rate, out.post_min_rate, out.tail_rate
    );

    println!("\n--- shape checks ---");
    let mut ok = true;
    ok &= shape_check(
        "failure effect nearly unnoticeable with 1% warmup",
        out.post_min_rate > out.pre_rate * 0.7,
        &format!(
            "min {:.1} vs pre {:.1} WIPS ({:.0}% of pre)",
            out.post_min_rate,
            out.pre_rate,
            100.0 * out.post_min_rate / out.pre_rate
        ),
    );
    ok &= shape_check(
        "steady state restored",
        out.tail_rate > out.pre_rate * 0.85,
        &format!("tail {:.1} vs pre {:.1} WIPS", out.tail_rate, out.pre_rate),
    );
    println!("\nFigure 8 overall: {}", if ok { "PASS" } else { "FAIL" });
}
