//! Figure 9 — fail-over onto a spare kept warm by **page-id transfer**:
//! an active slave periodically sends the identifiers of its hot
//! (buffer-resident) pages; the spare touches them so they stay swapped
//! in, without serving any of the workload.
//!
//! Paper result: performance is the same as with periodic query
//! execution — seamless failure handling — while the spare's CPU remains
//! free for other work.

use dmv_bench::{banner, print_series, shape_check, spare_failover_experiment};
use dmv_core::scheduler::WarmupStrategy;

fn main() {
    banner("Figure 9", "fail-over onto a warm spare (page-id transfer every 100 txns)");
    let out = spare_failover_experiment(WarmupStrategy::PageIdTransfer { every_reads: 100 });
    print_series("throughput timeline", &out.series);
    println!(
        "\n  pre-failure {:.1} WIPS; post-failure minimum {:.1} WIPS; tail {:.1} WIPS",
        out.pre_rate, out.post_min_rate, out.tail_rate
    );

    println!("\n--- shape checks ---");
    let mut ok = true;
    ok &= shape_check(
        "page-id transfer gives seamless failure handling",
        out.post_min_rate > out.pre_rate * 0.7,
        &format!(
            "min {:.1} vs pre {:.1} WIPS ({:.0}% of pre)",
            out.post_min_rate,
            out.pre_rate,
            100.0 * out.post_min_rate / out.pre_rate
        ),
    );
    ok &= shape_check(
        "steady state restored",
        out.tail_rate > out.pre_rate * 0.85,
        &format!("tail {:.1} vs pre {:.1} WIPS", out.tail_rate, out.pre_rate),
    );
    println!("\nFigure 9 overall: {}", if ok { "PASS" } else { "FAIL" });
}
