//! Criterion micro-benchmarks for the design choices DESIGN.md calls
//! out:
//!
//! * `pagediff/*` — byte-diff encoding vs full-page shipping (ablation
//!   1: the paper ships fine-grained modifications, not pages);
//! * `version/*` — version-vector operations on the scheduler hot path;
//! * `btree/*` — page-based B+Tree index operations (the master's
//!   "costly index updates");
//! * `locks/*` — per-page 2PL lock manager;
//! * `writeset/*` — the capture → broadcast-encode → apply pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dmv_common::ids::{NodeId, PageId, TableId, TxnId};
use dmv_common::version::VersionVector;
use dmv_core::messages::{Msg, WriteSet};
use dmv_core::{ClusterSpec, DmvCluster, PendingApplier};
use dmv_memdb::lock::{LockManager, LockMode};
use dmv_memdb::{MemDb, MemDbOptions};
use dmv_pagestore::diff::PageDiff;
use dmv_pagestore::{PageStore, PAGE_SIZE};
use dmv_sql::exec::ExecContext;
use dmv_sql::schema::{ColType, Column, IndexDef, Schema, TableSchema};
use dmv_sql::value::Value;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn sparse_change(before: &[u8], n_bytes: usize) -> Vec<u8> {
    let mut after = before.to_vec();
    for i in 0..n_bytes {
        let at = (i * 131) % PAGE_SIZE;
        after[at] = after[at].wrapping_add(1);
    }
    after
}

fn bench_pagediff(c: &mut Criterion) {
    let before = vec![0u8; PAGE_SIZE];
    let after_small = sparse_change(&before, 32);
    let after_big = sparse_change(&before, 1024);

    let mut g = c.benchmark_group("pagediff");
    g.bench_function("compute_small_change", |b| {
        b.iter(|| PageDiff::compute(black_box(&before), black_box(&after_small)))
    });
    g.bench_function("compute_large_change", |b| {
        b.iter(|| PageDiff::compute(black_box(&before), black_box(&after_big)))
    });
    let diff = PageDiff::compute(&before, &after_small);
    g.bench_function("apply_small_change", |b| {
        b.iter_batched(
            || before.clone(),
            |mut page| diff.apply(black_box(&mut page)),
            BatchSize::SmallInput,
        )
    });
    // Ablation: shipping the whole page instead of the diff.
    g.bench_function("full_page_copy", |b| {
        b.iter_batched(
            || before.clone(),
            |mut page| page.copy_from_slice(black_box(&after_small)),
            BatchSize::SmallInput,
        )
    });
    println!(
        "pagediff ablation: diff wire size {} B vs full page {} B",
        diff.encoded_len(),
        PAGE_SIZE
    );
    g.finish();
}

fn bench_version(c: &mut Criterion) {
    let mut g = c.benchmark_group("version");
    let a = VersionVector::from_entries((0..10).map(|i| i * 7).collect());
    let b2 = VersionVector::from_entries((0..10).map(|i| i * 5 + 3).collect());
    g.bench_function("merge_10_tables", |b| {
        b.iter_batched(|| a.clone(), |mut v| v.merge(black_box(&b2)), BatchSize::SmallInput)
    });
    g.bench_function("dominates_10_tables", |b| b.iter(|| a.dominates(black_box(&b2))));
    g.finish();
}

fn kv_schema() -> Schema {
    Schema::new(vec![TableSchema::new(
        TableId(0),
        "kv",
        vec![Column::new("k", ColType::Int), Column::new("v", ColType::Str)],
        vec![IndexDef::unique("pk", vec![0])],
    )])
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.bench_function("insert_1000_sequential", |b| {
        b.iter_batched(
            || MemDb::new(kv_schema(), MemDbOptions::default()),
            |db| {
                let mut txn = db.begin_update();
                for k in 0..1000i64 {
                    txn.insert(TableId(0), vec![k.into(), "value".into()]).unwrap();
                }
                txn.commit(None);
            },
            BatchSize::SmallInput,
        )
    });
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    {
        let mut txn = db.begin_update();
        for k in 0..10_000i64 {
            txn.insert(TableId(0), vec![k.into(), "value".into()]).unwrap();
        }
        txn.commit(None);
    }
    g.bench_function("point_lookup_10k", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 37) % 10_000;
            let mut txn = db.begin_read_local();
            black_box(txn.index_lookup(TableId(0), 0, &[Value::Int(i)]).unwrap());
        })
    });
    g.bench_function("range_scan_100", |b| {
        b.iter(|| {
            let mut txn = db.begin_read_local();
            black_box(
                txn.index_range(
                    TableId(0),
                    0,
                    Some((&[Value::Int(5000)], true)),
                    Some((&[Value::Int(5099)], true)),
                    false,
                    None,
                )
                .unwrap(),
            );
        })
    });
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    let mgr = LockManager::new(Duration::from_millis(100));
    let txn = TxnId::new(NodeId(0), 1);
    g.bench_function("acquire_release_exclusive_8pages", |b| {
        b.iter(|| {
            for p in 0..8u32 {
                mgr.acquire(txn, PageId::heap(TableId(0), p), LockMode::Exclusive).unwrap();
            }
            mgr.release_all(txn);
        })
    });
    g.finish();
}

fn bench_writeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("writeset");
    // Capture: one update transaction producing diffs.
    g.bench_function("capture_update_txn", |b| {
        let db = MemDb::new(kv_schema(), MemDbOptions::default());
        {
            let mut txn = db.begin_update();
            for k in 0..1000i64 {
                txn.insert(TableId(0), vec![k.into(), "value".into()]).unwrap();
            }
            txn.commit(None);
        }
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 1000;
            let mut txn = db.begin_update();
            let hit = txn.index_lookup(TableId(0), 0, &[Value::Int(k)]).unwrap();
            let (rid, mut row) = hit.into_iter().next().unwrap();
            row[1] = "updated".into();
            txn.update(TableId(0), rid, row).unwrap();
            black_box(txn.precommit());
            txn.commit(None);
        })
    });
    // Apply: a slave enqueue + materialize cycle.
    g.bench_function("enqueue_and_materialize", |b| {
        let store = Arc::new(PageStore::new_free());
        let applier = PendingApplier::new(Arc::clone(&store), 1, Duration::from_secs(1));
        let before = vec![0u8; PAGE_SIZE];
        let after = sparse_change(&before, 64);
        let diff = PageDiff::compute(&before, &after);
        let mut version = 0u64;
        b.iter(|| {
            version += 1;
            let mut vv = VersionVector::new(1);
            vv.set(TableId(0), version);
            let ws = Arc::new(WriteSet {
                txn: TxnId::new(NodeId(0), version),
                seq: version,
                versions: vv,
                pages: vec![(PageId::heap(TableId(0), 0), diff.clone())],
            });
            applier.enqueue(&ws);
            applier.apply_page(PageId::heap(TableId(0), 0));
        })
    });
    g.finish();
}

/// A write-set shaped like a multi-page update: `n_pages` pages, each
/// with a moderate sparse diff.
fn multi_page_writeset(n_pages: u32) -> WriteSet {
    let before = vec![0u8; PAGE_SIZE];
    let after = sparse_change(&before, 256);
    let diff = PageDiff::compute(&before, &after);
    WriteSet {
        txn: TxnId::new(NodeId(0), 1),
        seq: 1,
        versions: VersionVector::from_entries(vec![1]),
        pages: (0..n_pages).map(|p| (PageId::heap(TableId(0), p), diff.clone())).collect(),
    }
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("fanout");
    let template = multi_page_writeset(16);
    for &n in &[1usize, 2, 4, 8] {
        // New hot path: one deep allocation per commit, an Arc clone per
        // target. Should stay ~flat in the target count.
        g.bench_function(format!("arc_{n}_targets"), |b| {
            b.iter(|| {
                let ws = Arc::new(black_box(&template).clone());
                let msgs: Vec<Msg> = (0..n).map(|_| Msg::WriteSet(Arc::clone(&ws))).collect();
                black_box(msgs)
            })
        });
        // Ablation (pre-refactor behavior): a deep write-set clone per
        // target — linear in the target count.
        g.bench_function(format!("deep_clone_{n}_targets"), |b| {
            b.iter(|| {
                let msgs: Vec<Msg> =
                    (0..n).map(|_| Msg::WriteSet(Arc::new(black_box(&template).clone()))).collect();
                black_box(msgs)
            })
        });
    }
    g.finish();
}

fn bench_applier_contention(c: &mut Criterion) {
    const THREADS: u32 = 4;
    const PAGES_PER_THREAD: u32 = 64;
    let mut g = c.benchmark_group("applier");
    // Four threads enqueue + materialize disjoint page sets on one
    // applier: with the sharded queue map they mostly touch different
    // shards instead of serializing on a global map lock.
    g.bench_function("contended_enqueue_apply_4_threads", |b| {
        let before = vec![0u8; PAGE_SIZE];
        let after = sparse_change(&before, 64);
        let diff = PageDiff::compute(&before, &after);
        b.iter_batched(
            || {
                let store = Arc::new(PageStore::new_free());
                Arc::new(PendingApplier::new(store, 1, Duration::from_secs(1)))
            },
            |applier| {
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let applier = Arc::clone(&applier);
                        let diff = diff.clone();
                        s.spawn(move || {
                            for p in 0..PAGES_PER_THREAD {
                                let page = PageId::heap(TableId(0), t * PAGES_PER_THREAD + p);
                                let ws = Arc::new(WriteSet {
                                    txn: TxnId::new(NodeId(t), u64::from(p) + 1),
                                    seq: u64::from(p) + 1,
                                    versions: VersionVector::from_entries(vec![u64::from(p)]),
                                    pages: vec![(page, diff.clone())],
                                });
                                applier.enqueue(&ws);
                                applier.apply_page(page);
                            }
                        });
                    }
                });
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    let mut spec = ClusterSpec::fast_test(kv_schema());
    spec.n_slaves = 4;
    let cluster = DmvCluster::start(spec);
    cluster.finish_load();
    let session = cluster.session();
    // Route + tag + slave dispatch with a no-op statement closure: the
    // scheduler hot path (atomic latest snapshot, lock-free load scan).
    g.bench_function("read_route_noop", |b| {
        b.iter(|| session.read_with(&mut |_r| Ok(())).unwrap())
    });
    g.bench_function("read_route_noop_4_threads", |b| {
        b.iter_batched(
            || (),
            |()| {
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        let session = cluster.session();
                        s.spawn(move || {
                            for _ in 0..64 {
                                session.read_with(&mut |_r| Ok(())).unwrap();
                            }
                        });
                    }
                });
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
    cluster.shutdown();
}

criterion_group! {
    name = benches;
    // Short measurement windows: the full figure suite shares the wall
    // clock with these micro-benchmarks.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_pagediff, bench_version, bench_btree, bench_locks, bench_writeset,
        bench_fanout, bench_applier_contention, bench_routing
}
criterion_main!(benches);
