//! End-to-end TPC-W throughput benchmark (`cargo xtask bench-e2e`).
//!
//! Drives the TPC-W emulator against a full DMV cluster on the
//! simulated network at paper-scaled latencies, sweeping the three
//! standard mixes across 1/2/4/8 slaves, plus a single-writer
//! commit-latency probe (1 client, ordering mix) that guards the
//! low-load p50 against group-commit batching regressions, plus a
//! high-fan-out stress cell (ordering at 16 slaves) where the
//! replication pipeline rather than client think time bounds
//! throughput.
//!
//! Emits `BENCH_e2e.json` so every perf PR appends a comparable data
//! point to the BENCH trajectory. `--smoke` shrinks the sweep to a
//! seconds-long CI sanity run (the numbers are meaningless at that
//! scale; only the harness path and the JSON shape are exercised).

use dmv_bench::{banner, deploy_dmv, DmvOptions, SEED};
use dmv_common::config::BufferBudget;
use dmv_pagestore::PAGE_SIZE;
use dmv_tpcw::emulator::{run_emulator, EmulatorConfig, EmulatorReport};
use dmv_tpcw::populate::TpcwScale;
use dmv_tpcw::Mix;
use std::fmt::Write as _;
use std::time::Duration;

/// One cell of the sweep: a (mix, slave-count) run.
struct Cell {
    mix: Mix,
    slaves: usize,
    report: EmulatorReport,
    abort_rate: f64,
    duration: Duration,
}

struct Sweep {
    mixes: Vec<Mix>,
    slave_counts: Vec<usize>,
    n_clients: usize,
    think_time: Duration,
    duration: Duration,
    warmup: Duration,
    time_scale: f64,
    single_writer_secs: u64,
    trials: usize,
}

fn sweep_params(smoke: bool) -> Sweep {
    if smoke {
        Sweep {
            mixes: vec![Mix::Shopping],
            slave_counts: vec![1, 2],
            n_clients: 8,
            think_time: Duration::from_millis(100),
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(500),
            time_scale: 0.1,
            single_writer_secs: 2,
            trials: 1,
        }
    } else {
        // time_scale 1.0: on small hosts paper-time compression turns
        // scheduler jitter into throughput noise; uncompressed runs keep
        // the sleep/CPU ratio high enough for repeatable numbers.
        Sweep {
            mixes: Mix::ALL.to_vec(),
            slave_counts: vec![1, 2, 4, 8],
            n_clients: 16,
            think_time: Duration::from_millis(100),
            duration: Duration::from_secs(12),
            warmup: Duration::from_secs(4),
            time_scale: 1.0,
            single_writer_secs: 8,
            trials: 3,
        }
    }
}

/// The stress cell: ordering mix at double the paper's fan-out
/// (16 slaves). The standard sweep is a closed loop whose think time
/// caps the ordering mix near 67 upd/s, so at 1–8 slaves a faster
/// replication pipeline mostly shows up as lower latency; at 16 slaves
/// the per-commit broadcast+ack cost is large enough that the pipeline
/// itself sets the throughput, which is where batching and cumulative
/// acks are visible. (Raising offered load instead — more clients or
/// shorter think time — tips TPC-W ordering into a lock-retry collapse
/// on both the old and new pipelines, so fan-out is the stressor that
/// stays in a healthy regime.)
fn stress_params(s: &Sweep) -> Sweep {
    Sweep {
        mixes: vec![Mix::Ordering],
        slave_counts: vec![16],
        n_clients: s.n_clients,
        think_time: s.think_time,
        duration: s.duration,
        warmup: s.warmup,
        time_scale: s.time_scale,
        single_writer_secs: s.single_writer_secs,
        trials: s.trials,
    }
}

fn emulator_cfg(mix: Mix, s: &Sweep) -> EmulatorConfig {
    EmulatorConfig {
        mix,
        n_clients: s.n_clients,
        think_time: s.think_time,
        duration: s.duration,
        warmup: s.warmup,
        retries: 20,
        seed: SEED,
        series_window: Duration::from_secs(2),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Minimal JSON float: finite, plain decimal (NaN/inf become null).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn run_cell_once(mix: Mix, slaves: usize, s: &Sweep, scale: TpcwScale) -> Cell {
    let d = deploy_dmv(scale, s.time_scale, DmvOptions { slaves, ..Default::default() });
    let report = run_emulator(&d.backend, d.clock, &d.ids, scale, emulator_cfg(mix, s));
    let abort_rate = d.cluster.version_abort_rate();
    d.cluster.shutdown();
    Cell { mix, slaves, report, abort_rate, duration: s.duration }
}

/// Runs a cell `s.trials` times and keeps the median by update
/// throughput: on small shared hosts a run can catch a scheduler stall,
/// and the median discards those outliers in both directions.
fn run_cell(mix: Mix, slaves: usize, s: &Sweep, scale: TpcwScale) -> Cell {
    let mut trials: Vec<Cell> =
        (0..s.trials.max(1)).map(|_| run_cell_once(mix, slaves, s, scale)).collect();
    trials.sort_by_key(|a| a.report.updates);
    let c = trials.remove(trials.len() / 2);
    let (report, abort_rate) = (&c.report, c.abort_rate);
    println!(
        "  {mix:<9} {slaves} slave(s): {:8.1} WIPS  {:7.1} upd/s  upd p50 {:6.1} ms  p99 {:7.1} ms  aborts {:.2}%",
        report.wips,
        report.updates as f64 / s.duration.as_secs_f64(),
        ms(report.update_p50_latency),
        ms(report.update_p99_latency),
        abort_rate * 100.0
    );
    c
}

/// Low-load probe: one emulated browser on the ordering mix — commits
/// are never concurrent, so every flush is a singleton and the p50 here
/// is the ungrouped commit latency the batcher must not regress.
fn run_single_writer(s: &Sweep, scale: TpcwScale) -> EmulatorReport {
    let mut trials: Vec<EmulatorReport> = (0..s.trials.max(1))
        .map(|_| {
            let d = deploy_dmv(scale, s.time_scale, DmvOptions { slaves: 2, ..Default::default() });
            let cfg = EmulatorConfig {
                mix: Mix::Ordering,
                n_clients: 1,
                think_time: Duration::from_millis(10),
                duration: Duration::from_secs(s.single_writer_secs),
                warmup: Duration::from_millis(500),
                retries: 20,
                seed: SEED,
                series_window: Duration::from_secs(2),
            };
            let report = run_emulator(&d.backend, d.clock, &d.ids, scale, cfg);
            d.cluster.shutdown();
            report
        })
        .collect();
    trials.sort_by_key(|r| r.update_p50_latency);
    let report = trials.remove(trials.len() / 2);
    println!(
        "  single-writer (ordering, 2 slaves): upd p50 {:6.1} ms  p99 {:6.1} ms  ({} updates)",
        ms(report.update_p50_latency),
        ms(report.update_p99_latency),
        report.updates
    );
    report
}

/// Result of the larger-than-memory cell: shopping mix with every
/// node's buffer budget clamped to half the populated working set, so
/// the run only completes by evicting clean pages and faulting them
/// back while epoch GC keeps the pending-diff queues drained.
struct LtmCell {
    working_set_pages: u64,
    budget_pages: u64,
    report: EmulatorReport,
    abort_rate: f64,
    /// Max resident-page high-water mark across nodes.
    high_water_pages: u64,
    /// Evictions summed across nodes.
    evictions: u64,
    /// Page faults summed across nodes.
    faults: u64,
    /// Max pending replication-diff bytes across nodes at run end.
    max_pending_bytes: u64,
    /// High water stayed within budget plus the dirty-page slack.
    bounded: bool,
    duration: Duration,
}

/// The larger-than-memory cell. A first unbounded deployment measures
/// the populated working set; the measured run then clamps every node
/// to half of it via [`BufferBudget`], making eviction and re-fault a
/// steady-state cost rather than a warmup transient.
/// `budget_override`: `Some(0)` runs the cell unbounded (the
/// before-numbers baseline), `Some(n)` forces an n-page budget.
fn run_ltm(s: &Sweep, scale: TpcwScale, budget_override: Option<u64>) -> LtmCell {
    let probe = deploy_dmv(scale, s.time_scale, DmvOptions { slaves: 2, ..Default::default() });
    let working_set_pages = probe
        .cluster
        .memory_gauges()
        .iter()
        .map(|(_, _, resident)| resident / PAGE_SIZE as u64)
        .max()
        .unwrap_or(0);
    probe.cluster.shutdown();

    let budget_pages = budget_override.unwrap_or((working_set_pages / 2).max(16));
    let budget = if budget_pages == 0 {
        BufferBudget::unbounded()
    } else {
        BufferBudget::pages(budget_pages as usize, PAGE_SIZE)
    };
    let d = deploy_dmv(
        scale,
        s.time_scale,
        DmvOptions { slaves: 2, buffer_budget: budget, ..Default::default() },
    );
    let report = run_emulator(&d.backend, d.clock, &d.ids, scale, emulator_cfg(Mix::Shopping, s));
    let abort_rate = d.cluster.version_abort_rate();

    let (mut high_water, mut evictions, mut faults, mut max_pending) = (0u64, 0u64, 0u64, 0u64);
    for (id, pending, _) in d.cluster.memory_gauges() {
        let Some(r) = d.cluster.replica(id) else { continue };
        let store = r.db().store();
        high_water = high_water.max(store.residency_counters().high_water_pages());
        evictions += store.residency_counters().evictions();
        faults += store.fault_count();
        max_pending = max_pending.max(pending);
    }
    d.cluster.shutdown();

    // Dirty pages are unevictable until their transaction resolves, so
    // the high-water mark may legitimately overshoot the budget by the
    // in-flight write set; a quarter-budget slack covers that without
    // masking an unbounded leak.
    let bounded = budget_pages == 0 || high_water <= budget_pages + budget_pages / 4 + 64;
    println!(
        "  ltm (shopping, 2 slaves, budget {budget_pages}/{working_set_pages} pages): \
         {:8.1} WIPS  upd p50 {:6.1} ms  high-water {high_water} pages  \
         {evictions} evictions  {faults} faults  pending {max_pending} B  bounded={bounded}",
        report.wips,
        ms(report.update_p50_latency),
    );
    LtmCell {
        working_set_pages,
        budget_pages,
        report,
        abort_rate,
        high_water_pages: high_water,
        evictions,
        faults,
        max_pending_bytes: max_pending,
        bounded,
        duration: s.duration,
    }
}

fn ltm_json(c: &LtmCell) -> String {
    format!(
        "{{\"mix\": \"shopping\", \"slaves\": 2, \"working_set_pages\": {}, \
         \"budget_pages\": {}, \"wips\": {}, \"update_tps\": {}, \"update_p50_ms\": {}, \
         \"update_p99_ms\": {}, \"abort_rate\": {}, \"high_water_pages\": {}, \
         \"evictions\": {}, \"faults\": {}, \"max_pending_bytes\": {}, \"bounded\": {}}}",
        c.working_set_pages,
        c.budget_pages,
        jf(c.report.wips),
        jf(c.report.updates as f64 / c.duration.as_secs_f64()),
        jf(ms(c.report.update_p50_latency)),
        jf(ms(c.report.update_p99_latency)),
        jf(c.abort_rate),
        c.high_water_pages,
        c.evictions,
        c.faults,
        c.max_pending_bytes,
        c.bounded,
    )
}

fn cell_json(c: &Cell) -> String {
    format!(
        "{{\"mix\": \"{}\", \"slaves\": {}, \"wips\": {}, \"updates\": {}, \
         \"update_tps\": {}, \"update_p50_ms\": {}, \"update_p99_ms\": {}, \
         \"mean_latency_ms\": {}, \"p90_latency_ms\": {}, \"abort_rate\": {}, \
         \"errors\": {}}}",
        format!("{}", c.mix).to_lowercase(),
        c.slaves,
        jf(c.report.wips),
        c.report.updates,
        jf(c.report.updates as f64 / c.duration.as_secs_f64()),
        jf(ms(c.report.update_p50_latency)),
        jf(ms(c.report.update_p99_latency)),
        jf(ms(c.report.mean_latency)),
        jf(ms(c.report.p90_latency)),
        jf(c.abort_rate),
        c.report.errors,
    )
}

fn to_json(
    cells: &[Cell],
    single: Option<&EmulatorReport>,
    stress: Option<&Cell>,
    ltm: Option<&LtmCell>,
    s: &Sweep,
    smoke: bool,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"e2e-tpcw\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"time_scale\": {},", jf(s.time_scale));
    let _ = writeln!(out, "  \"n_clients\": {},", s.n_clients);
    let _ = writeln!(out, "  \"duration_s\": {},", s.duration.as_secs());
    let _ = writeln!(out, "  \"trials\": {},", s.trials);
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", cell_json(c));
    }
    let _ = writeln!(out, "  ],");
    match single {
        Some(r) => {
            let _ = writeln!(
                out,
                "  \"single_writer\": {{\"mix\": \"ordering\", \"slaves\": 2, \"update_p50_ms\": {}, \
                 \"update_p99_ms\": {}, \"updates\": {}}},",
                jf(ms(r.update_p50_latency)),
                jf(ms(r.update_p99_latency)),
                r.updates,
            );
        }
        None => {
            let _ = writeln!(out, "  \"single_writer\": null,");
        }
    }
    match stress {
        Some(c) => {
            let _ = writeln!(out, "  \"stress\": {},", cell_json(c));
        }
        None => {
            let _ = writeln!(out, "  \"stress\": null,");
        }
    }
    match ltm {
        Some(c) => {
            let _ = writeln!(out, "  \"ltm\": {}", ltm_json(c));
        }
        None => {
            let _ = writeln!(out, "  \"ltm\": null");
        }
    }
    out.push_str("}\n");
    out
}

fn flag_val<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path =
        flag_val::<String>(&args, "--out").unwrap_or_else(|| "BENCH_e2e.json".to_string());

    let mut s = sweep_params(smoke);
    if let Some(ts) = flag_val::<f64>(&args, "--time-scale") {
        s.time_scale = ts;
    }
    if let Some(n) = flag_val::<usize>(&args, "--clients") {
        s.n_clients = n;
    }
    if let Some(t) = flag_val::<u64>(&args, "--think-ms") {
        s.think_time = Duration::from_millis(t);
    }
    if let Some(secs) = flag_val::<u64>(&args, "--secs") {
        s.duration = Duration::from_secs(secs);
    }
    if let Some(mix) = flag_val::<String>(&args, "--mix") {
        s.mixes = Mix::ALL
            .iter()
            .copied()
            .filter(|m| format!("{m}").eq_ignore_ascii_case(&mix))
            .collect();
    }
    if let Some(slaves) = flag_val::<String>(&args, "--slaves") {
        s.slave_counts = slaves.split(',').filter_map(|n| n.parse().ok()).collect();
    }
    if let Some(t) = flag_val::<usize>(&args, "--trials") {
        s.trials = t;
    }
    let scale = TpcwScale::small();
    banner(
        "BENCH e2e",
        if smoke { "TPC-W group-commit pipeline (smoke)" } else { "TPC-W group-commit pipeline" },
    );

    let stress_only = args.iter().any(|a| a == "--stress-only");
    let ltm_only = args.iter().any(|a| a == "--ltm-only");
    let mut cells = Vec::new();
    let mut single = None;
    if !stress_only && !ltm_only {
        for &mix in &s.mixes {
            println!("\n--- {mix} mix ({}% updates) ---", (mix.update_fraction() * 100.0).round());
            for &n in &s.slave_counts {
                cells.push(run_cell(mix, n, &s, scale));
            }
        }
        println!("\n--- single-writer latency probe ---");
        single = Some(run_single_writer(&s, scale));
    }
    let stress = if smoke || ltm_only {
        None
    } else {
        let mut st = stress_params(&s);
        if let Some(n) = flag_val::<usize>(&args, "--stress-clients") {
            st.n_clients = n;
        }
        if let Some(t) = flag_val::<u64>(&args, "--stress-think-ms") {
            st.think_time = Duration::from_millis(t);
        }
        let slaves = flag_val::<usize>(&args, "--stress-slaves").unwrap_or(16);
        println!(
            "\n--- stress: ordering at {slaves} slaves ({} clients, {} ms think) ---",
            st.n_clients,
            st.think_time.as_millis()
        );
        Some(run_cell(Mix::Ordering, slaves, &st, scale))
    };

    let ltm = if stress_only {
        None
    } else {
        println!("\n--- larger-than-memory: shopping under a half-working-set budget ---");
        Some(run_ltm(&s, scale, flag_val::<u64>(&args, "--ltm-budget-pages")))
    };

    let json = to_json(&cells, single.as_ref(), stress.as_ref(), ltm.as_ref(), &s, smoke);
    std::fs::write(&out_path, &json).expect("write BENCH_e2e.json");
    println!("\nwrote {out_path}");
}
