//! # dmv-bench
//!
//! Shared harness for the experiment reproductions. Each paper figure
//! has a `harness = false` bench target that builds the relevant
//! deployment, drives the TPC-W emulator, prints the figure's
//! rows/series in paper-time units, and runs shape checks (who wins, by
//! roughly what factor, where the dips and recoveries fall).

use dmv_common::clock::{SimClock, TimeScale};
use dmv_common::config::BufferBudget;
use dmv_common::stats::SeriesPoint;
use dmv_core::cluster::{ClusterSpec, DmvCluster};
use dmv_core::scheduler::WarmupStrategy;
use dmv_ondisk::{DiskDb, DiskDbOptions, InnoDbTier};
use dmv_tpcw::backend::{load_cluster, load_diskdb, load_tier, Backend};
use dmv_tpcw::interactions::IdAllocator;
use dmv_tpcw::populate::{generate, TpcwScale};
use dmv_tpcw::schema::tpcw_schema;
use std::sync::Arc;
use std::time::Duration;

/// Seed shared by all experiments (reproducible runs).
pub const SEED: u64 = 20070625;

/// A deployed DMV system under test.
pub struct DmvDeployment {
    /// The cluster.
    pub cluster: Arc<DmvCluster>,
    /// Workload backend handle.
    pub backend: Backend,
    /// Id allocator continuing from the population.
    pub ids: Arc<IdAllocator>,
    /// Population scale.
    pub scale: TpcwScale,
    /// Cluster clock.
    pub clock: SimClock,
}

/// Options for [`deploy_dmv`].
#[derive(Debug, Clone)]
pub struct DmvOptions {
    /// Active slaves.
    pub slaves: usize,
    /// Spare backups.
    pub spares: usize,
    /// Spare warmup strategy.
    pub warmup: WarmupStrategy,
    /// Fuzzy checkpoint period.
    pub checkpoint_period: Option<Duration>,
    /// Page-in latency for non-resident pages.
    pub fault_latency: Duration,
    /// On-disk persistence backends.
    pub backends: usize,
    /// Per-node buffer budget (larger-than-memory runs); unbounded by
    /// default.
    pub buffer_budget: BufferBudget,
}

impl Default for DmvOptions {
    fn default() -> Self {
        DmvOptions {
            slaves: 2,
            spares: 0,
            warmup: WarmupStrategy::None,
            checkpoint_period: None,
            fault_latency: Duration::from_millis(8),
            backends: 0,
            buffer_budget: BufferBudget::unbounded(),
        }
    }
}

/// Builds and populates a DMV cluster for TPC-W.
pub fn deploy_dmv(scale: TpcwScale, time_scale: f64, opts: DmvOptions) -> DmvDeployment {
    let mut spec = ClusterSpec::new(tpcw_schema(), TimeScale::new(time_scale));
    spec.n_slaves = opts.slaves;
    spec.n_spares = opts.spares;
    spec.warmup = opts.warmup;
    spec.checkpoint_period = opts.checkpoint_period;
    spec.fault_latency = opts.fault_latency;
    spec.n_backends = opts.backends;
    spec.buffer_budget = opts.buffer_budget;
    spec.detect_interval = Duration::from_millis(500);
    let cluster = DmvCluster::start(spec);
    let pop = generate(scale, SEED);
    load_cluster(&cluster, &pop).expect("population loads");
    cluster.finish_load();
    let ids = Arc::new(IdAllocator::from_population(scale, &pop));
    let backend = Backend::Dmv(cluster.session());
    let clock = cluster.clock();
    DmvDeployment { cluster, backend, ids, scale, clock }
}

/// Builds and populates a stand-alone on-disk database (the Figure 3
/// baseline). `buffer_fraction` sizes the buffer pool relative to the
/// populated page count.
pub fn deploy_disk(
    scale: TpcwScale,
    time_scale: f64,
    buffer_fraction: f64,
) -> (Arc<DiskDb>, Backend, Arc<IdAllocator>, SimClock) {
    let clock = SimClock::new(TimeScale::new(time_scale));
    // First load with a free clock to learn the page count, then rebuild.
    let pop = generate(scale, SEED);
    let probe = DiskDb::new(
        tpcw_schema(),
        DiskDbOptions {
            clock: SimClock::new(TimeScale::new(1e-9)),
            buffer_pages: usize::MAX,
            ..Default::default()
        },
    );
    load_diskdb(&probe, &pop).expect("probe load");
    let total_pages = probe.total_pages();
    let buffer_pages = ((total_pages as f64 * buffer_fraction) as usize).max(16);
    drop(probe);

    let db = Arc::new(DiskDb::new(
        tpcw_schema(),
        DiskDbOptions {
            clock,
            buffer_pages,
            cpu: dmv_common::config::CpuProfile::athlon_2007(),
            ..Default::default()
        },
    ));
    load_diskdb(&db, &pop).expect("population loads");
    db.prewarm();
    let ids = Arc::new(IdAllocator::from_population(scale, &pop));
    let backend = Backend::Disk(Arc::clone(&db));
    (db, backend, ids, clock)
}

/// Builds and populates a replicated on-disk tier (the Figure 5
/// baseline): `n_actives` actives + 1 passive spare.
pub fn deploy_tier(
    scale: TpcwScale,
    time_scale: f64,
    n_actives: usize,
    buffer_pages: usize,
) -> (Arc<InnoDbTier>, Backend, Arc<IdAllocator>, SimClock) {
    let clock = SimClock::new(TimeScale::new(time_scale));
    let tier = Arc::new(InnoDbTier::new(
        tpcw_schema(),
        n_actives,
        DiskDbOptions {
            clock,
            buffer_pages,
            cpu: dmv_common::config::CpuProfile::athlon_2007(),
            ..Default::default()
        },
    ));
    let pop = generate(scale, SEED);
    load_tier(&tier, &pop).expect("population loads");
    for i in 0..n_actives {
        tier.active(i).prewarm();
    }
    let ids = Arc::new(IdAllocator::from_population(scale, &pop));
    let backend = Backend::Tier(Arc::clone(&tier));
    (tier, backend, ids, clock)
}

/// Prints a throughput/latency series in paper-time units.
pub fn print_series(title: &str, series: &[SeriesPoint]) {
    println!("\n  {title}");
    println!("  {:>8} {:>12} {:>14}", "t (s)", "WIPS", "latency (ms)");
    for p in series {
        println!(
            "  {:>8} {:>12.1} {:>14.1}",
            p.start.as_secs(),
            p.rate(),
            p.mean_latency.as_secs_f64() * 1e3
        );
    }
}

/// Prints and evaluates one shape check.
pub fn shape_check(name: &str, ok: bool, detail: &str) -> bool {
    println!("  [{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Mean rate over the series windows within `[from, to)`.
pub fn mean_rate(series: &[SeriesPoint], from: Duration, to: Duration) -> f64 {
    let pts: Vec<&SeriesPoint> =
        series.iter().filter(|p| p.start >= from && p.start < to).collect();
    if pts.is_empty() {
        return 0.0;
    }
    pts.iter().map(|p| p.rate()).sum::<f64>() / pts.len() as f64
}

/// First window start at or after `from` whose rate reaches
/// `threshold`; `None` if never.
pub fn recovery_time(series: &[SeriesPoint], from: Duration, threshold: f64) -> Option<Duration> {
    series.iter().find(|p| p.start >= from && p.rate() >= threshold).map(|p| p.start)
}

/// Standard experiment banner.
pub fn banner(fig: &str, what: &str) {
    println!("\n================================================================");
    println!("{fig} — {what}");
    println!("================================================================");
}

/// Phase durations of a stale-backup fail-over (paper Figure 6).
#[derive(Debug, Clone, Copy)]
pub struct FailoverPhases {
    /// Abort/cleanup + reconfiguration ("Recovery"; DMV-only, §4.2).
    pub recovery: Duration,
    /// Bringing the backup up to date ("DB Update"): log replay for the
    /// on-disk tier, selective page transfer for DMV.
    pub db_update: Duration,
    /// From integration until throughput regains 90 % of the pre-failure
    /// level ("Cache Warmup").
    pub cache_warmup: Duration,
    /// Total fail-over time (kill → sustained recovery).
    pub total: Duration,
}

/// Result of one stale-backup fail-over run.
pub struct StaleFailoverRun {
    /// Throughput series over the whole run.
    pub series: Vec<SeriesPoint>,
    /// Pre-failure WIPS.
    pub pre_rate: f64,
    /// Phase breakdown.
    pub phases: FailoverPhases,
    /// Paper time of the kill.
    pub kill_at: Duration,
}

fn shopping_cfg(total: Duration, window: Duration) -> dmv_tpcw::emulator::EmulatorConfig {
    dmv_tpcw::emulator::EmulatorConfig {
        mix: dmv_tpcw::Mix::Shopping,
        n_clients: 24,
        think_time: Duration::from_millis(200),
        duration: total,
        warmup: Duration::ZERO,
        retries: 30,
        seed: SEED,
        series_window: window,
    }
}

fn wait_paper(clock: SimClock, until: Duration) {
    while clock.now_paper() < until {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Figure 5(a,b) baseline: replicated on-disk tier (2 actives + 1 stale
/// passive spare), one active killed mid-run, spare promoted by binlog
/// replay from disk.
pub fn innodb_stale_failover(
    time_scale: f64,
    kill_at: Duration,
    total: Duration,
) -> StaleFailoverRun {
    let scale = TpcwScale::small();
    let (tier, backend, ids, clock) = deploy_tier(scale, time_scale, 2, 400);
    let handle = dmv_tpcw::emulator::spawn_emulator(
        &backend,
        clock,
        &ids,
        scale,
        shopping_cfg(total, Duration::from_secs(10)),
    );
    wait_paper(clock, kill_at);
    tier.kill_active(0);
    let breakdown = tier.failover().expect("failover succeeds");
    let failover_done = clock.now_paper();
    let report = handle.join();
    let pre_rate = mean_rate(&report.series, Duration::from_secs(20), kill_at);
    let recovered_at =
        recovery_time(&report.series, failover_done, pre_rate * 0.9).unwrap_or(total);
    let phases = FailoverPhases {
        recovery: breakdown.recovery,
        db_update: breakdown.db_update,
        cache_warmup: recovered_at.saturating_sub(failover_done),
        total: recovered_at.saturating_sub(kill_at),
    };
    StaleFailoverRun { series: report.series, pre_rate, phases, kill_at }
}

/// Figure 5(c,d): DMV tier with a master, two active slaves and one
/// 30-minute-stale backup; the master is killed (worst case, including
/// master reconfiguration), a slave is promoted and the stale backup is
/// reintegrated via selective page transfer.
pub fn dmv_stale_failover(time_scale: f64, kill_at: Duration, total: Duration) -> StaleFailoverRun {
    let scale = TpcwScale::small();
    let d = deploy_dmv(scale, time_scale, DmvOptions { slaves: 3, ..Default::default() });
    // Make one slave the "stale backup": it fails at t≈0 with its
    // baseline checkpoint and sits out the first part of the run.
    let stale = d.cluster.slave_ids()[2];
    d.cluster.kill_replica(stale);
    d.cluster.detect_and_reconfigure();

    let handle = dmv_tpcw::emulator::spawn_emulator(
        &d.backend,
        d.clock,
        &d.ids,
        scale,
        shopping_cfg(total, Duration::from_secs(10)),
    );
    wait_paper(d.clock, kill_at);
    let master = d.cluster.master(0).id();
    d.cluster.kill_replica(master);
    let t_kill = d.clock.now_paper();
    // Recovery phase: detection + discard of partially propagated
    // transactions + slave promotion.
    d.cluster.detect_and_reconfigure();
    let t_promoted = d.clock.now_paper();
    // DB update phase: reintegrate the stale backup as the new slave.
    let report = d.cluster.reintegrate(stale).expect("stale backup integrates");
    let t_integrated = d.clock.now_paper();
    let emu = handle.join();
    d.cluster.shutdown();

    let pre_rate = mean_rate(&emu.series, Duration::from_secs(20), kill_at);
    let recovered_at = recovery_time(&emu.series, t_integrated, pre_rate * 0.9).unwrap_or(total);
    let phases = FailoverPhases {
        recovery: t_promoted.saturating_sub(t_kill),
        db_update: report.duration,
        cache_warmup: recovered_at.saturating_sub(t_integrated),
        total: recovered_at.saturating_sub(kill_at),
    };
    StaleFailoverRun { series: emu.series, pre_rate, phases, kill_at }
}

/// Outcome of a spare-backup fail-over run (Figures 7–9 share this
/// harness; only the warmup strategy differs).
#[derive(Debug)]
pub struct SpareFailoverOutcome {
    /// Full-run throughput series.
    pub series: Vec<SeriesPoint>,
    /// Mean WIPS before the failure.
    pub pre_rate: f64,
    /// Minimum windowed WIPS in the post-failure interval.
    pub post_min_rate: f64,
    /// Mean WIPS over the tail of the run (after recovery should have
    /// completed).
    pub tail_rate: f64,
    /// Paper time of the kill.
    pub kill_at: Duration,
}

/// Runs the up-to-date-backup fail-over experiment (paper §6.3, cold /
/// warm backup cases): master + 1 active slave + 1 spare; the active
/// slave is killed mid-run and the spare is activated. The spare starts
/// with a cold cache; `warmup` determines whether and how it is warmed
/// during normal operation.
pub fn spare_failover_experiment(warmup: WarmupStrategy) -> SpareFailoverOutcome {
    let time_scale = 0.25;
    let scale = TpcwScale::small_large(); // the paper's larger 400K-customer config, 1/100
    let d = deploy_dmv(
        scale,
        time_scale,
        DmvOptions { slaves: 1, spares: 1, warmup, ..Default::default() },
    );
    // The spare subscribed to the stream but has a cold buffer cache.
    let spare_id = d.cluster.spare_ids()[0];
    d.cluster.replica(spare_id).expect("spare exists").evict_all();

    let kill_at = Duration::from_secs(60);
    let total = Duration::from_secs(140);
    let cfg = dmv_tpcw::emulator::EmulatorConfig {
        mix: dmv_tpcw::Mix::Shopping,
        n_clients: 24,
        think_time: Duration::from_millis(200),
        duration: total,
        warmup: Duration::ZERO,
        retries: 30,
        seed: SEED,
        series_window: Duration::from_secs(5),
    };
    let handle = dmv_tpcw::emulator::spawn_emulator(&d.backend, d.clock, &d.ids, scale, cfg);
    // Kill the active slave at the scheduled paper time.
    let victim = d.cluster.slave_ids()[0];
    while d.clock.now_paper() < kill_at {
        std::thread::sleep(Duration::from_millis(5));
    }
    d.cluster.kill_replica(victim);
    let report = handle.join();
    d.cluster.shutdown();

    let pre_rate = mean_rate(&report.series, Duration::from_secs(15), kill_at);
    let post: Vec<f64> = report
        .series
        .iter()
        .filter(|p| p.start >= kill_at && p.start < kill_at + Duration::from_secs(40))
        .map(SeriesPoint::rate)
        .collect();
    let post_min_rate = post.iter().copied().fold(f64::INFINITY, f64::min);
    let tail_rate = mean_rate(&report.series, total - Duration::from_secs(30), total);
    SpareFailoverOutcome { series: report.series, pre_rate, post_min_rate, tail_rate, kill_at }
}
