//! # dmv-check
//!
//! A miniature [loom]-style concurrency model checker plus the shim
//! primitives the DMV hot path is written against.
//!
//! The replication hot path (version vectors, applier shards, scheduler
//! routing counters, the commit→broadcast lock chain) is built from
//! lock-free atomics and fine-grained locks whose correctness depends on
//! the *ordering* of version-metadata reads and writes — exactly the
//! class of property stress tests only probabilistically cover (PR 1
//! shipped with a torn-`snapshot` bug that two million stress iterations
//! can miss but a 3-step interleaving exposes). This crate makes those
//! orderings checkable:
//!
//! * **Shim types** — [`sync::Mutex`], [`sync::Condvar`], [`sync::RwLock`],
//!   [`sync::atomic`], [`thread::spawn`]. Under a normal build they are
//!   zero-cost re-exports of `std::sync::atomic` / `parking_lot` — the
//!   exact types the code used before. Under `RUSTFLAGS="--cfg dmv_check"`
//!   they route every operation through a controlled scheduler; under
//!   `RUSTFLAGS="--cfg dmv_race"` they stay real (OS threads, real
//!   parking_lot locks) but feed every operation to the [`race`]
//!   happens-before detector.
//! * **A model checker** — [`model`] / [`model_result`] run a closure
//!   under bounded-exhaustive interleaving exploration: depth-first
//!   search over every scheduling decision (with a CHESS-style
//!   preemption bound) and an acquire/release/seqcst-aware value oracle
//!   that lets non-SeqCst loads return any coherence-permitted stale
//!   value. Assertion failures and deadlocks are reported together with
//!   the exact schedule that produced them, and the failing schedule is
//!   replayed deterministically on every run.
//! * **A race detector** — [`race`] / [`report`] / [`vc`] implement a
//!   FastTrack-style vector-clock happens-before detector that runs
//!   during ordinary multi-threaded tests (`--cfg dmv_race`, CI job
//!   `race-detect`). It flags relaxed loads that observe unordered
//!   writes, acquire loads whose store side lost its release ordering,
//!   lock-order inversions (dynamic and against the declared chains in
//!   `xtask/lock_order.toml`), and condvar wakes with no
//!   happens-before edge to their notifier — each report naming both
//!   racing source sites plus a shim-op replay trace. See DESIGN.md
//!   "Happens-before model & race detection" for the mode matrix and
//!   the per-op vector-clock algebra.
//!
//! # Semantics in checked mode
//!
//! * One thread runs at a time; every atomic access, lock operation,
//!   condvar operation, spawn and join is a *schedule point* where the
//!   explorer may switch threads (subject to the preemption bound).
//! * `Condvar::wait_until` never times out: a waiter that is never
//!   notified blocks forever, which the checker reports as a deadlock —
//!   so "no lost wakeup" properties fall out of deadlock detection.
//! * `SeqCst` operations read the latest value in modification order;
//!   `Acquire`/`Relaxed` loads may read any store not overwritten by a
//!   store that happens-before the loading thread (bounded by
//!   [`ModelOptions::oracle_window`]); acquire loads of release stores
//!   merge vector clocks.
//! * A panic in any modeled thread aborts the execution and fails the
//!   model with the offending schedule.
//!
//! [loom]: https://github.com/tokio-rs/loom

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

#[cfg(all(dmv_check, dmv_race))]
compile_error!(
    "--cfg dmv_check (bounded model checking) and --cfg dmv_race \
     (happens-before detection on real runs) are mutually exclusive; \
     pick one per build"
);

use std::fmt;

#[cfg(dmv_check)]
mod oracle;
#[cfg(dmv_check)]
mod sched;

pub mod race;
pub mod report;
pub mod sync;
pub mod thread;
pub mod vc;

/// Exploration bounds for [`model_with`] / [`model_result`].
#[derive(Debug, Clone, Copy)]
pub struct ModelOptions {
    /// CHESS-style preemption bound: the maximum number of times one
    /// execution may switch away from a thread that could have kept
    /// running. Most memory-model bugs need ≤ 2 preemptions.
    pub preemptions: usize,
    /// Hard cap on explored executions; exploration stops (reporting a
    /// non-exhaustive pass) once reached.
    pub max_executions: u64,
    /// How many trailing stores per atomic a non-SeqCst load may choose
    /// from (value-oracle branching bound).
    pub oracle_window: usize,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions { preemptions: 2, max_executions: 100_000, oracle_window: 3 }
    }
}

/// A model-checking failure: what went wrong and the schedule (sequence
/// of explorer choices) that reproduces it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Panic message or deadlock description from the failing execution.
    pub message: String,
    /// The choice sequence that deterministically reproduces the bug.
    pub schedule: Vec<usize>,
    /// Executions explored before the bug was found (1-based).
    pub executions: u64,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model check failed after {} execution(s): {}\n  schedule: {:?}",
            self.executions, self.message, self.schedule
        )
    }
}

/// A completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Executions explored.
    pub executions: u64,
    /// True if the bounded search space was fully explored (as opposed
    /// to stopping at [`ModelOptions::max_executions`]).
    pub exhausted: bool,
}

#[cfg(dmv_check)]
pub use sched::model_result;

/// Runs `f` under the model checker (checked builds) or once, directly
/// (normal builds), panicking with the failing schedule if a bug is
/// found.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(ModelOptions::default(), f);
}

/// [`model`] with explicit exploration bounds.
///
/// # Panics
///
/// Panics with the [`Failure`] report if any explored execution panics
/// or deadlocks.
pub fn model_with<F>(opts: ModelOptions, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(fail) = model_result(opts, f) {
        panic!("{fail}");
    }
}

/// Explores `f` and returns the first failure instead of panicking —
/// the entry point for tests asserting that a known-bad implementation
/// *is* caught.
///
/// # Errors
///
/// Returns the [`Failure`] (message + reproducing schedule) of the
/// first execution that panics or deadlocks.
#[cfg(not(dmv_check))]
pub fn model_result<F>(_opts: ModelOptions, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    // Passthrough: a single direct run; real exploration needs
    // RUSTFLAGS="--cfg dmv_check".
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f)) {
        Ok(()) => Ok(Report { executions: 1, exhausted: false }),
        Err(payload) => Err(Failure {
            message: panic_message(payload.as_ref()),
            schedule: Vec::new(),
            executions: 1,
        }),
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
