//! The memory-model value oracle: vector clocks plus per-atomic store
//! histories, deciding which values a load is allowed to observe.
//!
//! The model is a pragmatic subset of C11:
//!
//! * every atomic keeps its full **modification order** (the sequence of
//!   stores, including read-modify-writes);
//! * `SeqCst` operations and RMWs always observe the latest store — a
//!   sound simplification that treats the SC order as the modification
//!   order (it under-approximates some exotic mixed-SC behaviors but
//!   never invents impossible ones for the SeqCst-dominant hot path);
//! * `Acquire`/`Relaxed` loads may observe **any** store newer than both
//!   (a) the newest store that happens-before the loading thread and
//!   (b) the thread's own coherence floor (the last store it observed on
//!   that atomic), bounded to a trailing window to keep branching
//!   finite. Each admissible value is a distinct exploration branch.
//! * acquire-or-stronger loads that observe a release-or-stronger store
//!   join the store's vector clock into the loading thread's clock
//!   (release/acquire synchronizes-with).

use std::sync::atomic::Ordering;

/// Thread index within one execution.
pub(crate) type Tid = usize;

/// A classic vector clock over thread ids.
#[derive(Clone, Debug, Default)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn get(&self, t: Tid) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Increments this thread's own component and returns the new value.
    pub(crate) fn bump(&mut self, t: Tid) -> u32 {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
        self.0[t]
    }

    /// Component-wise maximum (the happens-before join).
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            if *b > *a {
                *a = *b;
            }
        }
    }
}

/// One store in an atomic's modification order.
#[derive(Clone, Debug)]
pub(crate) struct StoreEv {
    pub(crate) val: u64,
    /// The storing thread's clock at the store (joined into acquirers
    /// when `release` holds).
    clock: VClock,
    /// True for `Release`/`AcqRel`/`SeqCst` stores.
    release: bool,
    /// Storing thread; `None` for the initial value.
    by: Option<Tid>,
    /// The storing thread's own clock component at the store, used for
    /// happens-before tests against a later reader.
    stamp: u32,
}

/// Per-atomic model state: modification order plus each thread's
/// coherence floor (index of the newest store it has observed).
#[derive(Debug)]
pub(crate) struct AtomicState {
    history: Vec<StoreEv>,
    seen: Vec<usize>,
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

impl AtomicState {
    pub(crate) fn new(initial: u64) -> Self {
        AtomicState {
            history: vec![StoreEv {
                val: initial,
                clock: VClock::default(),
                release: false,
                by: None,
                stamp: 0,
            }],
            seen: Vec::new(),
        }
    }

    fn floor_of(&self, t: Tid) -> usize {
        self.seen.get(t).copied().unwrap_or(0)
    }

    fn note_seen(&mut self, t: Tid, idx: usize) {
        if self.seen.len() <= t {
            self.seen.resize(t + 1, 0);
        }
        self.seen[t] = self.seen[t].max(idx);
    }

    /// Indices of the stores a load by `t` (with clock `clock`) may
    /// observe, oldest first. Never empty: the latest store is always
    /// admissible.
    pub(crate) fn admissible(&self, t: Tid, clock: &VClock, window: usize) -> Vec<usize> {
        let len = self.history.len();
        // Newest store that happens-before the reader: everything older
        // is coherence-forbidden.
        let mut hb_floor = 0;
        for (i, ev) in self.history.iter().enumerate() {
            let hb = match ev.by {
                None => true,
                Some(w) => ev.stamp <= clock.get(w),
            };
            if hb {
                hb_floor = i;
            }
        }
        let window_floor = len.saturating_sub(window.max(1));
        let floor = hb_floor.max(self.floor_of(t)).max(window_floor);
        (floor..len).collect()
    }

    /// Completes a load of store `idx`: advances the coherence floor and
    /// (for acquire loads of release stores) returns the clock to join.
    pub(crate) fn observe(&mut self, t: Tid, idx: usize, ord: Ordering) -> (u64, Option<VClock>) {
        self.note_seen(t, idx);
        let ev = &self.history[idx];
        let sync = if ev.release && is_acquire(ord) { Some(ev.clock.clone()) } else { None };
        (ev.val, sync)
    }

    /// Index of the latest store (what SeqCst loads and RMWs observe).
    pub(crate) fn latest(&self) -> usize {
        self.history.len() - 1
    }

    /// Appends a store by `t`; `clock` must already carry the thread's
    /// bumped component (`stamp`).
    pub(crate) fn push_store(
        &mut self,
        t: Tid,
        val: u64,
        clock: VClock,
        stamp: u32,
        ord: Ordering,
    ) {
        self.history.push(StoreEv { val, clock, release: is_release(ord), by: Some(t), stamp });
        let idx = self.latest();
        self.note_seen(t, idx);
    }
}
