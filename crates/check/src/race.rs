//! FastTrack-style happens-before race detection over the shim
//! primitives, for **real** multi-threaded runs (`--cfg dmv_race`).
//!
//! Where `dmv_check` explores bounded interleavings of a small closed
//! model, this module instruments whatever execution actually happens:
//! every shim operation updates per-thread vector clocks ([`crate::vc`])
//! and per-object release clocks, and three classes of happens-before
//! violation are reported ([`crate::report`]):
//!
//! 1. **Relaxed communication** — a load observes a store it has no
//!    happens-before edge to, and the only "ordering" in the exchange
//!    is a `Relaxed` access (either the load is `Relaxed`, or an
//!    `Acquire` load observed a non-release store). Locations whose
//!    accesses are *all* `Relaxed` (independent stats counters, by
//!    policy annotated `relaxed-ok:`) are exempt: they communicate no
//!    cross-cell invariant, and flagging them would bury real findings.
//! 2. **Lock-order inversion** — a thread acquires lock B while holding
//!    lock A after some thread acquired A while holding B (dynamic
//!    cycle), or in an order contradicting a declared chain in
//!    `xtask/lock_order.toml` (locks are named via [`label`]).
//! 3. **Condvar wake without happens-before** — a wait returns due to a
//!    notify whose notifier has published nothing the waiter now
//!    happens-after, i.e. the notify protocol lost its memory-ordering
//!    edge (the bug class the applier/ack "missed-notify" protocol
//!    exists to prevent).
//!
//! The detector itself is mode-independent: [`Detector`] is plain code
//! driven through an explicit API, so the mutation corpus
//! (`tests/race_mutations.rs`) can script known-bad interleavings in
//! any build. Under `--cfg dmv_race` the shims in [`crate::sync`] and
//! [`crate::thread`] drive the process-wide [`global`] instance.
//!
//! All detector state sits behind one mutex; operations serialize
//! through it. That costs throughput (fine for test runs) but cannot
//! mask a race: detection is happens-before-based, so any execution
//! that exhibits a reads-from edge without an ordering edge is flagged
//! regardless of how the instrumentation interleaves the threads.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::report::{write_artifact, Access, OpRecord, RaceKind, RaceReport, Site};
use crate::vc::{Epoch, VectorClock};

/// How many recent shim ops each thread keeps for replay traces.
const TRACE_CAP: usize = 48;

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// A declared lock-acquisition chain from `xtask/lock_order.toml`.
#[derive(Clone, Debug)]
pub struct Chain {
    /// Chain name (diagnostic only).
    pub name: String,
    /// Lock names in the order they must be acquired.
    pub order: Vec<String>,
}

struct ThreadState {
    name: String,
    vc: VectorClock,
    /// The clock this thread last made visible through a release
    /// operation — what a condvar notify can promise its waiters.
    published: VectorClock,
    held: Vec<HeldLock>,
    trace: VecDeque<OpRecord>,
}

#[derive(Clone, Copy)]
struct HeldLock {
    lock: usize,
    site: Site,
}

struct WriteInfo {
    epoch: Epoch,
    site: Site,
    release: bool,
    thread: String,
    op: &'static str,
}

#[derive(Default)]
struct LocState {
    label: Option<&'static str>,
    /// Join of the clocks of all release-ordered writers.
    sync: VectorClock,
    last_write: Option<WriteInfo>,
    /// True once any access used a non-`Relaxed` ordering; pure-relaxed
    /// locations are exempt from communication checks (see module doc).
    sync_seen: bool,
}

#[derive(Default)]
struct LockState {
    label: Option<&'static str>,
    /// Join of the clocks of all releasers.
    clock: VectorClock,
    last_acquire_site: Option<Site>,
}

#[derive(Default)]
struct CvState {
    label: Option<&'static str>,
    notify_seq: u64,
    /// `(published clock, tid, site)` of the most recent notifier.
    last_notify: Option<(VectorClock, usize, Site)>,
}

#[derive(Default)]
struct State {
    threads: Vec<ThreadState>,
    locs: HashMap<usize, LocState>,
    locks: HashMap<usize, LockState>,
    cvs: HashMap<usize, CvState>,
    next_object: usize,
    /// Observed acquisition edges: `(held, acquired)` with the sites of
    /// the first observation.
    edges: HashMap<(usize, usize), (Site, Site)>,
    chains: Vec<Chain>,
    reports: Vec<RaceReport>,
    dedup: HashSet<(&'static str, Site, Site)>,
}

impl State {
    fn thread(&mut self, tid: usize) -> &mut ThreadState {
        &mut self.threads[tid]
    }

    fn loc_label(&self, id: usize) -> String {
        match self.locs.get(&id).and_then(|l| l.label) {
            Some(l) => l.to_string(),
            None => format!("atomic#{id}"),
        }
    }

    fn lock_label(&self, id: usize) -> String {
        match self.locks.get(&id).and_then(|l| l.label) {
            Some(l) => l.to_string(),
            None => format!("lock#{id}"),
        }
    }

    fn cv_label(&self, id: usize) -> String {
        match self.cvs.get(&id).and_then(|l| l.label) {
            Some(l) => l.to_string(),
            None => format!("condvar#{id}"),
        }
    }

    fn record_op(&mut self, tid: usize, op: &'static str, object: String, site: Site) {
        let t = self.thread(tid);
        if t.trace.len() == TRACE_CAP {
            t.trace.pop_front();
        }
        t.trace.push_back(OpRecord { tid, op, object, site });
    }

    fn publish(
        &mut self,
        kind: RaceKind,
        object: String,
        message: String,
        prior: Access,
        current: Access,
        tid: usize,
    ) {
        if !self.dedup.insert((kind.tag(), prior.site, current.site)) {
            return;
        }
        let report = RaceReport {
            kind,
            message,
            object,
            prior,
            current,
            trace: self.threads[tid].trace.iter().cloned().collect(),
            backtrace: std::backtrace::Backtrace::force_capture().to_string(),
        };
        eprintln!("{report}");
        write_artifact(&report, self.reports.len());
        self.reports.push(report);
    }
}

/// The happens-before engine. One instance per process in `dmv_race`
/// builds ([`global`]); the mutation corpus builds its own.
#[derive(Default)]
pub struct Detector {
    state: Mutex<State>,
}

impl Detector {
    /// A detector with no declared lock chains.
    pub fn new() -> Self {
        Detector::default()
    }

    /// A detector cross-checking dynamic lock acquisitions against
    /// declared chains.
    pub fn with_lock_order(chains: Vec<Chain>) -> Self {
        let d = Detector::new();
        d.state.lock().chains = chains;
        d
    }

    // ------------------------------------------------------- threads

    /// Registers a thread; `parent` (if any) donates a fork edge, so
    /// the child happens-after everything the parent did so far.
    pub fn register_thread(&self, parent: Option<usize>, name: Option<String>) -> usize {
        let mut s = self.state.lock();
        let tid = s.threads.len();
        let mut vc = match parent {
            Some(p) => s.threads[p].vc.clone(),
            None => VectorClock::new(),
        };
        vc.set(tid, 1);
        if let Some(p) = parent {
            s.threads[p].vc.bump(p);
        }
        let name = name.unwrap_or_else(|| format!("t{tid}"));
        s.threads.push(ThreadState {
            name,
            published: vc.clone(),
            vc,
            held: Vec::new(),
            trace: VecDeque::new(),
        });
        tid
    }

    /// A join edge: `joiner` happens-after everything `joined` did.
    pub fn join_edge(&self, joiner: usize, joined: usize) {
        let mut s = self.state.lock();
        let child = s.threads[joined].vc.clone();
        s.threads[joiner].vc.join(&child);
    }

    // ------------------------------------------------------- atomics

    /// Allocates an id for a new shim object (atomic, lock or condvar).
    pub fn alloc_object(&self) -> usize {
        let mut s = self.state.lock();
        let id = s.next_object;
        s.next_object += 1;
        id
    }

    /// Names an atomic location for reports.
    pub fn label_loc(&self, loc: usize, label: &'static str) {
        self.state.lock().locs.entry(loc).or_default().label = Some(label);
    }

    /// Names a lock, connecting it to `xtask/lock_order.toml` chains.
    pub fn label_lock(&self, lock: usize, label: &'static str) {
        self.state.lock().locks.entry(lock).or_default().label = Some(label);
    }

    /// Names a condvar for reports.
    pub fn label_cv(&self, cv: usize, label: &'static str) {
        self.state.lock().cvs.entry(cv).or_default().label = Some(label);
    }

    /// An atomic load: acquire orderings join the location's release
    /// clock; then the observed last write is checked for an ordering
    /// edge (see module doc for the exemption of pure-relaxed
    /// locations).
    pub fn atomic_load(&self, tid: usize, loc: usize, ord: Ordering, site: Site) {
        self.atomic_load_op(tid, loc, ord, site, || ());
    }

    /// [`Detector::atomic_load`] wrapping the real operation, so the
    /// observed value and the recorded last-write metadata cannot be
    /// torn apart by a concurrent shim op on the same location.
    pub fn atomic_load_op<T>(
        &self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        site: Site,
        f: impl FnOnce() -> T,
    ) -> T {
        let mut s = self.state.lock();
        let v = f();
        let object = s.loc_label(loc);
        s.record_op(tid, "load", object, site);
        self.read_sync(&mut s, tid, loc, ord);
        self.check_read(&mut s, tid, loc, ord, site);
        v
    }

    /// An atomic store: release orderings publish the writer's clock
    /// into the location; the last-write epoch is always updated.
    pub fn atomic_store(&self, tid: usize, loc: usize, ord: Ordering, site: Site) {
        self.atomic_store_op(tid, loc, ord, site, || ());
    }

    /// [`Detector::atomic_store`] wrapping the real operation.
    pub fn atomic_store_op<T>(
        &self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        site: Site,
        f: impl FnOnce() -> T,
    ) -> T {
        let mut s = self.state.lock();
        let v = f();
        let object = s.loc_label(loc);
        s.record_op(tid, "store", object, site);
        self.write_side(&mut s, tid, loc, ord, site, "store");
        v
    }

    /// An atomic read-modify-write: the read side is checked like a
    /// load of the same ordering, the write side published like a
    /// store.
    pub fn atomic_rmw(&self, tid: usize, loc: usize, ord: Ordering, site: Site) {
        self.atomic_rmw_op(tid, loc, ord, site, || ());
    }

    /// [`Detector::atomic_rmw`] wrapping the real operation.
    pub fn atomic_rmw_op<T>(
        &self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        site: Site,
        f: impl FnOnce() -> T,
    ) -> T {
        let mut s = self.state.lock();
        let v = f();
        let object = s.loc_label(loc);
        s.record_op(tid, "rmw", object, site);
        self.read_sync(&mut s, tid, loc, ord);
        self.check_read(&mut s, tid, loc, ord, site);
        self.write_side(&mut s, tid, loc, ord, site, "rmw");
        v
    }

    /// A compare-exchange: on success the read+write sides use the
    /// success ordering; on failure only a load with the failure
    /// ordering happened.
    pub fn atomic_cas_op<T, E>(
        &self,
        tid: usize,
        loc: usize,
        success: Ordering,
        failure: Ordering,
        site: Site,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        let mut s = self.state.lock();
        let r = f();
        let object = s.loc_label(loc);
        s.record_op(tid, "cas", object, site);
        let ord = if r.is_ok() { success } else { failure };
        self.read_sync(&mut s, tid, loc, ord);
        self.check_read(&mut s, tid, loc, ord, site);
        if r.is_ok() {
            self.write_side(&mut s, tid, loc, success, site, "cas");
        }
        r
    }

    /// Acquire-side synchronization of a read: join the location's
    /// release clock into the reader.
    fn read_sync(&self, s: &mut State, tid: usize, loc: usize, ord: Ordering) {
        if is_acquire(ord) {
            let sync = {
                let l = s.locs.entry(loc).or_default();
                l.sync_seen = true;
                l.sync.clone()
            };
            s.thread(tid).vc.join(&sync);
        }
    }

    fn check_read(&self, s: &mut State, tid: usize, loc: usize, ord: Ordering, site: Site) {
        let (w_epoch, w_site, w_release, w_thread, w_op) = {
            let Some(l) = s.locs.get(&loc) else { return };
            if !l.sync_seen {
                return;
            }
            let Some(w) = &l.last_write else { return };
            (w.epoch, w.site, w.release, w.thread.clone(), w.op)
        };
        if w_epoch.tid == tid || w_epoch.visible_to(&s.threads[tid].vc) {
            return;
        }
        let (kind, message) = if !is_acquire(ord) {
            (
                RaceKind::RelaxedRead,
                format!(
                    "Relaxed load observed `{w_op}` by {w_thread} with no happens-before \
                     edge; the relaxed access is the only ordering in this communication"
                ),
            )
        } else if !w_release {
            (
                RaceKind::RelaxedPublish,
                format!(
                    "{ord:?} load observed a non-release `{w_op}` by {w_thread}; the \
                     store side was downgraded, so the acquire creates no edge"
                ),
            )
        } else {
            // A release write the reader does not happen-after is
            // synchronized by this very acquire load (the join above);
            // nothing is missing.
            return;
        };
        let object = s.loc_label(loc);
        let prior = Access { thread: w_thread, op: w_op.to_string(), site: w_site };
        let current =
            Access { thread: s.threads[tid].name.clone(), op: format!("load({ord:?})"), site };
        s.publish(kind, object, message, prior, current, tid);
    }

    fn write_side(
        &self,
        s: &mut State,
        tid: usize,
        loc: usize,
        ord: Ordering,
        site: Site,
        op: &'static str,
    ) {
        let release = is_release(ord);
        let (epoch, thread_name) = {
            let t = &s.threads[tid];
            (t.vc.epoch(tid), t.name.clone())
        };
        if release {
            let vc = s.threads[tid].vc.clone();
            let l = s.locs.entry(loc).or_default();
            l.sync_seen = true;
            l.sync.join(&vc);
            s.threads[tid].published = vc;
            s.threads[tid].vc.bump(tid);
        }
        let l = s.locs.entry(loc).or_default();
        l.last_write = Some(WriteInfo { epoch, site, release, thread: thread_name, op });
    }

    // --------------------------------------------------------- locks

    /// A successful lock (or rwlock guard) acquisition: joins the
    /// lock's release clock and checks acquisition order against both
    /// the dynamically observed edge set and the declared chains.
    pub fn lock_acquire(&self, tid: usize, lock: usize, site: Site) {
        let mut s = self.state.lock();
        let object = s.lock_label(lock);
        s.record_op(tid, "lock", object, site);
        let clock = {
            let l = s.locks.entry(lock).or_default();
            l.last_acquire_site = Some(site);
            l.clock.clone()
        };
        s.thread(tid).vc.join(&clock);
        self.check_lock_order(&mut s, tid, lock, site);
        s.thread(tid).held.push(HeldLock { lock, site });
    }

    /// A lock (or guard) release: publishes the holder's clock into
    /// the lock.
    pub fn lock_release(&self, tid: usize, lock: usize, site: Site) {
        let mut s = self.state.lock();
        let object = s.lock_label(lock);
        s.record_op(tid, "unlock", object, site);
        let vc = s.threads[tid].vc.clone();
        s.locks.entry(lock).or_default().clock.join(&vc);
        s.threads[tid].published = vc;
        s.threads[tid].vc.bump(tid);
        let t = s.thread(tid);
        if let Some(pos) = t.held.iter().rposition(|h| h.lock == lock) {
            t.held.remove(pos);
        }
    }

    fn check_lock_order(&self, s: &mut State, tid: usize, acquiring: usize, site: Site) {
        let held: Vec<HeldLock> = s.threads[tid].held.clone();
        for h in held {
            if h.lock == acquiring {
                continue; // reentrant read locks are not an inversion
            }
            // Dynamic: someone acquired `h.lock` while holding
            // `acquiring` and we are doing the reverse.
            if let Some(&(prior_held, prior_acq)) = s.edges.get(&(acquiring, h.lock)) {
                let a_label = s.lock_label(acquiring);
                let h_label = s.lock_label(h.lock);
                let current = Access {
                    thread: s.threads[tid].name.clone(),
                    op: format!("lock `{a_label}` while holding `{h_label}`"),
                    site,
                };
                let prior = Access {
                    thread: "another thread".to_string(),
                    op: format!(
                        "lock `{h_label}` while holding `{a_label}` (held at {prior_held})"
                    ),
                    site: prior_acq,
                };
                let msg = format!(
                    "locks `{h_label}` and `{a_label}` are acquired in both orders; \
                     this can deadlock under contention"
                );
                s.publish(RaceKind::LockOrderInversion, a_label, msg, prior, current, tid);
            }
            s.edges.entry((h.lock, acquiring)).or_insert((h.site, site));
            // Declared: both locks named in one chain, wrong direction.
            let (Some(hl), Some(al)) = (
                s.locks.get(&h.lock).and_then(|l| l.label),
                s.locks.get(&acquiring).and_then(|l| l.label),
            ) else {
                continue;
            };
            for chain in s.chains.clone() {
                let hi = chain.order.iter().position(|n| n == hl);
                let ai = chain.order.iter().position(|n| n == al);
                if let (Some(hi), Some(ai)) = (hi, ai) {
                    if ai < hi {
                        let current = Access {
                            thread: s.threads[tid].name.clone(),
                            op: format!("lock `{al}` while holding `{hl}`"),
                            site,
                        };
                        let prior = Access {
                            thread: s.threads[tid].name.clone(),
                            op: format!("lock `{hl}`"),
                            site: h.site,
                        };
                        let msg = format!(
                            "declared chain `{}` orders `{al}` before `{hl}`, but `{al}` \
                             was acquired second",
                            chain.name
                        );
                        s.publish(
                            RaceKind::LockOrderInversion,
                            al.to_string(),
                            msg,
                            prior,
                            current,
                            tid,
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------ condvars

    /// A notify: remembers the notifier's *published* clock — what a
    /// correctly synchronized waiter will happen-after once it
    /// reacquires the mutex the notifier released.
    pub fn cv_notify(&self, tid: usize, cv: usize, site: Site) {
        let mut s = self.state.lock();
        let object = s.cv_label(cv);
        s.record_op(tid, "notify", object, site);
        let published = s.threads[tid].published.clone();
        let c = s.cvs.entry(cv).or_default();
        c.notify_seq += 1;
        c.last_notify = Some((published, tid, site));
    }

    /// Called before a wait parks; returns the notify sequence number
    /// used by [`Detector::cv_wait_end`] to ignore wakes with no
    /// intervening notify (timeout slices, spurious wakes).
    pub fn cv_wait_begin(&self, tid: usize, cv: usize, site: Site) -> u64 {
        let mut s = self.state.lock();
        let object = s.cv_label(cv);
        s.record_op(tid, "wait", object, site);
        s.cvs.entry(cv).or_default().notify_seq
    }

    /// Called after a wait returns and the mutex is reacquired: if a
    /// notify happened during the wait and the waiter still does not
    /// happen-after what that notifier had published, the notify
    /// protocol has no ordering edge.
    pub fn cv_wait_end(&self, tid: usize, cv: usize, begin_seq: u64, timed_out: bool, site: Site) {
        if timed_out {
            return;
        }
        let mut s = self.state.lock();
        let Some(c) = s.cvs.get(&cv) else { return };
        if c.notify_seq == begin_seq {
            return; // no notify since parking: nothing to check
        }
        let Some((published, ntid, nsite)) = c.last_notify.clone() else { return };
        if ntid == tid || published.leq(&s.threads[tid].vc) {
            return;
        }
        let object = s.cv_label(cv);
        let notifier = s.threads[ntid].name.clone();
        let prior = Access { thread: notifier.clone(), op: "notify".to_string(), site: nsite };
        let current =
            Access { thread: s.threads[tid].name.clone(), op: "wait returned".to_string(), site };
        let msg = format!(
            "condvar wait woke from a notify by {notifier}, but the waiter has no \
             happens-before edge to anything that thread published; state read after \
             this wake may be stale"
        );
        s.publish(RaceKind::CondvarNoHb, object, msg, prior, current, tid);
    }

    // ------------------------------------------------------- reports

    /// Number of reports so far.
    pub fn report_count(&self) -> usize {
        self.state.lock().reports.len()
    }

    /// Snapshot of all reports so far.
    pub fn reports(&self) -> Vec<RaceReport> {
        self.state.lock().reports.clone()
    }
}

// --------------------------------------------------------------- global

static GLOBAL: OnceLock<Detector> = OnceLock::new();

std::thread_local! {
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The process-wide detector the `dmv_race` shims report to.
pub fn global() -> &'static Detector {
    GLOBAL.get_or_init(|| Detector::with_lock_order(load_declared_chains()))
}

/// The calling thread's detector id, registering it lazily. Threads
/// spawned through [`crate::thread`] are registered with a fork edge by
/// the spawner; anything else (the test harness thread, `main`) starts
/// with an empty clock, which is sound for roots that do their setup
/// before any shimmed child runs.
pub fn current_tid() -> usize {
    TID.with(|t| match t.get() {
        Some(tid) => tid,
        None => {
            let name = std::thread::current().name().map(str::to_string);
            let tid = global().register_thread(None, name);
            t.set(Some(tid));
            tid
        }
    })
}

/// Binds the calling thread to a pre-registered id (spawn wrapper).
#[cfg_attr(not(dmv_race), allow(dead_code))]
pub(crate) fn set_current_tid(tid: usize) {
    TID.with(|t| t.set(Some(tid)));
}

/// Loads the declared chains from `xtask/lock_order.toml`
/// (`DMV_RACE_LOCK_ORDER` overrides the path). Missing file → no
/// declared-order checking, dynamic inversion detection still applies.
fn load_declared_chains() -> Vec<Chain> {
    let path = std::env::var("DMV_RACE_LOCK_ORDER").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../xtask/lock_order.toml").to_string()
    });
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    parse_chains(&text)
}

/// Minimal parser for the `[[chain]]` tables the lint also reads: each
/// table has a `name = "..."` and an `order = ["a", "b", ...]` line.
pub fn parse_chains(text: &str) -> Vec<Chain> {
    let mut chains = Vec::new();
    let mut current: Option<Chain> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("[[chain]]") {
            if let Some(c) = current.take() {
                chains.push(c);
            }
            current = Some(Chain { name: String::new(), order: Vec::new() });
        } else if let Some(rest) = line.strip_prefix("name") {
            if let (Some(c), Some(v)) = (current.as_mut(), quoted_values(rest).next()) {
                c.name = v;
            }
        } else if let Some(rest) = line.strip_prefix("order") {
            if let Some(c) = current.as_mut() {
                c.order = quoted_values(rest).collect();
            }
        }
    }
    if let Some(c) = current.take() {
        chains.push(c);
    }
    chains.retain(|c| !c.order.is_empty());
    chains
}

fn quoted_values(s: &str) -> impl Iterator<Item = String> + '_ {
    s.split('"').skip(1).step_by(2).map(str::to_string)
}

/// Panics if the global detector has recorded any race report. No-op
/// in builds where the shims do not instrument (no reports can exist),
/// so tests can call it unconditionally.
pub fn assert_clean() {
    let d = global();
    let n = d.report_count();
    if n > 0 {
        let tags: Vec<String> =
            d.reports().iter().map(|r| format!("{} on `{}`", r.kind.tag(), r.object)).collect();
        panic!("dmv-race recorded {n} race report(s): {tags:?} (see stderr / DMV_RACE_REPORT_DIR)");
    }
}

/// Objects that can be given a stable name for race reports and
/// declared lock-order checking. In builds without `dmv_race` every
/// implementation is a no-op.
pub trait Labeled {
    /// Attaches `name` to the object in the active detector.
    fn set_race_label(&self, name: &'static str);
}

/// Names a shim object (lock, condvar or atomic) in race reports; for
/// locks the name also connects it to `xtask/lock_order.toml` chains.
pub fn label<T: Labeled + ?Sized>(object: &T, name: &'static str) {
    object.set_race_label(name);
}
