//! Race-report data model and CI artifact output.
//!
//! A [`RaceReport`] names **both** racing sites (source locations
//! captured through `#[track_caller]` on every shim operation), the
//! detecting thread's recent shim-op trace (enough to replay the
//! interleaving by hand), and a full backtrace captured at the moment
//! of detection. Reports are printed to stderr as they are found and,
//! when `DMV_RACE_REPORT_DIR` is set (the CI `race-detect` job sets it
//! to `target/race-reports`), each one is also written to its own file
//! so a failing job can upload them as artifacts.

use std::fmt;
use std::panic::Location;

/// A source location of one shim operation (`file:line:column`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Site(&'static Location<'static>);

impl Site {
    /// The caller's location; every shim entry point is
    /// `#[track_caller]`, so this is hot-path source, not shim source.
    #[track_caller]
    pub fn caller() -> Self {
        Site(Location::caller())
    }

    /// The file component (workspace-relative for in-tree code).
    pub fn file(&self) -> &'static str {
        self.0.file()
    }

    /// The 1-based line.
    pub fn line(&self) -> u32 {
        self.0.line()
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.0.file(), self.0.line(), self.0.column())
    }
}

impl fmt::Debug for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// One side of a race: which thread did what, where.
#[derive(Clone)]
pub struct Access {
    /// Thread name (builder name if given, else `t<id>`).
    pub thread: String,
    /// Operation kind, e.g. `store(Relaxed)` or `lock`.
    pub op: String,
    /// Source location of the operation.
    pub site: Site,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} at {}", self.thread, self.op, self.site)
    }
}

/// What class of ordering violation was observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaceKind {
    /// A `Relaxed` load observed a store it has no happens-before edge
    /// to: the relaxed access is the only "ordering" in the
    /// communication.
    RelaxedRead,
    /// An `Acquire`/`SeqCst` load observed a store that was published
    /// without release ordering, so the acquire created no edge.
    RelaxedPublish,
    /// Two locks were acquired in opposite orders (dynamically
    /// observed), or in an order contradicting `xtask/lock_order.toml`.
    LockOrderInversion,
    /// A condvar wait returned after a notify whose notifier has no
    /// happens-before edge to the waiter.
    CondvarNoHb,
}

impl RaceKind {
    /// Short stable tag used in report headers and file names.
    pub fn tag(&self) -> &'static str {
        match self {
            RaceKind::RelaxedRead => "relaxed-read",
            RaceKind::RelaxedPublish => "relaxed-publish",
            RaceKind::LockOrderInversion => "lock-order",
            RaceKind::CondvarNoHb => "condvar-no-hb",
        }
    }
}

/// One entry of a thread's shim-op ring buffer.
#[derive(Clone)]
pub struct OpRecord {
    /// Detector thread id.
    pub tid: usize,
    /// Operation kind (`load`, `store`, `rmw`, `lock`, `unlock`, ...).
    pub op: &'static str,
    /// The shim object operated on (label if named, else `#<id>`).
    pub object: String,
    /// Where in the source the operation happened.
    pub site: Site,
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{} {:8} {:<16} {}", self.tid, self.op, self.object, self.site)
    }
}

/// A detected happens-before violation, with everything needed to
/// triage it without rerunning: both sites, the object, the detecting
/// thread's recent shim ops, and a backtrace of the detection point.
#[derive(Clone)]
pub struct RaceReport {
    /// Violation class.
    pub kind: RaceKind,
    /// Human-readable one-line description.
    pub message: String,
    /// The object involved (atomic/lock/condvar label).
    pub object: String,
    /// The earlier access (the racing store, the first lock
    /// acquisition, the notify).
    pub prior: Access,
    /// The access at which the race was detected.
    pub current: Access,
    /// Recent shim operations of the detecting thread, oldest first.
    pub trace: Vec<OpRecord>,
    /// Backtrace captured at the detection point.
    pub backtrace: String,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== dmv-race: {} on `{}` ==", self.kind.tag(), self.object)?;
        writeln!(f, "   {}", self.message)?;
        writeln!(f, "   prior:   {}", self.prior)?;
        writeln!(f, "   current: {}", self.current)?;
        if !self.trace.is_empty() {
            writeln!(f, "   shim-op trace of detecting thread (oldest first):")?;
            for op in &self.trace {
                writeln!(f, "     {op}")?;
            }
        }
        if !self.backtrace.is_empty() {
            writeln!(f, "   detection backtrace:")?;
            for line in self.backtrace.lines() {
                writeln!(f, "     {line}")?;
            }
        }
        Ok(())
    }
}

/// Writes `report` to `$DMV_RACE_REPORT_DIR/race-<pid>-<n>-<tag>.txt`
/// (best effort; errors are swallowed — reporting must never take the
/// test run down on its own).
pub(crate) fn write_artifact(report: &RaceReport, n: usize) {
    let Ok(dir) = std::env::var("DMV_RACE_REPORT_DIR") else { return };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/race-{}-{n}-{}.txt", std::process::id(), report.kind.tag());
    let _ = std::fs::write(path, report.to_string());
}
