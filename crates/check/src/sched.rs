//! The controlled scheduler and DFS explorer.
//!
//! One execution = one run of the user closure with every shim operation
//! routed through [`Exec`]: exactly one modeled thread runs at a time,
//! and every operation is a *schedule point* where the explorer decides
//! which thread runs next. Each decision is recorded as a [`Choice`]
//! `(chosen, n)`; after an execution completes, the explorer backtracks
//! to the last choice with an unexplored alternative and replays the
//! prefix deterministically — classic stateless DFS with a CHESS-style
//! preemption bound.
//!
//! Modeled threads are real OS threads, but they hand the execution
//! token around through one `parking_lot` mutex/condvar pair, so there
//! is never real parallelism (and no unsafety) inside the model.
//!
//! Aborts (assertion panic, deadlock, explicit failure) are propagated
//! to blocked threads by waking them with the abort flag set; they
//! unwind with the [`Abort`] sentinel panic, which the per-thread
//! wrapper swallows. Drop-context operations (guard release) become
//! silent no-ops during an abort so unwinding never double-panics.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar as PlCondvar, Mutex as PlMutex};

use crate::oracle::{AtomicState, Tid, VClock};
use crate::{panic_message, Failure, ModelOptions, Report};

/// Sentinel panic payload used to unwind modeled threads on abort.
pub(crate) struct Abort;

/// Monotonic id distinguishing executions, so shim objects can lazily
/// (re-)register themselves on first use within each execution.
static GENERATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, Tid)>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// The `(exec, tid)` of the calling thread, if it is a modeled thread in
/// an active execution.
pub(crate) fn current() -> Option<(Arc<Exec>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Marks the calling OS thread as modeled thread `tid` of `exec`.
pub(crate) fn enter_model(exec: &Arc<Exec>, tid: Tid) {
    IN_MODEL.with(|c| c.set(true));
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
}

pub(crate) fn leave_model() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Suppress panic output from modeled threads: failures are captured in
/// the [`Failure`] report, and sentinel [`Abort`] unwinds are routine.
fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(Cell::get) {
                return;
            }
            prev(info);
        }));
    });
}

/// One scheduling (or value-oracle) decision: alternative `chosen` of
/// `n` was taken.
#[derive(Debug, Clone, Copy)]
struct Choice {
    chosen: usize,
    n: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Schedulable (or currently running).
    Runnable,
    /// Waiting to acquire a mutex/rwlock.
    Lock(usize),
    /// In `Condvar::wait`: parked on `cv`, will reacquire `lock` once
    /// notified.
    Cv {
        cv: usize,
        lock: usize,
        notified: bool,
    },
    /// In `JoinHandle::join` on the given thread.
    Join(Tid),
    Finished,
}

#[derive(Debug)]
struct TState {
    blocked: Blocked,
    clock: VClock,
}

#[derive(Debug)]
struct LockState {
    owner: Option<Tid>,
    /// Release clock: joined into each subsequent acquirer.
    clock: VClock,
}

struct Inner {
    running: Option<Tid>,
    threads: Vec<TState>,
    locks: Vec<LockState>,
    condvars: usize,
    atomics: Vec<AtomicState>,
    /// Choice log: a replayed prefix followed by fresh decisions.
    schedule: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    abort: Option<String>,
    finished: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Exec {
    generation: u64,
    opts: ModelOptions,
    m: PlMutex<Inner>,
    cv: PlCondvar,
}

/// Lazy per-execution registration cell embedded in each shim object.
///
/// Shim objects (atomics, mutexes, condvars) are created by the code
/// under test, often before any execution starts, and may be reused
/// across executions (e.g. a `static`). On first use inside an
/// execution the object registers itself and caches the id keyed by the
/// execution generation; first-use order is deterministic under replay,
/// so ids are stable across the DFS.
#[derive(Default)]
pub(crate) struct Registration {
    cell: PlMutex<(u64, usize)>,
}

impl Registration {
    pub(crate) const fn new() -> Self {
        Registration { cell: PlMutex::new((0, 0)) }
    }

    pub(crate) fn id_in(&self, exec: &Exec, register: impl FnOnce() -> usize) -> usize {
        let mut g = self.cell.lock();
        if g.0 != exec.generation {
            *g = (exec.generation, register());
        }
        g.1
    }
}

impl std::fmt::Debug for Registration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Registration")
    }
}

fn schedulable(inner: &Inner, t: Tid) -> bool {
    match inner.threads[t].blocked {
        Blocked::Runnable => true,
        Blocked::Lock(l) => inner.locks[l].owner.is_none(),
        Blocked::Cv { lock, notified, .. } => notified && inner.locks[lock].owner.is_none(),
        Blocked::Join(target) => inner.threads[target].blocked == Blocked::Finished,
        Blocked::Finished => false,
    }
}

impl Exec {
    fn new(opts: ModelOptions, prefix: Vec<Choice>) -> Self {
        Exec {
            generation: GENERATION.fetch_add(1, Ordering::SeqCst),
            opts,
            m: PlMutex::new(Inner {
                running: Some(0),
                threads: vec![TState { blocked: Blocked::Runnable, clock: VClock::default() }],
                locks: Vec::new(),
                condvars: 0,
                atomics: Vec::new(),
                schedule: prefix,
                pos: 0,
                preemptions: 0,
                abort: None,
                finished: 0,
                os_handles: Vec::new(),
            }),
            cv: PlCondvar::new(),
        }
    }

    /// Takes (or replays) a decision among `n` alternatives.
    fn choose(&self, inner: &mut Inner, n: usize) -> usize {
        if inner.pos < inner.schedule.len() {
            let c = inner.schedule[inner.pos];
            inner.pos += 1;
            if c.chosen < n {
                return c.chosen;
            }
            // The program took a different shape on replay — it must be
            // branching on something outside the model (time, OS
            // randomness, map iteration order).
            self.set_abort(
                inner,
                format!(
                    "schedule replay diverged at step {}: recorded choice {}/{} but only {n} \
                     alternatives exist; the modeled closure is nondeterministic",
                    inner.pos - 1,
                    c.chosen,
                    c.n
                ),
            );
            return 0;
        }
        inner.schedule.push(Choice { chosen: 0, n });
        inner.pos += 1;
        0
    }

    fn set_abort(&self, inner: &mut Inner, message: String) {
        if inner.abort.is_none() {
            inner.abort = Some(message);
        }
        self.cv.notify_all();
    }

    fn describe_threads(inner: &Inner) -> String {
        let mut s = String::new();
        for (t, st) in inner.threads.iter().enumerate() {
            use std::fmt::Write as _;
            let _ = write!(s, " t{t}={:?}", st.blocked);
        }
        s
    }

    /// Core schedule point: pick who runs next. `me` is the thread
    /// giving up (or offering to give up) the token.
    fn pick_next(&self, inner: &mut Inner, me: Tid) {
        if inner.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        let mut cands: Vec<Tid> = Vec::new();
        let me_runnable = schedulable(inner, me);
        if me_runnable {
            cands.push(me);
        }
        for t in 0..inner.threads.len() {
            if t != me && schedulable(inner, t) {
                cands.push(t);
            }
        }
        if cands.is_empty() {
            if inner.finished == inner.threads.len() {
                inner.running = None;
            } else {
                let msg =
                    format!("deadlock: no schedulable thread;{}", Self::describe_threads(inner));
                self.set_abort(inner, msg);
            }
            self.cv.notify_all();
            return;
        }
        let chosen = if cands.len() == 1 {
            cands[0]
        } else if me_runnable && inner.preemptions >= self.opts.preemptions {
            // Preemption budget spent: keep running without recording a
            // choice (replay recomputes this forced decision).
            me
        } else {
            cands[self.choose(inner, cands.len())]
        };
        if inner.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        if me_runnable && chosen != me {
            inner.preemptions += 1;
        }
        inner.threads[chosen].blocked = Blocked::Runnable;
        inner.running = Some(chosen);
        self.cv.notify_all();
    }

    /// Blocks until this thread holds the execution token. Returns true
    /// if the execution was aborted instead.
    fn wait_for_token(&self, inner: &mut parking_lot::MutexGuard<'_, Inner>, me: Tid) -> bool {
        loop {
            if inner.abort.is_some() {
                return true;
            }
            if inner.running == Some(me) {
                return false;
            }
            self.cv.wait(inner);
        }
    }

    /// Standard pre-operation schedule point; sentinel-panics on abort.
    fn op_point(&self, inner: &mut parking_lot::MutexGuard<'_, Inner>, me: Tid) {
        self.pick_next(inner, me);
        if self.wait_for_token(inner, me) {
            bail();
        }
    }

    fn check_abort(&self, inner: &Inner) {
        if inner.abort.is_some() {
            bail();
        }
    }

    // ---- object registration (lazy, deterministic under replay) ----

    pub(crate) fn register_lock(&self) -> usize {
        let mut g = self.m.lock();
        g.locks.push(LockState { owner: None, clock: VClock::default() });
        g.locks.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut g = self.m.lock();
        g.condvars += 1;
        g.condvars - 1
    }

    pub(crate) fn register_atomic(&self, initial: u64) -> usize {
        let mut g = self.m.lock();
        g.atomics.push(AtomicState::new(initial));
        g.atomics.len() - 1
    }

    // ---- locks ----

    pub(crate) fn lock_acquire(&self, me: Tid, lock: usize) {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
        while g.locks[lock].owner.is_some() {
            g.threads[me].blocked = Blocked::Lock(lock);
            self.pick_next(&mut g, me);
            if self.wait_for_token(&mut g, me) {
                bail();
            }
        }
        g.locks[lock].owner = Some(me);
        let release_clock = g.locks[lock].clock.clone();
        g.threads[me].clock.join(&release_clock);
    }

    /// Returns false if the lock was not registered to this execution's
    /// generation (possible when a guard outlives the execution).
    pub(crate) fn try_lock_acquire(&self, me: Tid, lock: usize) -> bool {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
        if g.locks[lock].owner.is_some() {
            return false;
        }
        g.locks[lock].owner = Some(me);
        let release_clock = g.locks[lock].clock.clone();
        g.threads[me].clock.join(&release_clock);
        true
    }

    /// `in_drop`: guard-release runs during unwinding, where a second
    /// panic would abort the process — stay silent once aborted.
    pub(crate) fn lock_release(&self, me: Tid, lock: usize, in_drop: bool) {
        let mut g = self.m.lock();
        if g.abort.is_some() {
            if in_drop {
                return;
            }
            bail();
        }
        if g.locks[lock].owner != Some(me) {
            // Guard moved across threads or released twice — a model
            // usage error; report rather than corrupt state.
            let msg =
                format!("lock {lock} released by t{me} but owned by {:?}", g.locks[lock].owner);
            self.set_abort(&mut g, msg);
            if in_drop {
                return;
            }
            bail();
        }
        g.locks[lock].owner = None;
        let me_clock = g.threads[me].clock.clone();
        g.locks[lock].clock.join(&me_clock);
        // Releasing is itself a schedule point: a waiter may grab the
        // lock before we run again.
        self.pick_next(&mut g, me);
        if self.wait_for_token(&mut g, me) && !in_drop {
            bail();
        }
    }

    // ---- condvars ----

    pub(crate) fn cv_wait(&self, me: Tid, cv: usize, lock: usize) {
        let mut g = self.m.lock();
        self.check_abort(&g);
        // Atomically release the lock and park.
        if g.locks[lock].owner != Some(me) {
            let msg = format!("Condvar::wait by t{me} without holding lock {lock}");
            self.set_abort(&mut g, msg);
            bail();
        }
        g.locks[lock].owner = None;
        let me_clock = g.threads[me].clock.clone();
        g.locks[lock].clock.join(&me_clock);
        g.threads[me].blocked = Blocked::Cv { cv, lock, notified: false };
        self.pick_next(&mut g, me);
        if self.wait_for_token(&mut g, me) {
            bail();
        }
        // We were notified, scheduled, and the lock was free: reacquire.
        g.locks[lock].owner = Some(me);
        let release_clock = g.locks[lock].clock.clone();
        g.threads[me].clock.join(&release_clock);
    }

    pub(crate) fn cv_notify(&self, me: Tid, cv: usize, all: bool) {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
        let waiters: Vec<Tid> = (0..g.threads.len())
            .filter(|&t| {
                matches!(g.threads[t].blocked,
                         Blocked::Cv { cv: c, notified, .. } if c == cv && !notified)
            })
            .collect();
        if waiters.is_empty() {
            return;
        }
        if all {
            for &t in &waiters {
                if let Blocked::Cv { notified, .. } = &mut g.threads[t].blocked {
                    *notified = true;
                }
            }
        } else {
            let pick = if waiters.len() == 1 { 0 } else { self.choose(&mut g, waiters.len()) };
            self.check_abort(&g);
            if let Blocked::Cv { notified, .. } = &mut g.threads[waiters[pick]].blocked {
                *notified = true;
            }
        }
    }

    // ---- atomics ----

    pub(crate) fn atomic_load(&self, me: Tid, id: usize, ord: Ordering) -> u64 {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
        let idx = if matches!(ord, Ordering::SeqCst) {
            g.atomics[id].latest()
        } else {
            let clock = g.threads[me].clock.clone();
            let cands = g.atomics[id].admissible(me, &clock, self.opts.oracle_window);
            let pick = if cands.len() == 1 { 0 } else { self.choose(&mut g, cands.len()) };
            self.check_abort(&g);
            cands[pick]
        };
        let (val, sync) = g.atomics[id].observe(me, idx, ord);
        if let Some(clock) = sync {
            g.threads[me].clock.join(&clock);
        }
        val
    }

    pub(crate) fn atomic_store(&self, me: Tid, id: usize, val: u64, ord: Ordering) {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
        let stamp = g.threads[me].clock.bump(me);
        let clock = g.threads[me].clock.clone();
        g.atomics[id].push_store(me, val, clock, stamp, ord);
    }

    /// Read-modify-write: observes the latest store (atomicity), applies
    /// `f`, appends the result; returns the previous value.
    pub(crate) fn atomic_rmw(
        &self,
        me: Tid,
        id: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
        let idx = g.atomics[id].latest();
        let (prev, sync) = g.atomics[id].observe(me, idx, ord);
        if let Some(clock) = sync {
            g.threads[me].clock.join(&clock);
        }
        let stamp = g.threads[me].clock.bump(me);
        let clock = g.threads[me].clock.clone();
        g.atomics[id].push_store(me, f(prev), clock, stamp, ord);
        prev
    }

    /// Compare-exchange; returns `Ok(prev)`/`Err(prev)` like std.
    pub(crate) fn atomic_cas(
        &self,
        me: Tid,
        id: usize,
        expected: u64,
        new: u64,
        ord: Ordering,
    ) -> Result<u64, u64> {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
        let idx = g.atomics[id].latest();
        let (prev, sync) = g.atomics[id].observe(me, idx, ord);
        if prev != expected {
            return Err(prev);
        }
        if let Some(clock) = sync {
            g.threads[me].clock.join(&clock);
        }
        let stamp = g.threads[me].clock.bump(me);
        let clock = g.threads[me].clock.clone();
        g.atomics[id].push_store(me, new, clock, stamp, ord);
        Ok(prev)
    }

    // ---- threads ----

    /// Registers a child thread (called from the parent, which pays a
    /// schedule point); the child inherits the parent's clock
    /// (spawn happens-before the child's first action).
    pub(crate) fn spawn_thread(&self, parent: Tid) -> Tid {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, parent);
        let clock = g.threads[parent].clock.clone();
        g.threads.push(TState { blocked: Blocked::Runnable, clock });
        g.threads.len() - 1
    }

    /// First call from a child OS thread: park until first scheduled.
    pub(crate) fn thread_started(&self, me: Tid) {
        let mut g = self.m.lock();
        if self.wait_for_token(&mut g, me) {
            bail();
        }
    }

    pub(crate) fn thread_finished(&self, me: Tid, panic_msg: Option<String>) {
        let mut g = self.m.lock();
        g.threads[me].blocked = Blocked::Finished;
        g.finished += 1;
        if let Some(msg) = panic_msg {
            self.set_abort(&mut g, msg);
        }
        if g.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut g, me);
    }

    pub(crate) fn join_wait(&self, me: Tid, target: Tid) {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
        while g.threads[target].blocked != Blocked::Finished {
            g.threads[me].blocked = Blocked::Join(target);
            self.pick_next(&mut g, me);
            if self.wait_for_token(&mut g, me) {
                bail();
            }
        }
        // Join edge: everything the child did happens-before us now.
        let child_clock = g.threads[target].clock.clone();
        g.threads[me].clock.join(&child_clock);
    }

    /// Explicit schedule point (`thread::yield_now`).
    pub(crate) fn yield_point(&self, me: Tid) {
        let mut g = self.m.lock();
        self.check_abort(&g);
        self.op_point(&mut g, me);
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.m.lock().os_handles.push(h);
    }

    // ---- explorer side ----

    fn wait_all_finished(&self) {
        let mut g = self.m.lock();
        while g.finished < g.threads.len() {
            self.cv.wait(&mut g);
        }
    }

    fn finish(&self) -> (Vec<Choice>, Option<String>) {
        let handles = std::mem::take(&mut self.m.lock().os_handles);
        for h in handles {
            // Wrapper threads catch all panics; join cannot fail.
            let _ = h.join();
        }
        let mut g = self.m.lock();
        (std::mem::take(&mut g.schedule), g.abort.take())
    }
}

/// Unwind the calling modeled thread with the sentinel payload.
fn bail() -> ! {
    std::panic::panic_any(Abort)
}

/// Rewind to the deepest choice with an unexplored alternative.
fn next_prefix(mut schedule: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = schedule.last_mut() {
        if last.chosen + 1 < last.n {
            last.chosen += 1;
            return Some(schedule);
        }
        schedule.pop();
    }
    None
}

/// Explores `f` and returns the first failure instead of panicking —
/// the entry point for tests asserting that a known-bad implementation
/// *is* caught.
///
/// # Errors
///
/// Returns the [`Failure`] (message + reproducing schedule) of the
/// first execution that panics or deadlocks.
pub fn model_result<F>(opts: ModelOptions, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let f = Arc::new(f);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        let exec = Arc::new(Exec::new(opts, prefix));
        let fm = Arc::clone(&f);
        let em = Arc::clone(&exec);
        let main = std::thread::Builder::new()
            .name("dmv-check-main".into())
            .spawn(move || {
                enter_model(&em, 0);
                let result = catch_unwind(AssertUnwindSafe(|| fm()));
                leave_model();
                let msg = match result {
                    Ok(()) => None,
                    Err(p) if p.is::<Abort>() => None,
                    Err(p) => Some(panic_message(p.as_ref())),
                };
                em.thread_finished(0, msg);
            })
            .expect("spawn model main thread");
        exec.wait_all_finished();
        let _ = main.join();
        let (schedule, abort) = exec.finish();
        if let Some(message) = abort {
            return Err(Failure {
                message,
                schedule: schedule.iter().map(|c| c.chosen).collect(),
                executions,
            });
        }
        if executions >= opts.max_executions {
            return Ok(Report { executions, exhausted: false });
        }
        match next_prefix(schedule) {
            Some(p) => prefix = p,
            None => return Ok(Report { executions, exhausted: true }),
        }
    }
}
