//! Shimmed synchronization primitives.
//!
//! Normal builds: literal re-exports of `parking_lot` and
//! `std::sync::atomic` — zero cost, zero behavior change. Under
//! `--cfg dmv_check`: wrappers that route every operation through the
//! controlled scheduler in [`crate::sched`].
//!
//! Checked-mode semantics worth knowing:
//!
//! * Shim objects used **outside** an active execution (helper threads,
//!   test setup) silently pass through to the real primitive.
//! * `Condvar::wait_until` / `wait_for` never time out under the model:
//!   a waiter that is never notified deadlocks, which the checker
//!   reports. "No lost wakeup" is therefore checked for free.
//! * `RwLock` is modeled as an exclusive lock (readers serialize). This
//!   drops reader-reader overlap from the explored space — sound for
//!   data-race-free readers, which is what the hot path has — and keeps
//!   the checker small.

#[cfg(not(any(dmv_check, dmv_race)))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// Shimmed atomics; in normal builds these are exactly `std`'s.
#[cfg(not(any(dmv_check, dmv_race)))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// In normal builds [`crate::race::label`] is a no-op on the raw types.
#[cfg(not(any(dmv_check, dmv_race)))]
mod labels {
    impl<T: ?Sized> crate::race::Labeled for parking_lot::Mutex<T> {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl<T: ?Sized> crate::race::Labeled for parking_lot::RwLock<T> {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl crate::race::Labeled for parking_lot::Condvar {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl crate::race::Labeled for std::sync::atomic::AtomicBool {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl crate::race::Labeled for std::sync::atomic::AtomicU64 {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl crate::race::Labeled for std::sync::atomic::AtomicUsize {
        fn set_race_label(&self, _name: &'static str) {}
    }
}

#[cfg(dmv_check)]
pub use checked::{
    atomic, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};

/// Model-checked builds ignore race labels too.
#[cfg(dmv_check)]
mod labels {
    use super::checked;

    impl<T> crate::race::Labeled for checked::Mutex<T> {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl<T> crate::race::Labeled for checked::RwLock<T> {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl crate::race::Labeled for checked::Condvar {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl crate::race::Labeled for checked::atomic::AtomicBool {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl crate::race::Labeled for checked::atomic::AtomicU64 {
        fn set_race_label(&self, _name: &'static str) {}
    }
    impl crate::race::Labeled for checked::atomic::AtomicUsize {
        fn set_race_label(&self, _name: &'static str) {}
    }
}

#[cfg(dmv_race)]
pub use raced::{
    atomic, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};

#[cfg(dmv_check)]
mod checked {
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;
    use std::time::Duration;

    // wall-clock-ok: this file mirrors the parking_lot API surface,
    // whose deadline-based waits take a std Instant; checked mode
    // ignores the deadline entirely (waits never time out).
    use std::time::Instant;

    use crate::sched::{self, Exec, Registration};

    type Ctl = Option<(Arc<Exec>, usize, usize)>;

    // ---------------------------------------------------------- mutex

    /// Checked mutex: logical ownership lives in the scheduler; the
    /// real `parking_lot` lock underneath only stores the data and is
    /// never contended (one modeled thread runs at a time).
    pub struct Mutex<T> {
        reg: Registration,
        inner: parking_lot::Mutex<T>,
    }

    pub struct MutexGuard<'a, T> {
        ctl: Ctl,
        mx: &'a parking_lot::Mutex<T>,
        inner: Option<parking_lot::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Mutex { reg: Registration::new(), inner: parking_lot::Mutex::new(value) }
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            match sched::current() {
                None => MutexGuard { ctl: None, mx: &self.inner, inner: Some(self.inner.lock()) },
                Some((e, me)) => {
                    let id = self.reg.id_in(&e, || e.register_lock());
                    e.lock_acquire(me, id);
                    MutexGuard {
                        ctl: Some((e, me, id)),
                        mx: &self.inner,
                        inner: Some(self.inner.lock()),
                    }
                }
            }
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match sched::current() {
                None => self.inner.try_lock().map(|g| MutexGuard {
                    ctl: None,
                    mx: &self.inner,
                    inner: Some(g),
                }),
                Some((e, me)) => {
                    let id = self.reg.id_in(&e, || e.register_lock());
                    if e.try_lock_acquire(me, id) {
                        Some(MutexGuard {
                            ctl: Some((e, me, id)),
                            mx: &self.inner,
                            inner: Some(self.inner.lock()),
                        })
                    } else {
                        None
                    }
                }
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // Peek at the storage directly (not a schedule point).
            match self.inner.try_lock() {
                Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
                None => f.write_str("Mutex { <locked> }"),
            }
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard present")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard present")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock before the logical one so whichever
            // thread is scheduled at the release point can take it.
            self.inner = None;
            if let Some((e, me, id)) = self.ctl.take() {
                e.lock_release(me, id, true);
            }
        }
    }

    // -------------------------------------------------------- condvar

    #[derive(Debug, Clone, Copy)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    #[derive(Default)]
    pub struct Condvar {
        reg: Registration,
        inner: parking_lot::Condvar,
    }

    impl Condvar {
        pub fn new() -> Self {
            Condvar::default()
        }

        pub fn notify_one(&self) {
            match sched::current() {
                None => self.inner.notify_one(),
                Some((e, me)) => {
                    let cv = self.reg.id_in(&e, || e.register_condvar());
                    e.cv_notify(me, cv, false);
                }
            }
        }

        pub fn notify_all(&self) {
            match sched::current() {
                None => self.inner.notify_all(),
                Some((e, me)) => {
                    let cv = self.reg.id_in(&e, || e.register_condvar());
                    e.cv_notify(me, cv, true);
                }
            }
        }

        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            match guard.ctl.clone() {
                Some((e, me, lock_id)) => {
                    let cv = self.reg.id_in(&e, || e.register_condvar());
                    // Atomic release-and-park: hand the real lock back,
                    // then block in the scheduler until notified and
                    // logically reacquired.
                    guard.inner = None;
                    e.cv_wait(me, cv, lock_id);
                    guard.inner = Some(guard.mx.lock());
                }
                None => {
                    let g = guard.inner.as_mut().expect("guard present");
                    self.inner.wait(g);
                }
            }
        }

        /// Checked mode never times out: a waiter nobody notifies is a
        /// deadlock, and the checker reports it with the schedule.
        pub fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            deadline: Instant,
        ) -> WaitTimeoutResult {
            if guard.ctl.is_some() {
                self.wait(guard);
                WaitTimeoutResult { timed_out: false }
            } else {
                let g = guard.inner.as_mut().expect("guard present");
                WaitTimeoutResult { timed_out: self.inner.wait_until(g, deadline).timed_out() }
            }
        }

        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            if guard.ctl.is_some() {
                self.wait(guard);
                WaitTimeoutResult { timed_out: false }
            } else {
                let g = guard.inner.as_mut().expect("guard present");
                WaitTimeoutResult { timed_out: self.inner.wait_for(g, timeout).timed_out() }
            }
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Condvar")
        }
    }

    // --------------------------------------------------------- rwlock

    /// Checked rwlock, modeled as an exclusive lock (see module docs).
    pub struct RwLock<T> {
        reg: Registration,
        inner: parking_lot::RwLock<T>,
    }

    pub struct RwLockReadGuard<'a, T> {
        ctl: Ctl,
        inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
    }

    pub struct RwLockWriteGuard<'a, T> {
        ctl: Ctl,
        inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    }

    impl<T> RwLock<T> {
        pub const fn new(value: T) -> Self {
            RwLock { reg: Registration::new(), inner: parking_lot::RwLock::new(value) }
        }

        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            match sched::current() {
                None => RwLockReadGuard { ctl: None, inner: Some(self.inner.read()) },
                Some((e, me)) => {
                    let id = self.reg.id_in(&e, || e.register_lock());
                    e.lock_acquire(me, id);
                    RwLockReadGuard { ctl: Some((e, me, id)), inner: Some(self.inner.read()) }
                }
            }
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            match sched::current() {
                None => RwLockWriteGuard { ctl: None, inner: Some(self.inner.write()) },
                Some((e, me)) => {
                    let id = self.reg.id_in(&e, || e.register_lock());
                    e.lock_acquire(me, id);
                    RwLockWriteGuard { ctl: Some((e, me, id)), inner: Some(self.inner.write()) }
                }
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("RwLock { .. }")
        }
    }

    impl<T> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard present")
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None;
            if let Some((e, me, id)) = self.ctl.take() {
                e.lock_release(me, id, true);
            }
        }
    }

    impl<T> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard present")
        }
    }

    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard present")
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None;
            if let Some((e, me, id)) = self.ctl.take() {
                e.lock_release(me, id, true);
            }
        }
    }

    // -------------------------------------------------------- atomics

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use std::sync::atomic as std_atomic;
        use std::sync::Arc;

        use crate::sched::{self, Exec, Registration};

        /// Shared checked-op plumbing over a `u64` oracle value.
        macro_rules! checked_atomic {
            ($name:ident, $std:ident, $prim:ty) => {
                pub struct $name {
                    real: std_atomic::$std,
                    reg: Registration,
                }

                impl $name {
                    pub const fn new(v: $prim) -> Self {
                        $name { real: std_atomic::$std::new(v), reg: Registration::new() }
                    }

                    fn ctl(&self) -> Option<(Arc<Exec>, usize, usize)> {
                        let (e, me) = sched::current()?;
                        let id = self.reg.id_in(&e, || {
                            e.register_atomic(to64(self.real.load(Ordering::SeqCst)))
                        });
                        Some((e, me, id))
                    }

                    pub fn load(&self, ord: Ordering) -> $prim {
                        match self.ctl() {
                            None => self.real.load(ord),
                            Some((e, me, id)) => from64(e.atomic_load(me, id, ord)),
                        }
                    }

                    pub fn store(&self, v: $prim, ord: Ordering) {
                        match self.ctl() {
                            None => self.real.store(v, ord),
                            Some((e, me, id)) => {
                                e.atomic_store(me, id, to64(v), ord);
                                // Keep the raw cell equal to the oracle's
                                // latest value so post-model reads agree.
                                self.real.store(v, Ordering::SeqCst);
                            }
                        }
                    }

                    pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, move |_| v, |r| r.swap(v, ord))
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        match self.ctl() {
                            None => self.real.compare_exchange(current, new, success, failure),
                            Some((e, me, id)) => {
                                let r = e.atomic_cas(me, id, to64(current), to64(new), success);
                                if r.is_ok() {
                                    self.real.store(new, Ordering::SeqCst);
                                }
                                r.map(from64).map_err(from64)
                            }
                        }
                    }

                    pub fn compare_exchange_weak(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    pub fn get_mut(&mut self) -> &mut $prim {
                        self.real.get_mut()
                    }

                    pub fn into_inner(self) -> $prim {
                        self.real.into_inner()
                    }

                    fn rmw(
                        &self,
                        ord: Ordering,
                        f: impl Fn($prim) -> $prim,
                        passthrough: impl FnOnce(&std_atomic::$std) -> $prim,
                    ) -> $prim {
                        match self.ctl() {
                            None => passthrough(&self.real),
                            Some((e, me, id)) => {
                                let prev =
                                    from64(e.atomic_rmw(me, id, ord, |v| to64(f(from64(v)))));
                                self.real.store(f(prev), Ordering::SeqCst);
                                prev
                            }
                        }
                    }
                }

                impl Default for $name {
                    fn default() -> Self {
                        $name::new(Default::default())
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        write!(f, "{:?}", self.real)
                    }
                }

                impl From<$prim> for $name {
                    fn from(v: $prim) -> Self {
                        $name::new(v)
                    }
                }
            };
        }

        macro_rules! int_rmw_ops {
            ($name:ident, $std:ident, $prim:ty) => {
                impl $name {
                    pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, move |x| x.wrapping_add(v), |r| r.fetch_add(v, ord))
                    }

                    pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, move |x| x.wrapping_sub(v), |r| r.fetch_sub(v, ord))
                    }

                    pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, move |x| x.max(v), |r| r.fetch_max(v, ord))
                    }

                    pub fn fetch_min(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, move |x| x.min(v), |r| r.fetch_min(v, ord))
                    }

                    pub fn fetch_or(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, move |x| x | v, |r| r.fetch_or(v, ord))
                    }

                    pub fn fetch_and(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, move |x| x & v, |r| r.fetch_and(v, ord))
                    }
                }
            };
        }

        mod u64_impl {
            use super::*;

            fn to64(v: u64) -> u64 {
                v
            }

            fn from64(v: u64) -> u64 {
                v
            }

            checked_atomic!(AtomicU64, AtomicU64, u64);
            int_rmw_ops!(AtomicU64, AtomicU64, u64);
        }

        mod usize_impl {
            use super::*;

            fn to64(v: usize) -> u64 {
                v as u64
            }

            fn from64(v: u64) -> usize {
                v as usize
            }

            checked_atomic!(AtomicUsize, AtomicUsize, usize);
            int_rmw_ops!(AtomicUsize, AtomicUsize, usize);
        }

        mod bool_impl {
            use super::*;

            fn to64(v: bool) -> u64 {
                u64::from(v)
            }

            fn from64(v: u64) -> bool {
                v != 0
            }

            checked_atomic!(AtomicBool, AtomicBool, bool);

            impl AtomicBool {
                pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
                    self.rmw(ord, move |x| x | v, |r| r.fetch_or(v, ord))
                }

                pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
                    self.rmw(ord, move |x| x & v, |r| r.fetch_and(v, ord))
                }
            }
        }

        pub use bool_impl::AtomicBool;
        pub use u64_impl::AtomicU64;
        pub use usize_impl::AtomicUsize;
    }
}

#[cfg(dmv_race)]
mod raced {
    //! Instrumented primitives for `--cfg dmv_race`: real parking_lot
    //! locks and real std atomics, with every operation reported to
    //! [`crate::race::global`]. `#[track_caller]` on each entry point
    //! makes reports name hot-path source lines, not shim lines.

    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::OnceLock;
    use std::time::Duration;

    // wall-clock-ok: this file mirrors the parking_lot API surface,
    // whose deadline-based waits take a std Instant.
    use std::time::Instant;

    use crate::race;
    use crate::report::Site;

    pub use parking_lot::WaitTimeoutResult;

    /// Lazily allocated detector object id.
    #[derive(Default)]
    struct Reg(OnceLock<usize>);

    impl Reg {
        const fn new() -> Self {
            Reg(OnceLock::new())
        }

        fn id(&self) -> usize {
            *self.0.get_or_init(|| race::global().alloc_object())
        }
    }

    // ---------------------------------------------------------- mutex

    pub struct Mutex<T: ?Sized> {
        reg: Reg,
        inner: parking_lot::Mutex<T>,
    }

    pub struct MutexGuard<'a, T: ?Sized> {
        id: usize,
        site: Site,
        inner: parking_lot::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Mutex { reg: Reg::new(), inner: parking_lot::Mutex::new(value) }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        #[track_caller]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let site = Site::caller();
            let id = self.reg.id();
            let g = self.inner.lock();
            race::global().lock_acquire(race::current_tid(), id, site);
            MutexGuard { id, site, inner: g }
        }

        #[track_caller]
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            let site = Site::caller();
            let id = self.reg.id();
            let g = self.inner.try_lock()?;
            race::global().lock_acquire(race::current_tid(), id, site);
            Some(MutexGuard { id, site, inner: g })
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }

    impl<T: ?Sized> crate::race::Labeled for Mutex<T> {
        fn set_race_label(&self, name: &'static str) {
            race::global().label_lock(self.reg.id(), name);
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Bookkeeping first: the logical release must be recorded
            // before the real unlock (fields drop after this body) so
            // the next acquirer joins a clock that includes us.
            race::global().lock_release(race::current_tid(), self.id, self.site);
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&**self, f)
        }
    }

    impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Display::fmt(&**self, f)
        }
    }

    // --------------------------------------------------------- rwlock

    pub struct RwLock<T: ?Sized> {
        reg: Reg,
        inner: parking_lot::RwLock<T>,
    }

    pub struct RwLockReadGuard<'a, T: ?Sized> {
        id: usize,
        site: Site,
        inner: parking_lot::RwLockReadGuard<'a, T>,
    }

    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        id: usize,
        site: Site,
        inner: parking_lot::RwLockWriteGuard<'a, T>,
    }

    impl<T> RwLock<T> {
        pub const fn new(value: T) -> Self {
            RwLock { reg: Reg::new(), inner: parking_lot::RwLock::new(value) }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        #[track_caller]
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let site = Site::caller();
            let id = self.reg.id();
            let g = self.inner.read();
            race::global().lock_acquire(race::current_tid(), id, site);
            RwLockReadGuard { id, site, inner: g }
        }

        #[track_caller]
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let site = Site::caller();
            let id = self.reg.id();
            let g = self.inner.write();
            race::global().lock_acquire(race::current_tid(), id, site);
            RwLockWriteGuard { id, site, inner: g }
        }

        #[track_caller]
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            let site = Site::caller();
            let id = self.reg.id();
            let g = self.inner.try_read()?;
            race::global().lock_acquire(race::current_tid(), id, site);
            Some(RwLockReadGuard { id, site, inner: g })
        }

        #[track_caller]
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            let site = Site::caller();
            let id = self.reg.id();
            let g = self.inner.try_write()?;
            race::global().lock_acquire(race::current_tid(), id, site);
            Some(RwLockWriteGuard { id, site, inner: g })
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("RwLock { .. }")
        }
    }

    impl<T: ?Sized> crate::race::Labeled for RwLock<T> {
        fn set_race_label(&self, name: &'static str) {
            race::global().label_lock(self.reg.id(), name);
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            race::global().lock_release(race::current_tid(), self.id, self.site);
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            race::global().lock_release(race::current_tid(), self.id, self.site);
        }
    }

    // -------------------------------------------------------- condvar

    pub struct Condvar {
        reg: Reg,
        inner: parking_lot::Condvar,
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar { reg: Reg::new(), inner: parking_lot::Condvar::new() }
        }

        #[track_caller]
        pub fn notify_one(&self) {
            race::global().cv_notify(race::current_tid(), self.reg.id(), Site::caller());
            self.inner.notify_one();
        }

        #[track_caller]
        pub fn notify_all(&self) {
            race::global().cv_notify(race::current_tid(), self.reg.id(), Site::caller());
            self.inner.notify_all();
        }

        #[track_caller]
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let site = Site::caller();
            let (det, tid, cv) = (race::global(), race::current_tid(), self.reg.id());
            let begin = det.cv_wait_begin(tid, cv, site);
            det.lock_release(tid, guard.id, site);
            self.inner.wait(&mut guard.inner);
            det.lock_acquire(tid, guard.id, site);
            det.cv_wait_end(tid, cv, begin, false, site);
        }

        #[track_caller]
        pub fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            deadline: Instant,
        ) -> WaitTimeoutResult {
            let site = Site::caller();
            let (det, tid, cv) = (race::global(), race::current_tid(), self.reg.id());
            let begin = det.cv_wait_begin(tid, cv, site);
            det.lock_release(tid, guard.id, site);
            let res = self.inner.wait_until(&mut guard.inner, deadline);
            det.lock_acquire(tid, guard.id, site);
            det.cv_wait_end(tid, cv, begin, res.timed_out(), site);
            res
        }

        #[track_caller]
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            let site = Site::caller();
            let (det, tid, cv) = (race::global(), race::current_tid(), self.reg.id());
            let begin = det.cv_wait_begin(tid, cv, site);
            det.lock_release(tid, guard.id, site);
            let res = self.inner.wait_for(&mut guard.inner, timeout);
            det.lock_acquire(tid, guard.id, site);
            det.cv_wait_end(tid, cv, begin, res.timed_out(), site);
            res
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Condvar")
        }
    }

    impl crate::race::Labeled for Condvar {
        fn set_race_label(&self, name: &'static str) {
            race::global().label_cv(self.reg.id(), name);
        }
    }

    // -------------------------------------------------------- atomics

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use std::sync::atomic as std_atomic;

        use super::Reg;
        use crate::race;
        use crate::report::Site;

        macro_rules! raced_atomic {
            ($name:ident, $std:ident, $prim:ty) => {
                pub struct $name {
                    real: std_atomic::$std,
                    reg: Reg,
                }

                impl $name {
                    pub const fn new(v: $prim) -> Self {
                        $name { real: std_atomic::$std::new(v), reg: Reg::new() }
                    }

                    #[track_caller]
                    pub fn load(&self, ord: Ordering) -> $prim {
                        race::global().atomic_load_op(
                            race::current_tid(),
                            self.reg.id(),
                            ord,
                            Site::caller(),
                            || self.real.load(ord),
                        )
                    }

                    #[track_caller]
                    pub fn store(&self, v: $prim, ord: Ordering) {
                        race::global().atomic_store_op(
                            race::current_tid(),
                            self.reg.id(),
                            ord,
                            Site::caller(),
                            || self.real.store(v, ord),
                        )
                    }

                    #[track_caller]
                    pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, |r| r.swap(v, ord))
                    }

                    #[track_caller]
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        race::global().atomic_cas_op(
                            race::current_tid(),
                            self.reg.id(),
                            success,
                            failure,
                            Site::caller(),
                            || self.real.compare_exchange(current, new, success, failure),
                        )
                    }

                    #[track_caller]
                    pub fn compare_exchange_weak(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    pub fn get_mut(&mut self) -> &mut $prim {
                        self.real.get_mut()
                    }

                    pub fn into_inner(self) -> $prim {
                        self.real.into_inner()
                    }

                    #[track_caller]
                    fn rmw(
                        &self,
                        ord: Ordering,
                        f: impl FnOnce(&std_atomic::$std) -> $prim,
                    ) -> $prim {
                        race::global().atomic_rmw_op(
                            race::current_tid(),
                            self.reg.id(),
                            ord,
                            Site::caller(),
                            || f(&self.real),
                        )
                    }
                }

                impl Default for $name {
                    fn default() -> Self {
                        $name::new(Default::default())
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        write!(f, "{:?}", self.real)
                    }
                }

                impl From<$prim> for $name {
                    fn from(v: $prim) -> Self {
                        $name::new(v)
                    }
                }

                impl race::Labeled for $name {
                    fn set_race_label(&self, name: &'static str) {
                        race::global().label_loc(self.reg.id(), name);
                    }
                }
            };
        }

        macro_rules! raced_int_rmw_ops {
            ($name:ident, $prim:ty) => {
                impl $name {
                    #[track_caller]
                    pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, |r| r.fetch_add(v, ord))
                    }

                    #[track_caller]
                    pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, |r| r.fetch_sub(v, ord))
                    }

                    #[track_caller]
                    pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, |r| r.fetch_max(v, ord))
                    }

                    #[track_caller]
                    pub fn fetch_min(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, |r| r.fetch_min(v, ord))
                    }

                    #[track_caller]
                    pub fn fetch_or(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, |r| r.fetch_or(v, ord))
                    }

                    #[track_caller]
                    pub fn fetch_and(&self, v: $prim, ord: Ordering) -> $prim {
                        self.rmw(ord, |r| r.fetch_and(v, ord))
                    }
                }
            };
        }

        raced_atomic!(AtomicU64, AtomicU64, u64);
        raced_int_rmw_ops!(AtomicU64, u64);
        raced_atomic!(AtomicUsize, AtomicUsize, usize);
        raced_int_rmw_ops!(AtomicUsize, usize);
        raced_atomic!(AtomicBool, AtomicBool, bool);

        impl AtomicBool {
            #[track_caller]
            pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
                self.rmw(ord, |r| r.fetch_or(v, ord))
            }

            #[track_caller]
            pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
                self.rmw(ord, |r| r.fetch_and(v, ord))
            }
        }
    }
}
