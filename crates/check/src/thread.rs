//! Shimmed thread spawn/join.
//!
//! Normal builds re-export `std::thread`'s spawn machinery. Under
//! `--cfg dmv_check`, `spawn` inside an active model execution registers
//! the child with the controlled scheduler: the child is a real OS
//! thread, but it parks until the explorer schedules it, and `join` is a
//! schedule point with a proper happens-before edge.

#[cfg(not(dmv_check))]
pub use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(dmv_check)]
pub use checked::{spawn, yield_now, JoinHandle};

#[cfg(dmv_check)]
mod checked {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    use parking_lot::Mutex as PlMutex;

    use crate::sched::{self, Exec};

    enum Kind<T> {
        /// Spawned outside any model execution: plain std thread.
        Os(std::thread::JoinHandle<T>),
        /// A modeled thread; its return value parks in `slot`.
        Model { exec: Arc<Exec>, tid: usize, slot: Arc<PlMutex<Option<T>>> },
    }

    pub struct JoinHandle<T> {
        kind: Kind<T>,
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some((exec, me)) = sched::current() else {
            return JoinHandle { kind: Kind::Os(std::thread::spawn(f)) };
        };
        let tid = exec.spawn_thread(me);
        let slot: Arc<PlMutex<Option<T>>> = Arc::new(PlMutex::new(None));
        let (e2, s2) = (Arc::clone(&exec), Arc::clone(&slot));
        let os = std::thread::Builder::new()
            .name(format!("dmv-check-{tid}"))
            .spawn(move || {
                sched::enter_model(&e2, tid);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    e2.thread_started(tid);
                    f()
                }));
                sched::leave_model();
                let panic_msg = match result {
                    Ok(v) => {
                        *s2.lock() = Some(v);
                        None
                    }
                    Err(p) if p.is::<sched::Abort>() => None,
                    Err(p) => Some(crate::panic_message(p.as_ref())),
                };
                e2.thread_finished(tid, panic_msg);
            })
            .expect("spawn modeled os thread");
        exec.push_os_handle(os);
        JoinHandle { kind: Kind::Model { exec, tid, slot } }
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.kind {
                Kind::Os(h) => h.join(),
                Kind::Model { exec, tid, slot } => {
                    let me = match sched::current() {
                        Some((_, me)) => me,
                        // Joining a modeled thread from outside the
                        // model is not supported; the explorer joins
                        // the OS handles itself.
                        None => return Err(Box::new("join outside model execution")),
                    };
                    exec.join_wait(me, tid);
                    match slot.lock().take() {
                        Some(v) => Ok(v),
                        None => Err(Box::new("modeled thread did not produce a value")),
                    }
                }
            }
        }
    }

    /// An explicit schedule point inside the model; a real yield outside.
    pub fn yield_now() {
        match sched::current() {
            None => std::thread::yield_now(),
            Some((e, me)) => e.yield_point(me),
        }
    }
}
