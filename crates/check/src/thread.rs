//! Shimmed thread spawn/join.
//!
//! Normal builds re-export `std::thread`'s spawn machinery. Under
//! `--cfg dmv_check`, `spawn` inside an active model execution registers
//! the child with the controlled scheduler: the child is a real OS
//! thread, but it parks until the explorer schedules it, and `join` is a
//! schedule point with a proper happens-before edge. Under
//! `--cfg dmv_race`, spawn/join are real but recorded as fork/join
//! edges in the happens-before detector, so everything a parent did
//! before `spawn` is ordered before the child, and everything a child
//! did is ordered before its joiner.
//!
//! All modes expose [`Builder`] (named spawns) and
//! `JoinHandle::thread()`, which the replica/cluster/transport driver
//! threads use.

#[cfg(not(any(dmv_check, dmv_race)))]
pub use std::thread::{spawn, yield_now, Builder, JoinHandle};

#[cfg(dmv_check)]
pub use checked::{spawn, yield_now, Builder, JoinHandle};

#[cfg(dmv_race)]
pub use raced::{spawn, yield_now, Builder, JoinHandle};

#[cfg(dmv_check)]
mod checked {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    use parking_lot::Mutex as PlMutex;

    use crate::sched::{self, Exec};

    enum Kind<T> {
        /// Spawned outside any model execution: plain std thread.
        Os(std::thread::JoinHandle<T>),
        /// A modeled thread; its return value parks in `slot`.
        Model {
            exec: Arc<Exec>,
            tid: usize,
            slot: Arc<PlMutex<Option<T>>>,
            thread: std::thread::Thread,
        },
    }

    pub struct JoinHandle<T> {
        kind: Kind<T>,
    }

    /// Named-spawn builder mirroring `std::thread::Builder`. Inside a
    /// model execution the name is ignored (modeled threads are named
    /// by the explorer); outside, it reaches the OS thread.
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Self {
            Builder::default()
        }

        #[must_use]
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// # Errors
        ///
        /// Propagates the OS spawn error (outside a model execution).
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if sched::current().is_some() {
                return Ok(spawn(f));
            }
            let mut b = std::thread::Builder::new();
            if let Some(name) = self.name {
                b = b.name(name);
            }
            Ok(JoinHandle { kind: Kind::Os(b.spawn(f)?) })
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some((exec, me)) = sched::current() else {
            return JoinHandle { kind: Kind::Os(std::thread::spawn(f)) };
        };
        let tid = exec.spawn_thread(me);
        let slot: Arc<PlMutex<Option<T>>> = Arc::new(PlMutex::new(None));
        let (e2, s2) = (Arc::clone(&exec), Arc::clone(&slot));
        let os = std::thread::Builder::new()
            .name(format!("dmv-check-{tid}"))
            .spawn(move || {
                sched::enter_model(&e2, tid);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    e2.thread_started(tid);
                    f()
                }));
                sched::leave_model();
                let panic_msg = match result {
                    Ok(v) => {
                        *s2.lock() = Some(v);
                        None
                    }
                    Err(p) if p.is::<sched::Abort>() => None,
                    Err(p) => Some(crate::panic_message(p.as_ref())),
                };
                e2.thread_finished(tid, panic_msg);
            })
            .expect("spawn modeled os thread");
        let thread = os.thread().clone();
        exec.push_os_handle(os);
        JoinHandle { kind: Kind::Model { exec, tid, slot, thread } }
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.kind {
                Kind::Os(h) => h.join(),
                Kind::Model { exec, tid, slot, .. } => {
                    let me = match sched::current() {
                        Some((_, me)) => me,
                        // Joining a modeled thread from outside the
                        // model is not supported; the explorer joins
                        // the OS handles itself.
                        None => return Err(Box::new("join outside model execution")),
                    };
                    exec.join_wait(me, tid);
                    match slot.lock().take() {
                        Some(v) => Ok(v),
                        None => Err(Box::new("modeled thread did not produce a value")),
                    }
                }
            }
        }

        /// The underlying OS thread handle (id, name).
        pub fn thread(&self) -> &std::thread::Thread {
            match &self.kind {
                Kind::Os(h) => h.thread(),
                Kind::Model { thread, .. } => thread,
            }
        }
    }

    /// An explicit schedule point inside the model; a real yield outside.
    pub fn yield_now() {
        match sched::current() {
            None => std::thread::yield_now(),
            Some((e, me)) => e.yield_point(me),
        }
    }
}

#[cfg(dmv_race)]
mod raced {
    use crate::race;

    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        tid: usize,
    }

    /// Named-spawn builder mirroring `std::thread::Builder`; the name
    /// also becomes the thread's name in race reports.
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Self {
            Builder::default()
        }

        #[must_use]
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// # Errors
        ///
        /// Propagates the OS spawn error.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            // Register before the OS thread exists: the fork edge must
            // capture the parent's clock as of the spawn point.
            let parent = race::current_tid();
            let tid = race::global().register_thread(Some(parent), self.name.clone());
            let mut b = std::thread::Builder::new();
            if let Some(name) = self.name {
                b = b.name(name);
            }
            let inner = b.spawn(move || {
                race::set_current_tid(tid);
                f()
            })?;
            Ok(JoinHandle { inner, tid })
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("spawn race-instrumented thread")
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            let r = self.inner.join();
            // Join edge after the real join: the child's final clock is
            // complete, and the edge exists even if the child panicked
            // (std join still synchronizes in that case).
            race::global().join_edge(race::current_tid(), self.tid);
            r
        }

        /// The underlying OS thread handle (id, name).
        pub fn thread(&self) -> &std::thread::Thread {
            self.inner.thread()
        }

        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    pub fn yield_now() {
        std::thread::yield_now();
    }
}
