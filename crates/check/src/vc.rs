//! Vector clocks and epochs for the happens-before race detector.
//!
//! The representation follows FastTrack (Flanagan & Freund, PLDI'09):
//! a full [`VectorClock`] per thread and per synchronization object,
//! and a compressed [`Epoch`] — one `(thread, clock)` pair — for the
//! last write to each atomic location, which makes the common
//! same-epoch / ordered-write check O(1) instead of O(threads).
//!
//! Clocks are plain data with no interior mutability; all sharing and
//! locking live in [`crate::race`].

use std::fmt;

/// A map from thread id to the highest clock value of that thread that
/// the owner happens-after. Thread ids are small dense indices handed
/// out by the detector, so a `Vec` (implicitly zero-extended) beats a
/// hash map.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u32>,
}

impl VectorClock {
    /// The empty clock (happens-after nothing).
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The clock value known for `tid` (0 if never seen).
    pub fn get(&self, tid: usize) -> u32 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Sets `tid`'s component to exactly `value`.
    pub fn set(&mut self, tid: usize, value: u32) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] = value;
    }

    /// Increments `tid`'s own component (a new epoch for that thread).
    pub fn bump(&mut self, tid: usize) {
        let v = self.get(tid);
        self.set(tid, v + 1);
    }

    /// Pointwise maximum: after `self.join(other)`, the owner
    /// happens-after everything either clock happened-after.
    pub fn join(&mut self, other: &VectorClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Pointwise ≤: everything `self` happens-after, `other` does too.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.slots.iter().enumerate().all(|(tid, &v)| v <= other.get(tid))
    }

    /// The epoch of `tid` as recorded in this clock.
    pub fn epoch(&self, tid: usize) -> Epoch {
        Epoch { tid, clock: self.get(tid) }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.slots.iter()).finish()
    }
}

/// One `(thread, clock)` pair: "the state of `tid` at local time
/// `clock`". The last write to a location is a single epoch; a reader
/// with clock `C` is ordered after it iff `clock ≤ C[tid]`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// The thread that produced this epoch.
    pub tid: usize,
    /// That thread's local clock at the time.
    pub clock: u32,
}

impl Epoch {
    /// Whether the event at this epoch happens-before a thread whose
    /// current clock is `vc`.
    pub fn visible_to(&self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 4);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (3, 4, 1));
    }

    #[test]
    fn leq_orders_clocks() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = a.clone();
        assert!(a.leq(&b) && b.leq(&a));
        b.set(1, 2);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn missing_slots_read_as_zero() {
        let a = VectorClock::new();
        assert_eq!(a.get(17), 0);
        let mut b = VectorClock::new();
        b.set(17, 1);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn epoch_visibility_tracks_one_component() {
        let mut w = VectorClock::new();
        w.set(1, 5);
        let e = w.epoch(1);
        let mut r = VectorClock::new();
        r.set(1, 4);
        assert!(!e.visible_to(&r));
        r.set(1, 5);
        assert!(e.visible_to(&r));
        // Other components are irrelevant to an epoch.
        let mut huge = VectorClock::new();
        huge.set(0, 100);
        assert!(!e.visible_to(&huge));
    }

    #[test]
    fn bump_creates_fresh_epoch() {
        let mut c = VectorClock::new();
        c.bump(3);
        c.bump(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.epoch(3), Epoch { tid: 3, clock: 2 });
    }
}
