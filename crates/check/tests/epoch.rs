//! Model tests for the epoch-based reclamation manager (`dmv-epoch`).
//!
//! Run with `RUSTFLAGS="--cfg dmv_check" cargo test -p dmv-check`.
//!
//! The GC-safety argument is a lattice claim: the published watermark is
//! a lower bound of every pinned reader tag and only ever advances.
//! These tests explore every interleaving (within the preemption bound)
//! of pin / advance / sweep against the *real* `EpochManager`, plus a
//! deliberate-bug twin proving the monotone publish is load-bearing.

#![cfg(dmv_check)]

use std::sync::Arc;

use dmv_check::sync::Mutex;
use dmv_check::{model_result, thread, ModelOptions};
use dmv_common::version::VersionVector;
use dmv_epoch::EpochManager;

fn vv(entries: &[u64]) -> VersionVector {
    VersionVector::from_entries(entries.to_vec())
}

/// The core GC-safety invariant: while a reader holds a pin at tag `T`,
/// no concurrent sweep publishes a watermark above `T` — even with a
/// commit racing `latest` forward between the pin and the sweep.
#[test]
fn watermark_never_overtakes_a_pinned_tag() {
    let report = model_result(ModelOptions::default(), || {
        let m = EpochManager::new(1);
        m.advance_latest(&vv(&[1]));
        let tag = m.latest();
        let guard = m.pin(&tag);
        let sweeper = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                // A commit lands and a GC sweep runs, both racing the
                // pinned reader.
                m.advance_latest(&vv(&[2]));
                m.watermark()
            })
        };
        let wm = m.watermark();
        assert!(tag.dominates(&wm), "watermark {wm} overtook pinned tag {tag}");
        let wm2 = sweeper.join().expect("join sweeper");
        assert!(tag.dominates(&wm2), "sweeper watermark {wm2} overtook pinned tag {tag}");
        drop(guard);
    })
    .expect("a pinned tag always dominates the watermark");
    assert!(report.exhausted, "bounded space should be fully explored");
}

/// Pin/unpin racing a sweep: whatever interleaving the checker picks,
/// the published watermark never exceeds `latest`, and consecutive
/// publishes never regress (the monotone `low` merge absorbs a sweep
/// that computed its meet before a newer pin landed).
#[test]
fn published_watermark_is_monotone_across_racing_sweeps() {
    let report = model_result(ModelOptions::default(), || {
        let m = EpochManager::new(1);
        m.advance_latest(&vv(&[3]));
        let pinner = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                // A reader pins an old tag mid-stream and sweeps; its
                // meet is [1] but the publish must not drag `low` back.
                let g = m.pin(&vv(&[1]));
                let wm = m.watermark();
                drop(g);
                wm
            })
        };
        let w1 = m.watermark();
        let w2 = m.watermark();
        assert!(w2.dominates(&w1), "published watermark regressed: {w1} then {w2}");
        let w3 = pinner.join().expect("join pinner");
        assert!(m.latest().dominates(&w3), "watermark {w3} exceeded latest");
    })
    .expect("publish is monotone under racing pins");
    assert!(report.exhausted);
}

/// Companion: WITHOUT the monotone merge — a sweeper that *overwrites*
/// the published value with its own meet — two racing sweeps regress
/// the watermark: sweep A (no pin visible) publishes 2, then sweep B
/// (computed earlier, under a pin at 1) publishes 1. A consumer acting
/// on the first publish has already reclaimed state the second one
/// re-promises. The checker proves the `low.merge` in
/// `EpochManager::watermark` is load-bearing by finding the inversion.
#[test]
fn overwriting_publish_regresses_and_is_caught() {
    let failure = model_result(ModelOptions::default(), || {
        let latest = Arc::new(Mutex::new(2u64));
        let pin = Arc::new(Mutex::new(Some(1u64)));
        let low = Arc::new(Mutex::new(0u64));
        let log = Arc::new(Mutex::new(Vec::<u64>::new()));
        let sweep = |latest: &Arc<Mutex<u64>>,
                     pin: &Arc<Mutex<Option<u64>>>,
                     low: &Arc<Mutex<u64>>,
                     log: &Arc<Mutex<Vec<u64>>>| {
            let mut wm = *latest.lock();
            if let Some(p) = *pin.lock() {
                wm = wm.min(p);
            }
            // BUG (deliberate): overwrite instead of merging into the
            // monotone published value.
            *low.lock() = wm;
            log.lock().push(wm);
        };
        let sweeper = {
            let (latest, pin, low, log) =
                (Arc::clone(&latest), Arc::clone(&pin), Arc::clone(&low), Arc::clone(&log));
            thread::spawn(move || sweep(&latest, &pin, &low, &log))
        };
        // The pinned reader finishes; a second sweep runs pin-free.
        *pin.lock() = None;
        sweep(&latest, &pin, &low, &log);
        sweeper.join().expect("join sweeper");
        let log = log.lock();
        assert!(log.windows(2).all(|w| w[1] >= w[0]), "published watermark regressed: {:?}", &*log);
    })
    .expect_err("the regression must be caught");
    assert!(failure.message.contains("regressed"), "got: {}", failure.message);
}

/// Guard RAII under races: a pin dropped on another thread is really
/// gone — after both joins the watermark reaches `latest`, and while
/// either guard lived it never exceeded that guard's tag.
#[test]
fn unpin_releases_the_watermark_exactly_once() {
    let report = model_result(ModelOptions::default(), || {
        let m = EpochManager::new(1);
        m.advance_latest(&vv(&[5]));
        let reader = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let g = m.pin(&vv(&[2]));
                let wm = m.watermark();
                assert!(vv(&[2]).dominates(&wm), "watermark {wm} overtook live pin [2]");
                drop(g);
            })
        };
        reader.join().expect("join reader");
        assert_eq!(m.pinned_count(), 0, "guard leaked its pin");
        assert_eq!(m.watermark(), vv(&[5]), "released pin still caps the watermark");
    })
    .expect("guard drop releases the pin");
    assert!(report.exhausted);
}
