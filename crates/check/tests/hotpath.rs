//! Model tests for the real DMV hot-path primitives, now built on the
//! `dmv_check::sync` shims.
//!
//! Run with `RUSTFLAGS="--cfg dmv_check" cargo test -p dmv-check`.
//!
//! Each test explores every interleaving (within the preemption bound)
//! of a small scenario against the *actual* production types —
//! `AtomicVersionVector`, `PendingApplier`, `Throttle` — not copies.

#![cfg(dmv_check)]

use std::sync::Arc;
use std::time::Duration;

use dmv_check::sync::atomic::{AtomicU64, Ordering};
use dmv_check::sync::Mutex;
use dmv_check::{model_result, thread, ModelOptions};
use dmv_common::clock::{wall_deadline, SimClock, TimeScale};
use dmv_common::ids::{NodeId, TableId};
use dmv_common::throttle::Throttle;
use dmv_common::version::{AtomicVersionVector, VersionVector};
use dmv_core::{AckTracker, PendingApplier};
use dmv_pagestore::{PageStore, Residency};

fn vv(entries: &[u64]) -> VersionVector {
    VersionVector::from_entries(entries.to_vec())
}

/// `AtomicVersionVector::snapshot` must be linearizable. A writer merges
/// the totally-ordered chain `[1,1]`, `[2,2]`; every instantaneous state
/// satisfies `s0 >= s1 && s0 - s1 <= 1` (entry 0 advances first within
/// one merge). A *torn* snapshot such as `[0,1]` — entry 0 read before a
/// merge, entry 1 after — inverts that order and is a vector no commit
/// ever produced. Reverting the double-collect loop in `snapshot` to a
/// single collect makes this test fail.
#[test]
fn snapshot_is_linearizable_under_chain_merge() {
    let report = model_result(ModelOptions::default(), || {
        let av = Arc::new(AtomicVersionVector::new(2));
        let writer = {
            let av = Arc::clone(&av);
            thread::spawn(move || {
                av.merge(&vv(&[1, 1]));
                av.merge(&vv(&[2, 2]));
            })
        };
        let s = av.snapshot();
        let (s0, s1) = (s.entries()[0], s.entries()[1]);
        assert!(s0 >= s1 && s0 - s1 <= 1, "torn snapshot: {s}");
        writer.join().expect("join writer");
    })
    .expect("snapshot must be linearizable");
    assert!(report.exhausted, "bounded space should be fully explored");
}

/// Permanent record of the PR-1 bug: the naive single-collect snapshot
/// (reimplemented here over the same shimmed atomics) IS torn, and the
/// checker finds the interleaving. If the checker ever loses the power
/// to catch this class of bug, this test fails.
#[test]
fn single_collect_snapshot_is_caught_as_torn() {
    let failure = model_result(ModelOptions::default(), || {
        let av: Arc<[AtomicU64; 2]> = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let writer = {
            let av = Arc::clone(&av);
            thread::spawn(move || {
                // One chain merge [1,1], entry 0 first — exactly what
                // AtomicVersionVector::merge does.
                av[0].fetch_max(1, Ordering::SeqCst);
                av[1].fetch_max(1, Ordering::SeqCst);
            })
        };
        // BUG (deliberate): single collect, no agreement check.
        let s0 = av[0].load(Ordering::SeqCst);
        let s1 = av[1].load(Ordering::SeqCst);
        assert!(s0 >= s1, "torn snapshot: [{s0},{s1}]");
        writer.join().expect("join writer");
    })
    .expect_err("single-collect snapshot must be caught");
    assert!(failure.message.contains("torn snapshot"), "got: {}", failure.message);
}

/// The commit hand-off chain (replica.rs `execute_update_with`): holding
/// `commit_seq` across version-bump *and* broadcast-channel acquisition
/// guarantees write-sets enter the channel in version order (FIFO).
#[test]
fn commit_handoff_is_fifo_version_ordered() {
    let report = model_result(ModelOptions::default(), || {
        let seq = Arc::new(Mutex::new(()));
        let dbv = Arc::new(Mutex::new(VersionVector::new(1)));
        let bcast = Arc::new(Mutex::new(Vec::<VersionVector>::new()));
        let committer = |seq: Arc<Mutex<()>>,
                         dbv: Arc<Mutex<VersionVector>>,
                         bcast: Arc<Mutex<Vec<VersionVector>>>| {
            move || {
                // Same shape as replica.rs: seq -> dbversion (bump,
                // clone, drop) -> bcast, send, then release seq before
                // the channel lock.
                let seq_guard = seq.lock();
                let tag = {
                    let mut dbv = dbv.lock();
                    dbv.bump(TableId(0));
                    dbv.clone()
                };
                let bcast_guard = bcast.lock();
                drop(seq_guard);
                let mut log = bcast_guard;
                log.push(tag);
            }
        };
        let t1 = thread::spawn(committer(Arc::clone(&seq), Arc::clone(&dbv), Arc::clone(&bcast)));
        committer(Arc::clone(&seq), Arc::clone(&dbv), Arc::clone(&bcast))();
        t1.join().expect("join committer");
        let log = bcast.lock();
        assert_eq!(log.len(), 2);
        assert!(
            log[1].strictly_dominates(&log[0]),
            "broadcast order inverted: {} then {}",
            log[0],
            log[1]
        );
    })
    .expect("commit hand-off is FIFO");
    assert!(report.exhausted);
}

/// Companion: WITHOUT the hand-off (dropping `commit_seq` before taking
/// the broadcast lock) version order inverts, and the checker proves the
/// lock chain is load-bearing by finding the inversion.
#[test]
fn commit_without_handoff_inverts_order() {
    let failure = model_result(ModelOptions::default(), || {
        let seq = Arc::new(Mutex::new(()));
        let dbv = Arc::new(Mutex::new(VersionVector::new(1)));
        let bcast = Arc::new(Mutex::new(Vec::<VersionVector>::new()));
        let committer = |seq: Arc<Mutex<()>>,
                         dbv: Arc<Mutex<VersionVector>>,
                         bcast: Arc<Mutex<Vec<VersionVector>>>| {
            move || {
                let seq_guard = seq.lock();
                let tag = {
                    let mut dbv = dbv.lock();
                    dbv.bump(TableId(0));
                    dbv.clone()
                };
                // BUG (deliberate): release the commit lock before
                // entering the broadcast channel.
                drop(seq_guard);
                bcast.lock().push(tag);
            }
        };
        let t1 = thread::spawn(committer(Arc::clone(&seq), Arc::clone(&dbv), Arc::clone(&bcast)));
        committer(Arc::clone(&seq), Arc::clone(&dbv), Arc::clone(&bcast))();
        t1.join().expect("join committer");
        let log = bcast.lock();
        assert!(
            log[1].strictly_dominates(&log[0]),
            "broadcast order inverted: {} then {}",
            log[0],
            log[1]
        );
    })
    .expect_err("missing hand-off must be caught");
    assert!(failure.message.contains("inverted"), "got: {}", failure.message);
}

/// The applier's waiter protocol (`wait_received_for` vs
/// `notify_waiters`) must not lose wakeups: a reader that increments
/// `waiters` and re-checks under `wait_lock` always sees either the
/// version advance or the notify. A lost wakeup would park the reader
/// forever — reported by the checker as a deadlock.
#[test]
fn applier_wait_received_has_no_lost_wakeup() {
    let report = model_result(ModelOptions { preemptions: 2, ..Default::default() }, || {
        let store = Arc::new(PageStore::new(Residency::free()));
        let applier = Arc::new(PendingApplier::new(store, 1, Duration::from_secs(5)));
        let reader = {
            let applier = Arc::clone(&applier);
            thread::spawn(move || {
                applier.wait_received(&vv(&[1])).expect("version arrives");
            })
        };
        applier.advance_received(&vv(&[1]));
        reader.join().expect("join reader");
    })
    .expect("waiter protocol loses no wakeups");
    assert!(report.exhausted);
}

/// Two concurrent waiters, one advance covering both tags: `notify_all`
/// must wake both (a `notify_one` here would strand one waiter).
#[test]
fn applier_advance_wakes_all_waiters() {
    let report = model_result(ModelOptions { preemptions: 1, ..Default::default() }, || {
        let store = Arc::new(PageStore::new(Residency::free()));
        let applier = Arc::new(PendingApplier::new(store, 1, Duration::from_secs(5)));
        let spawn_reader = |applier: &Arc<PendingApplier>| {
            let applier = Arc::clone(applier);
            thread::spawn(move || {
                applier.wait_received(&vv(&[1])).expect("version arrives");
            })
        };
        let r1 = spawn_reader(&applier);
        let r2 = spawn_reader(&applier);
        applier.advance_received(&vv(&[1]));
        r1.join().expect("join reader 1");
        r2.join().expect("join reader 2");
    })
    .expect("advance wakes every waiter");
    assert!(report.exhausted);
}

/// The master's cumulative-ack watermark protocol (`AckTracker::wait`
/// vs `record`) must not lose wakeups: a committer that registers in
/// `waiters` and re-checks its predicate under `wait_lock` always sees
/// either the watermark advance or the notify. A lost wakeup would park
/// the commit for its full ack timeout on every coalesced batch —
/// exactly the stall the group-commit path exists to remove.
#[test]
fn ack_watermark_wait_has_no_lost_wakeup() {
    let report = model_result(ModelOptions { preemptions: 2, ..Default::default() }, || {
        let tracker = Arc::new(AckTracker::new());
        let committer = {
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || {
                let ok = tracker.wait(
                    wall_deadline(Duration::from_secs(5)),
                    Duration::from_secs(5),
                    || tracker.watermark(NodeId(1)) >= 1,
                );
                assert!(ok, "ack wait missed a recorded watermark");
            })
        };
        tracker.record(NodeId(1), 1);
        committer.join().expect("join committer");
    })
    .expect("ack watermark protocol loses no wakeups");
    assert!(report.exhausted);
}

/// A departing peer must wake parked committers (the ack-leak fix):
/// `remove` runs concurrently with a committer waiting on that peer's
/// watermark, and the committer's "is the peer still a target?"
/// re-check must always observe the removal.
#[test]
fn ack_peer_removal_wakes_parked_committers() {
    let report = model_result(ModelOptions { preemptions: 2, ..Default::default() }, || {
        let tracker = Arc::new(AckTracker::new());
        tracker.set_floor(NodeId(1), 0);
        let committer = {
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || {
                let ok = tracker.wait(
                    wall_deadline(Duration::from_secs(5)),
                    Duration::from_secs(5),
                    || tracker.watermark(NodeId(1)) >= 1 || !tracker.has_peer(NodeId(1)),
                );
                assert!(ok, "ack wait missed the peer removal");
            })
        };
        tracker.remove(NodeId(1));
        committer.join().expect("join committer");
    })
    .expect("peer removal wakes every parked committer");
    assert!(report.exhausted);
}

/// The group-commit coalescer (replica.rs `flush_batches`): the commit
/// seq is assigned and the write-set enqueued under the same
/// `commit_seq` guard, and the single flusher drains batch-by-batch
/// until the queue is empty. Every write-set is flushed exactly once,
/// in commit-seq order, regardless of which committer becomes the
/// flusher.
#[test]
fn batch_flush_is_fifo_and_lossless() {
    struct Coalescer {
        seq: Mutex<u64>,
        batch: Mutex<(Vec<u64>, bool)>, // (queue, in_flight)
        log: Mutex<Vec<u64>>,
    }
    let commit = |c: &Arc<Coalescer>| {
        // Same shape as replica.rs: seq assignment and the queue push
        // happen under the commit_seq guard; the take-over check rides
        // along, and the flush loop runs after the guard drops.
        let take_over = {
            let mut seq = c.seq.lock();
            *seq += 1;
            let my = *seq;
            let mut b = c.batch.lock();
            b.0.push(my);
            let t = !b.1;
            if t {
                b.1 = true;
            }
            t
        };
        if take_over {
            loop {
                let frame = {
                    let mut b = c.batch.lock();
                    if b.0.is_empty() {
                        b.1 = false;
                        break;
                    }
                    std::mem::take(&mut b.0)
                };
                c.log.lock().extend(frame);
            }
        }
    };
    let report = model_result(ModelOptions::default(), move || {
        let c = Arc::new(Coalescer {
            seq: Mutex::new(0),
            batch: Mutex::new((Vec::new(), false)),
            log: Mutex::new(Vec::new()),
        });
        let t1 = {
            let c = Arc::clone(&c);
            thread::spawn(move || commit(&c))
        };
        commit(&c);
        t1.join().expect("join committer");
        let log = c.log.lock();
        assert_eq!(log.len(), 2, "a write-set was never flushed: {:?}", &*log);
        assert!(log.windows(2).all(|w| w[0] < w[1]), "flush order inverted: {:?}", &*log);
    })
    .expect("single-flusher drain is FIFO and lossless");
    assert!(report.exhausted);
}

/// Companion: WITHOUT the final re-check (the flusher clears
/// `in_flight` after one drain instead of looping until the queue is
/// empty), a write-set pushed during the drain sees `in_flight == true`,
/// declines take-over, and is never broadcast. The checker proves the
/// loop-until-empty invariant is load-bearing by finding the lost
/// write-set.
#[test]
fn batch_flush_without_requeue_check_loses_writes() {
    let failure = model_result(ModelOptions::default(), || {
        let seq = Arc::new(Mutex::new(0u64));
        let batch = Arc::new(Mutex::new((Vec::<u64>::new(), false)));
        let log = Arc::new(Mutex::new(Vec::<u64>::new()));
        let commit = |seq: &Arc<Mutex<u64>>,
                      batch: &Arc<Mutex<(Vec<u64>, bool)>>,
                      log: &Arc<Mutex<Vec<u64>>>| {
            let take_over = {
                let mut seq = seq.lock();
                *seq += 1;
                let my = *seq;
                let mut b = batch.lock();
                b.0.push(my);
                let t = !b.1;
                if t {
                    b.1 = true;
                }
                t
            };
            if take_over {
                // BUG (deliberate): one drain, then surrender the
                // flusher role without rechecking the queue.
                let frame = std::mem::take(&mut batch.lock().0);
                log.lock().extend(frame);
                batch.lock().1 = false;
            }
        };
        let t1 = {
            let (seq, batch, log) = (Arc::clone(&seq), Arc::clone(&batch), Arc::clone(&log));
            thread::spawn(move || commit(&seq, &batch, &log))
        };
        commit(&seq, &batch, &log);
        t1.join().expect("join committer");
        let log = log.lock();
        assert_eq!(log.len(), 2, "a write-set was never flushed: {:?}", &*log);
    })
    .expect_err("the lost write-set must be caught");
    assert!(failure.message.contains("never flushed"), "got: {}", failure.message);
}

/// Throttle conservation: with one permit and competing chargers, every
/// charge completes (no lost wakeup on the permit condvar) and the
/// permit survives (a follow-up charge also completes). Over-issue is
/// impossible by construction here — `permits: usize` would underflow
/// and panic under the checker if the wait loop ever admitted a charger
/// without a permit.
#[test]
fn throttle_single_permit_is_conserved() {
    let report = model_result(ModelOptions { preemptions: 1, ..Default::default() }, || {
        // Scale 1e-9: modeled charge durations scale below 1us and the
        // clock skips the sleep entirely — no wall-clock in the model.
        let clock = SimClock::new(TimeScale::new(1e-9));
        let throttle = Throttle::new(clock, 1);
        let t1 = {
            let throttle = throttle.clone();
            thread::spawn(move || throttle.charge(Duration::from_secs(1)))
        };
        let t2 = {
            let throttle = throttle.clone();
            thread::spawn(move || throttle.charge(Duration::from_secs(1)))
        };
        t1.join().expect("join charger 1");
        t2.join().expect("join charger 2");
        // Permit conservation: a final charge still completes.
        throttle.charge(Duration::from_secs(1));
    })
    .expect("throttle conserves permits and loses no wakeups");
    assert!(report.exhausted);
}
