//! Litmus tests for the model checker itself: known-bad patterns must
//! be caught, known-good patterns must pass exhaustively.
//!
//! Run with `RUSTFLAGS="--cfg dmv_check" cargo test -p dmv-check`.

#![cfg(dmv_check)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use dmv_check::sync::atomic::{AtomicBool, AtomicU64};
use dmv_check::sync::{Condvar, Mutex};
use dmv_check::{model, model_result, thread, ModelOptions};

/// Non-atomic read-modify-write (load; add; store) loses updates under
/// the right interleaving; the checker must find it.
#[test]
fn finds_lost_update() {
    let failure = model_result(ModelOptions::default(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().expect("join");
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    })
    .expect_err("torn increment must be caught");
    assert!(failure.message.contains("lost update"), "got: {}", failure.message);
}

/// The same counter protected by a mutex is correct; exploration must
/// terminate having proved it within the bound.
#[test]
fn mutex_protects_counter() {
    let report = model_result(ModelOptions::default(), || {
        let counter = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            *c2.lock() += 1;
        });
        *counter.lock() += 1;
        t.join().expect("join");
        assert_eq!(*counter.lock(), 2);
    })
    .expect("mutexed counter is correct");
    assert!(report.exhausted, "bounded space should be fully explored");
}

/// Relaxed message passing is broken: the reader may observe the flag
/// without the data. The value oracle must expose the stale read.
#[test]
fn finds_relaxed_message_passing_bug() {
    let failure = model_result(ModelOptions::default(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data behind relaxed flag");
        }
        t.join().expect("join");
    })
    .expect_err("relaxed message passing must be caught");
    assert!(failure.message.contains("stale data"), "got: {}", failure.message);
}

/// Release/acquire message passing is correct: acquiring the flag must
/// make the data visible.
#[test]
fn release_acquire_message_passing_is_clean() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().expect("join");
    });
}

/// A waiter whose wakeup can be lost (signal before wait, no predicate
/// re-check) deadlocks; the checker must report it.
#[test]
fn finds_lost_wakeup_as_deadlock() {
    let failure = model_result(ModelOptions::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            drop(ready);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut guard = m.lock();
        // BUG (deliberate): waiting without re-checking the predicate —
        // if the notify already happened, this waits forever.
        cv.wait(&mut guard);
        assert!(*guard);
        drop(guard);
        t.join().expect("join");
    })
    .expect_err("lost wakeup must surface as deadlock");
    assert!(failure.message.contains("deadlock"), "got: {}", failure.message);
}

/// The fixed version (predicate loop) passes exhaustively.
#[test]
fn predicate_loop_wait_is_clean() {
    let report = model_result(ModelOptions::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut guard = m.lock();
        while !*guard {
            cv.wait(&mut guard);
        }
        drop(guard);
        t.join().expect("join");
    })
    .expect("predicate loop is correct");
    assert!(report.exhausted);
}

/// Failing schedules replay deterministically: the same options must
/// yield the same schedule twice.
#[test]
fn failing_schedule_is_deterministic() {
    let run = || {
        model_result(ModelOptions::default(), || {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
            });
            assert_eq!(x.load(Ordering::SeqCst), 0, "saw the racing store");
            t.join().expect("join");
        })
        .expect_err("race must be found")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.executions, b.executions);
}
