//! Mutation corpus for the happens-before race detector (PR 7).
//!
//! Each seed scripts a known-bad memory-ordering mutation of a real
//! hot-path protocol against a private [`Detector`] instance and
//! asserts it is **caught** with a report naming both racing sites;
//! each seed has a clean counterpart asserting the correct protocol
//! produces **zero** reports. The scripted tests run in every build
//! mode (the detector is plain code); the `shimmed` module at the
//! bottom re-runs the downgrade seeds through the real `dmv_race`
//! shims with real threads.
//!
//! Seeds:
//! 1. torn-snapshot revert — the PR-1 bug: collecting a version
//!    vector with `Relaxed` per-entry loads while a writer publishes
//!    entries with `Release`.
//! 2. AckTracker watermark fast-path read downgraded
//!    `SeqCst → Relaxed`.
//! 3. applier shard hand-off: the received-vector publish (`fetch_max`)
//!    downgraded `Release → Relaxed` under an `Acquire` reader.
//! 4. version-vector publish store downgraded `Release → Relaxed`
//!    under an `Acquire` reader.
//! 5. lock-order inversion (dynamic cycle and declared-chain forms).
//! 6. condvar notify with no happens-before edge to the waiter.

use dmv_check::race::{parse_chains, Detector};
use dmv_check::report::{RaceKind, Site};
use std::sync::atomic::Ordering;

fn two_threads(d: &Detector) -> (usize, usize) {
    let a = d.register_thread(None, Some("writer".into()));
    let b = d.register_thread(None, Some("reader".into()));
    (a, b)
}

// ------------------------------------------------- seed 1: torn snapshot

/// PR-1 torn snapshot, reintroduced: `AtomicVersionVector::snapshot`
/// collecting entries with `Relaxed` loads while `merge` publishes
/// them with `Release`. The relaxed collect can mix entries from
/// different merges; the detector flags each relaxed load that
/// observed an unordered release store.
#[test]
fn torn_snapshot_revert_caught() {
    let d = Detector::new();
    let (w, r) = two_threads(&d);
    let e0 = d.alloc_object();
    let e1 = d.alloc_object();
    d.label_loc(e0, "vv[0]");
    d.label_loc(e1, "vv[1]");
    // Writer: merge publishes both entries with Release.
    let w0 = Site::caller();
    d.atomic_store(w, e0, Ordering::Release, w0);
    let w1 = Site::caller();
    d.atomic_store(w, e1, Ordering::Release, w1);
    // Reader: mutated snapshot() collects with Relaxed loads.
    let r0 = Site::caller();
    d.atomic_load(r, e0, Ordering::Relaxed, r0);
    let r1 = Site::caller();
    d.atomic_load(r, e1, Ordering::Relaxed, r1);
    let reports = d.reports();
    assert_eq!(reports.len(), 2, "both torn entries flagged");
    for (rep, (ws, rs)) in reports.iter().zip([(w0, r0), (w1, r1)]) {
        assert_eq!(rep.kind, RaceKind::RelaxedRead);
        assert_eq!(rep.prior.site, ws, "report names the racing store");
        assert_eq!(rep.current.site, rs, "report names the racing load");
    }
}

/// The shipped protocol: snapshot() uses Acquire loads of Release
/// stores — every observed entry is synchronized, nothing is flagged.
#[test]
fn torn_snapshot_fixed_clean() {
    let d = Detector::new();
    let (w, r) = two_threads(&d);
    let e0 = d.alloc_object();
    let e1 = d.alloc_object();
    d.atomic_store(w, e0, Ordering::Release, Site::caller());
    d.atomic_store(w, e1, Ordering::Release, Site::caller());
    d.atomic_load(r, e0, Ordering::Acquire, Site::caller());
    d.atomic_load(r, e1, Ordering::Acquire, Site::caller());
    assert_eq!(d.report_count(), 0);
}

// ------------------------------------- seed 2: watermark read downgrade

/// AckTracker fast path: `wait()` evaluates its predicate (a watermark
/// `load(SeqCst)`) before registering as a waiter. Downgrading that
/// load to `Relaxed` lets the committer act on a watermark with no
/// ordering edge to the recorder's `fetch_max`.
#[test]
fn watermark_relaxed_fast_path_caught() {
    let d = Detector::new();
    let (recorder, committer) = two_threads(&d);
    let wm = d.alloc_object();
    d.label_loc(wm, "ack.watermark");
    let record_site = Site::caller();
    d.atomic_rmw(recorder, wm, Ordering::SeqCst, record_site); // fetch_max
    let read_site = Site::caller();
    d.atomic_load(committer, wm, Ordering::Relaxed, read_site); // downgraded pred()
    let reports = d.reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, RaceKind::RelaxedRead);
    assert_eq!(reports[0].object, "ack.watermark");
    assert_eq!(reports[0].prior.site, record_site);
    assert_eq!(reports[0].current.site, read_site);
}

/// The shipped SeqCst predicate read synchronizes with the recorder.
#[test]
fn watermark_seqcst_fast_path_clean() {
    let d = Detector::new();
    let (recorder, committer) = two_threads(&d);
    let wm = d.alloc_object();
    d.atomic_rmw(recorder, wm, Ordering::SeqCst, Site::caller());
    d.atomic_load(committer, wm, Ordering::SeqCst, Site::caller());
    assert_eq!(d.report_count(), 0);
}

// -------------------------------- seed 3: shard hand-off publish downgrade

/// Applier hand-off: the receiver publishes the received-version
/// vector with a Release `fetch_max` after filling page queues; a
/// reader's Acquire load of it is what orders the queue contents.
/// Downgrading the publish to `Relaxed` leaves the acquire with no
/// edge — flagged as a relaxed-publish on the *store* side.
#[test]
fn applier_handoff_relaxed_publish_caught() {
    let d = Detector::new();
    let (receiver, reader) = two_threads(&d);
    let received = d.alloc_object();
    d.label_loc(received, "applier.received");
    let pub_site = Site::caller();
    d.atomic_rmw(receiver, received, Ordering::Relaxed, pub_site); // downgraded fetch_max
    let read_site = Site::caller();
    d.atomic_load(reader, received, Ordering::Acquire, read_site);
    let reports = d.reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, RaceKind::RelaxedPublish);
    assert_eq!(reports[0].prior.site, pub_site);
    assert_eq!(reports[0].current.site, read_site);
}

/// The shipped Release fetch_max gives the acquire reader its edge.
#[test]
fn applier_handoff_release_publish_clean() {
    let d = Detector::new();
    let (receiver, reader) = two_threads(&d);
    let received = d.alloc_object();
    d.atomic_rmw(receiver, received, Ordering::Release, Site::caller());
    d.atomic_load(reader, received, Ordering::Acquire, Site::caller());
    assert_eq!(d.report_count(), 0);
}

// ---------------------------------- seed 4: version publish downgrade

/// Version-vector publish: a master's commit stores the new table
/// version with Release so a slave's Acquire read-tag check orders
/// the page bytes behind it. A Relaxed store breaks the edge.
#[test]
fn version_publish_relaxed_store_caught() {
    let d = Detector::new();
    let (master, slave) = two_threads(&d);
    let ver = d.alloc_object();
    d.label_loc(ver, "dbversion[t0]");
    let pub_site = Site::caller();
    d.atomic_store(master, ver, Ordering::Relaxed, pub_site); // downgraded publish
    let tag_site = Site::caller();
    d.atomic_load(slave, ver, Ordering::Acquire, tag_site);
    let reports = d.reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, RaceKind::RelaxedPublish);
    assert_eq!(reports[0].prior.site, pub_site);
    assert_eq!(reports[0].current.site, tag_site);
}

#[test]
fn version_publish_release_store_clean() {
    let d = Detector::new();
    let (master, slave) = two_threads(&d);
    let ver = d.alloc_object();
    d.atomic_store(master, ver, Ordering::Release, Site::caller());
    d.atomic_load(slave, ver, Ordering::Acquire, Site::caller());
    assert_eq!(d.report_count(), 0);
}

// ----------------------------------------- pure-relaxed stats exemption

/// Locations whose accesses are all Relaxed (independent stats
/// counters annotated `relaxed-ok:`) communicate no cross-cell
/// invariant and are exempt.
#[test]
fn pure_relaxed_counter_is_exempt() {
    let d = Detector::new();
    let (a, b) = two_threads(&d);
    let ctr = d.alloc_object();
    d.label_loc(ctr, "stats.counter");
    d.atomic_rmw(a, ctr, Ordering::Relaxed, Site::caller());
    d.atomic_load(b, ctr, Ordering::Relaxed, Site::caller());
    d.atomic_rmw(b, ctr, Ordering::Relaxed, Site::caller());
    d.atomic_load(a, ctr, Ordering::Relaxed, Site::caller());
    assert_eq!(d.report_count(), 0, "all-relaxed stats cells must not be flagged");
}

// ------------------------------------------------- lock-order inversion

#[test]
fn dynamic_lock_inversion_caught() {
    let d = Detector::new();
    let (t0, t1) = two_threads(&d);
    let a = d.alloc_object();
    let b = d.alloc_object();
    d.label_lock(a, "queues");
    d.label_lock(b, "wait_lock");
    // t0: A then B (establishes the edge), releases both.
    let first_site = Site::caller();
    d.lock_acquire(t0, a, first_site);
    d.lock_acquire(t0, b, Site::caller());
    d.lock_release(t0, b, Site::caller());
    d.lock_release(t0, a, Site::caller());
    // t1: B then A — the reverse order closes the cycle.
    d.lock_acquire(t1, b, Site::caller());
    let inv_site = Site::caller();
    d.lock_acquire(t1, a, inv_site);
    let reports = d.reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, RaceKind::LockOrderInversion);
    assert_eq!(reports[0].current.site, inv_site);
}

#[test]
fn declared_chain_violation_caught() {
    let chains = parse_chains(
        r#"
        [[chain]]
        name = "applier"
        order = ["queues", "wait_lock"]
        "#,
    );
    let d = Detector::with_lock_order(chains);
    let t0 = d.register_thread(None, None);
    let a = d.alloc_object();
    let b = d.alloc_object();
    d.label_lock(a, "queues");
    d.label_lock(b, "wait_lock");
    // Acquire in declared-reverse order on a single thread: no dynamic
    // cycle exists yet, only the declaration catches it.
    d.lock_acquire(t0, b, Site::caller());
    let site = Site::caller();
    d.lock_acquire(t0, a, site);
    let reports = d.reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, RaceKind::LockOrderInversion);
    assert!(reports[0].message.contains("applier"), "names the violated chain");
    assert_eq!(reports[0].current.site, site);
}

#[test]
fn declared_chain_respected_clean() {
    let chains = parse_chains(
        r#"
        [[chain]]
        name = "applier"
        order = ["queues", "wait_lock"]
        "#,
    );
    let d = Detector::with_lock_order(chains);
    let t0 = d.register_thread(None, None);
    let a = d.alloc_object();
    let b = d.alloc_object();
    d.label_lock(a, "queues");
    d.label_lock(b, "wait_lock");
    d.lock_acquire(t0, a, Site::caller());
    d.lock_acquire(t0, b, Site::caller());
    d.lock_release(t0, b, Site::caller());
    d.lock_release(t0, a, Site::caller());
    assert_eq!(d.report_count(), 0);
}

// ---------------------------------------------------- condvar no-HB

/// A notify whose notifier never published anything (no release op
/// before notifying): the waiter wakes with no edge to the state the
/// notifier wrote — the missed-notify protocol's failure mode.
#[test]
fn condvar_notify_without_publish_caught() {
    let d = Detector::new();
    let (notifier, waiter) = two_threads(&d);
    let m = d.alloc_object();
    let cv = d.alloc_object();
    d.label_lock(m, "wait_lock");
    d.label_cv(cv, "ack.cv");
    // Waiter: lock, park (the shim releases the mutex around the real
    // wait).
    d.lock_acquire(waiter, m, Site::caller());
    let seq = d.cv_wait_begin(waiter, cv, Site::caller());
    d.lock_release(waiter, m, Site::caller());
    // Notifier: mutates shared state and notifies WITHOUT taking the
    // mutex (no release ⇒ nothing published).
    let notify_site = Site::caller();
    d.cv_notify(notifier, cv, notify_site);
    // Waiter wakes, reacquires.
    d.lock_acquire(waiter, m, Site::caller());
    let wake_site = Site::caller();
    d.cv_wait_end(waiter, cv, seq, false, wake_site);
    let reports = d.reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, RaceKind::CondvarNoHb);
    assert_eq!(reports[0].prior.site, notify_site);
    assert_eq!(reports[0].current.site, wake_site);
}

/// The shipped protocol: the notifier publishes under the mutex (or
/// any release op) before notifying; the waiter's reacquire joins the
/// lock clock, so the wake has its edge.
#[test]
fn condvar_notify_under_mutex_clean() {
    let d = Detector::new();
    let (notifier, waiter) = two_threads(&d);
    let m = d.alloc_object();
    let cv = d.alloc_object();
    d.lock_acquire(waiter, m, Site::caller());
    let seq = d.cv_wait_begin(waiter, cv, Site::caller());
    d.lock_release(waiter, m, Site::caller());
    d.lock_acquire(notifier, m, Site::caller());
    d.lock_release(notifier, m, Site::caller());
    d.cv_notify(notifier, cv, Site::caller());
    d.lock_acquire(waiter, m, Site::caller());
    d.cv_wait_end(waiter, cv, seq, false, Site::caller());
    assert_eq!(d.report_count(), 0);
}

/// A timed-out wake is never checked: there may be no notify at all.
#[test]
fn condvar_timeout_wake_clean() {
    let d = Detector::new();
    let (notifier, waiter) = two_threads(&d);
    let m = d.alloc_object();
    let cv = d.alloc_object();
    d.lock_acquire(waiter, m, Site::caller());
    let seq = d.cv_wait_begin(waiter, cv, Site::caller());
    d.lock_release(waiter, m, Site::caller());
    d.cv_notify(notifier, cv, Site::caller());
    d.lock_acquire(waiter, m, Site::caller());
    d.cv_wait_end(waiter, cv, seq, true, Site::caller());
    assert_eq!(d.report_count(), 0);
}

// ------------------------------------------------------ external HB

/// A relaxed exchange whose ordering is carried by a mutex is not a
/// race: the lock release/acquire makes the writer's epoch visible.
#[test]
fn relaxed_under_mutex_clean() {
    let d = Detector::new();
    let (w, r) = two_threads(&d);
    let m = d.alloc_object();
    let loc = d.alloc_object();
    // Mark the location as mixed-ordering so the exemption for
    // pure-relaxed cells does not apply.
    d.atomic_store(w, loc, Ordering::Release, Site::caller());
    d.lock_acquire(w, m, Site::caller());
    d.atomic_store(w, loc, Ordering::Relaxed, Site::caller());
    d.lock_release(w, m, Site::caller());
    d.lock_acquire(r, m, Site::caller());
    d.atomic_load(r, loc, Ordering::Relaxed, Site::caller());
    d.lock_release(r, m, Site::caller());
    assert_eq!(d.report_count(), 0, "mutex carries the edge for relaxed accesses");
}

/// A fork edge orders everything the parent did before the spawn.
#[test]
fn fork_edge_orders_parent_writes() {
    let d = Detector::new();
    let parent = d.register_thread(None, Some("parent".into()));
    let loc = d.alloc_object();
    d.atomic_store(parent, loc, Ordering::Release, Site::caller());
    d.atomic_store(parent, loc, Ordering::Relaxed, Site::caller());
    let child = d.register_thread(Some(parent), Some("child".into()));
    d.atomic_load(child, loc, Ordering::Relaxed, Site::caller());
    assert_eq!(d.report_count(), 0, "fork edge covers pre-spawn writes");
}

/// A join edge orders everything the child did before the join.
#[test]
fn join_edge_orders_child_writes() {
    let d = Detector::new();
    let parent = d.register_thread(None, Some("parent".into()));
    let child = d.register_thread(Some(parent), Some("child".into()));
    let loc = d.alloc_object();
    d.atomic_store(parent, loc, Ordering::Release, Site::caller()); // mixed location
    d.atomic_store(child, loc, Ordering::Relaxed, Site::caller());
    d.join_edge(parent, child);
    d.atomic_load(parent, loc, Ordering::Relaxed, Site::caller());
    assert_eq!(d.report_count(), 0, "join edge covers the child's writes");
}

// ------------------------------------------- real-shim seeds (dmv_race)
//
// The same downgrade seeds driven through the actual shim types with
// real OS threads and the process-global detector. Tests in one binary
// share that global, so every assertion is scoped to this test's own
// labels.

#[cfg(dmv_race)]
mod shimmed {
    use dmv_check::race;
    use dmv_check::report::RaceKind;
    use dmv_check::sync::atomic::{AtomicU64, Ordering};
    use dmv_check::thread;
    use std::sync::Arc;

    fn reports_on(label: &str) -> Vec<dmv_check::report::RaceReport> {
        race::global().reports().into_iter().filter(|r| r.object == label).collect()
    }

    #[test]
    fn shim_watermark_relaxed_fast_path_caught() {
        let wm = Arc::new(AtomicU64::new(0));
        race::label(&*wm, "mutseed.watermark");
        let w = Arc::clone(&wm);
        let h = thread::spawn(move || {
            w.fetch_max(5, Ordering::SeqCst); // recorder (release)
        });
        // Committer fast path, downgraded SeqCst → Relaxed: spin until
        // the recorder's watermark is observed *before* joining, so no
        // join edge can order it.
        while wm.load(Ordering::Relaxed) < 5 {
            std::hint::spin_loop();
        }
        h.join().unwrap(); // unwrap-ok: test thread join
        let reps = reports_on("mutseed.watermark");
        assert!(!reps.is_empty(), "relaxed fast-path read must be flagged");
        assert_eq!(reps[0].kind, RaceKind::RelaxedRead);
    }

    #[test]
    fn shim_version_publish_relaxed_caught() {
        let ver = Arc::new(AtomicU64::new(0));
        race::label(&*ver, "mutseed.version");
        let v = Arc::clone(&ver);
        let h = thread::spawn(move || {
            v.store(7, Ordering::Relaxed); // downgraded publish
        });
        while ver.load(Ordering::Acquire) != 7 {
            std::hint::spin_loop();
        }
        h.join().unwrap(); // unwrap-ok: test thread join
        let reps = reports_on("mutseed.version");
        assert!(!reps.is_empty(), "acquire of a relaxed publish must be flagged");
        assert_eq!(reps[0].kind, RaceKind::RelaxedPublish);
    }

    #[test]
    fn shim_release_publish_clean() {
        let ver = Arc::new(AtomicU64::new(0));
        race::label(&*ver, "mutseed.clean_version");
        let v = Arc::clone(&ver);
        let h = thread::spawn(move || {
            v.store(7, Ordering::Release);
        });
        while ver.load(Ordering::Acquire) != 7 {
            std::hint::spin_loop();
        }
        h.join().unwrap(); // unwrap-ok: test thread join
        assert!(
            reports_on("mutseed.clean_version").is_empty(),
            "release/acquire exchange must not be flagged"
        );
    }

    #[test]
    fn shim_lock_inversion_caught() {
        use dmv_check::sync::Mutex;
        let a = Mutex::new(());
        let b = Mutex::new(());
        race::label(&a, "mutseed.lockA");
        race::label(&b, "mutseed.lockB");
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // reverse order: dynamic inversion
        }
        let reps = reports_on("mutseed.lockA");
        assert!(!reps.is_empty(), "reverse acquisition order must be flagged");
        assert_eq!(reps[0].kind, RaceKind::LockOrderInversion);
    }
}
