//! Time scaling between *paper time* and wall-clock time.
//!
//! The paper's experiments run for tens of minutes on a 19-node physical
//! cluster. This reproduction compresses them: every modeled latency (disk
//! access, network hop, client think time, checkpoint interval, ...) is
//! specified in **paper time** and multiplied by a global [`TimeScale`]
//! before it is actually slept, so a 40-minute experiment completes in tens
//! of wall seconds while all *ratios* between modeled costs are preserved.
//! Results are reported de-scaled, i.e. back in paper time, so they can be
//! compared with the paper's figures directly.

use std::time::{Duration, Instant};

/// The one sanctioned wall-clock instant type. Everything outside this
/// module names `WallInstant` (or calls [`wall_now`]/[`wall_deadline`])
/// instead of `std::time::Instant`, so the `cargo xtask lint`
/// wall-clock rule makes ad-hoc timing sources grep-able and keeps
/// simnet time-scaling the single authority on elapsed time.
pub type WallInstant = Instant;

/// Reads the wall clock. The only sanctioned `Instant::now()` outside
/// tests; use sparingly — paper-time measurements go through
/// [`SimClock`].
pub fn wall_now() -> WallInstant {
    Instant::now()
}

/// A wall-clock deadline `timeout` from now, for handing to blocking
/// waits such as `Condvar::wait_until`.
pub fn wall_deadline(timeout: Duration) -> WallInstant {
    Instant::now() + timeout
}

/// Multiplier mapping paper time to wall time (`wall = paper * factor`).
///
/// ```
/// use dmv_common::clock::TimeScale;
/// use std::time::Duration;
///
/// let s = TimeScale::new(0.01); // 1 paper-second = 10 wall-ms
/// assert_eq!(s.to_wall(Duration::from_secs(1)), Duration::from_millis(10));
/// assert_eq!(s.to_paper(Duration::from_millis(10)), Duration::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeScale {
    factor: f64,
}

impl TimeScale {
    /// Creates a time scale with the given wall/paper factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn new(factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "time scale must be positive");
        TimeScale { factor }
    }

    /// Identity scale: paper time == wall time.
    pub fn realtime() -> Self {
        TimeScale { factor: 1.0 }
    }

    /// The wall/paper factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Converts a paper-time duration to wall time.
    pub fn to_wall(&self, paper: Duration) -> Duration {
        Duration::from_secs_f64(paper.as_secs_f64() * self.factor)
    }

    /// Converts a wall-clock duration back to paper time.
    pub fn to_paper(&self, wall: Duration) -> Duration {
        Duration::from_secs_f64(wall.as_secs_f64() / self.factor)
    }

    /// Convenience: `secs` of paper time as a wall duration.
    pub fn paper_secs(&self, secs: f64) -> Duration {
        self.to_wall(Duration::from_secs_f64(secs))
    }

    /// Convenience: `ms` of paper time as a wall duration.
    pub fn paper_millis(&self, ms: f64) -> Duration {
        self.paper_secs(ms / 1e3)
    }

    /// Convenience: `us` of paper time as a wall duration.
    pub fn paper_micros(&self, us: f64) -> Duration {
        self.paper_secs(us / 1e6)
    }
}

impl Default for TimeScale {
    fn default() -> Self {
        TimeScale::realtime()
    }
}

/// A clock measuring elapsed **paper time** since an epoch, and able to
/// sleep for paper-time durations.
///
/// Cheap to clone; all clones share the same epoch and scale.
#[derive(Debug, Clone, Copy)]
pub struct SimClock {
    epoch: Instant,
    scale: TimeScale,
}

impl SimClock {
    /// Starts a clock now with the given scale.
    pub fn new(scale: TimeScale) -> Self {
        SimClock { epoch: Instant::now(), scale }
    }

    /// The clock's time scale.
    pub fn scale(&self) -> TimeScale {
        self.scale
    }

    /// Paper time elapsed since the clock was created.
    pub fn now_paper(&self) -> Duration {
        self.scale.to_paper(self.epoch.elapsed())
    }

    /// Wall time elapsed since the clock was created.
    pub fn now_wall(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Sleeps for `paper` of paper time (i.e. the scaled wall duration).
    ///
    /// Sub-microsecond scaled durations are skipped rather than slept, so
    /// very small modeled costs do not dominate with scheduler noise.
    pub fn sleep_paper(&self, paper: Duration) {
        let wall = self.scale.to_wall(paper);
        if wall >= Duration::from_micros(1) {
            std::thread::sleep(wall);
        }
    }

    /// Sleeps for `secs` paper seconds.
    pub fn sleep_paper_secs(&self, secs: f64) {
        self.sleep_paper(Duration::from_secs_f64(secs));
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new(TimeScale::realtime())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_roundtrip() {
        let s = TimeScale::new(0.05);
        let d = Duration::from_millis(1234);
        let back = s.to_paper(s.to_wall(d));
        let err = back.as_secs_f64() - d.as_secs_f64();
        assert!(err.abs() < 1e-9, "roundtrip error {err}");
    }

    #[test]
    fn paper_conversions() {
        let s = TimeScale::new(0.1);
        assert_eq!(s.paper_secs(2.0), Duration::from_millis(200));
        assert_eq!(s.paper_millis(50.0), Duration::from_millis(5));
        assert_eq!(s.paper_micros(100.0), Duration::from_micros(10));
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let _ = TimeScale::new(0.0);
    }

    #[test]
    #[should_panic]
    fn negative_scale_rejected() {
        let _ = TimeScale::new(-1.0);
    }

    #[test]
    fn clock_advances_in_paper_time() {
        let c = SimClock::new(TimeScale::new(0.001)); // 1 paper-s = 1 wall-ms
        std::thread::sleep(Duration::from_millis(5));
        let p = c.now_paper();
        assert!(p >= Duration::from_secs(4), "paper time was {p:?}");
    }

    #[test]
    fn sleep_paper_sleeps_scaled() {
        let c = SimClock::new(TimeScale::new(0.001));
        let t0 = Instant::now();
        c.sleep_paper_secs(2.0); // = 2 wall-ms
        let el = t0.elapsed();
        assert!(el >= Duration::from_millis(2));
        assert!(el < Duration::from_millis(500), "slept too long: {el:?}");
    }

    #[test]
    fn tiny_sleeps_are_skipped() {
        let c = SimClock::new(TimeScale::new(1e-9));
        let t0 = Instant::now();
        c.sleep_paper_secs(1.0); // scaled to 1ns -> skipped
        assert!(t0.elapsed() < Duration::from_millis(50));
    }
}
