//! Cost-model configuration shared by the storage engines and the network.
//!
//! All durations are **paper time**; they are scaled to wall time by the
//! experiment's [`crate::clock::TimeScale`] when actually charged. The
//! defaults model 2007-era commodity hardware (the paper's dual Athlon
//! cluster with local IDE disks and switched 100 Mb–1 Gb Ethernet).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Latency model for the simulated disk backing the on-disk engine and the
/// page-in cost of the mmap-ed in-memory databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Random page read (seek + rotation + transfer).
    pub read_latency: Duration,
    /// Page write (typically absorbed by the write cache; cheaper).
    pub write_latency: Duration,
    /// Log force (fsync) at commit.
    pub fsync_latency: Duration,
    /// Sequential per-page transfer during log replay / bulk scans.
    pub seq_read_latency: Duration,
}

impl DiskProfile {
    /// 2007-era 7200 rpm commodity disk.
    pub fn commodity_2007() -> Self {
        DiskProfile {
            read_latency: Duration::from_micros(8000),
            write_latency: Duration::from_micros(2500),
            fsync_latency: Duration::from_micros(6000),
            seq_read_latency: Duration::from_micros(400),
        }
    }

    /// A very fast disk, for sensitivity/ablation experiments.
    pub fn fast_ssd() -> Self {
        DiskProfile {
            read_latency: Duration::from_micros(120),
            write_latency: Duration::from_micros(60),
            fsync_latency: Duration::from_micros(150),
            seq_read_latency: Duration::from_micros(20),
        }
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        Self::commodity_2007()
    }
}

/// Latency model for the simulated cluster interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetProfile {
    /// One-way propagation + protocol latency per message.
    pub latency: Duration,
    /// Serialization cost per KiB of payload.
    pub per_kib: Duration,
}

impl NetProfile {
    /// Switched LAN of the paper's testbed (~100 µs RTT/2, ~1 Gb/s).
    pub fn lan_2007() -> Self {
        NetProfile { latency: Duration::from_micros(120), per_kib: Duration::from_micros(9) }
    }

    /// Zero-cost network for pure-logic unit tests.
    pub fn zero() -> Self {
        NetProfile { latency: Duration::ZERO, per_kib: Duration::ZERO }
    }

    /// Total transfer time for a message of `bytes` payload.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        self.latency
            + Duration::from_nanos((self.per_kib.as_nanos() as u64) * (bytes as u64) / 1024)
    }
}

impl Default for NetProfile {
    fn default() -> Self {
        Self::lan_2007()
    }
}

/// Per-query CPU cost model for the engines.
///
/// Real CPU work in this reproduction is microseconds-scale, far below the
/// paper's millisecond-scale query costs; this model restores the paper's
/// relative CPU weights (complex read-only interactions such as BestSellers
/// are much heavier than point lookups) so that master saturation and
/// scaling curves keep their shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuProfile {
    /// Charged per row examined by a scan or join.
    pub per_row_scan: Duration,
    /// Charged per index traversal.
    pub per_index_probe: Duration,
    /// Charged per row written (insert/update/delete).
    pub per_row_write: Duration,
}

impl CpuProfile {
    /// Model of the paper's 1.9 GHz Athlon executing MySQL heap-table code.
    pub fn athlon_2007() -> Self {
        CpuProfile {
            per_row_scan: Duration::from_nanos(900),
            per_index_probe: Duration::from_micros(4),
            per_row_write: Duration::from_micros(9),
        }
    }

    /// Zero-cost CPU for pure-logic unit tests.
    pub fn zero() -> Self {
        CpuProfile {
            per_row_scan: Duration::ZERO,
            per_index_probe: Duration::ZERO,
            per_row_write: Duration::ZERO,
        }
    }
}

impl Default for CpuProfile {
    fn default() -> Self {
        Self::athlon_2007()
    }
}

/// Tuning knobs for the real TCP transport (`dmv-net`).
///
/// Unlike the profiles above, these are **wall-time** durations: the TCP
/// transport moves real bytes through the kernel, so its timeouts bound
/// actual I/O rather than modeled cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// First reconnect delay after a failed connect.
    pub connect_backoff_base: Duration,
    /// Cap on the exponential reconnect delay.
    pub connect_backoff_cap: Duration,
    /// Idle interval after which a writer emits a heartbeat frame.
    pub heartbeat_interval: Duration,
    /// Per-link bounded outbound queue depth (messages).
    pub queue_depth: usize,
    /// How long a sender blocks on a full outbound queue before the
    /// send fails with backpressure.
    pub enqueue_timeout: Duration,
    /// Seed for backoff jitter (drawn via `rng::derive`, one stream per
    /// link, so reconnect schedules are reproducible).
    pub seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_backoff_base: Duration::from_millis(10),
            connect_backoff_cap: Duration::from_secs(1),
            heartbeat_interval: Duration::from_millis(200),
            queue_depth: 1024,
            enqueue_timeout: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// Group-commit knobs for the master's write-set batcher
/// (`ClusterSpec.group_commit`, plumbed into every replica).
///
/// The master coalesces the write-sets of commits that arrive while the
/// previous broadcast is still in flight and flushes them as one
/// `WriteSetBatch` frame. There are **no timer ticks**: a commit that
/// finds no broadcast in flight flushes itself immediately (so a lone
/// writer pays exactly the unbatched latency), and an in-flight flush
/// drains whatever accumulated the moment it completes. These two
/// bounds only cap how much one flush may carry:
///
/// * [`max_batch_count`](Self::max_batch_count) — the most write-sets
///   one `WriteSetBatch` frame may carry. Larger batches amortize the
///   per-message network latency over more commits but delay every
///   commit in the batch until the whole frame is serialized; past
///   ~64 the amortization is already >98% of the asymptote.
/// * [`max_batch_bytes`](Self::max_batch_bytes) — a soft cap on the
///   encoded payload of one flush. A batch closes at the first
///   write-set that would push it past this bound (a single oversized
///   write-set still ships alone — the cap never blocks progress).
///   Bounds the head-of-line blocking a huge batch would impose on the
///   serialization pipe and the burst a slave must buffer.
///
/// Queued commits above either bound simply wait for the next flush,
/// which starts as soon as the current one completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupCommitConfig {
    /// Maximum write-sets per flushed batch frame.
    pub max_batch_count: usize,
    /// Soft cap on the encoded bytes of one batch frame.
    pub max_batch_bytes: usize,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig { max_batch_count: 64, max_batch_bytes: 1 << 20 }
    }
}

/// Buffer budget for a replica's page store
/// (`ClusterSpec.buffer_budget`, plumbed into every node).
///
/// Models the paper's finite buffer cache: once the resident page set
/// exceeds [`max_resident_bytes`](Self::max_resident_bytes), a
/// clock/second-chance evictor marks cold clean pages non-resident, so
/// re-touching them charges the page-in latency through the node's
/// single-arm disk throttle. A budget of `0` (the [`unbounded`]
/// default) disables eviction entirely — the pre-epoch behavior, and
/// the right choice for pure-logic tests.
///
/// [`unbounded`]: Self::unbounded
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferBudget {
    /// Resident-byte ceiling per node; `0` means unlimited.
    pub max_resident_bytes: usize,
}

impl BufferBudget {
    /// No budget: every touched page stays resident (pre-epoch
    /// behavior).
    pub fn unbounded() -> Self {
        BufferBudget { max_resident_bytes: 0 }
    }

    /// A budget of exactly `pages` resident pages.
    pub fn pages(pages: usize, page_size: usize) -> Self {
        BufferBudget { max_resident_bytes: pages * page_size }
    }

    /// True if eviction is enabled.
    pub fn is_bounded(&self) -> bool {
        self.max_resident_bytes > 0
    }
}

impl Default for BufferBudget {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_budget_default_is_unbounded() {
        let b = BufferBudget::default();
        assert!(!b.is_bounded());
        assert!(BufferBudget::pages(64, 4096).is_bounded());
        assert_eq!(BufferBudget::pages(64, 4096).max_resident_bytes, 64 * 4096);
    }

    #[test]
    fn group_commit_defaults_sane() {
        let g = GroupCommitConfig::default();
        assert!(g.max_batch_count >= 1);
        assert!(g.max_batch_bytes >= 4096);
    }

    #[test]
    fn tcp_defaults_sane() {
        let t = TcpConfig::default();
        assert!(t.connect_backoff_base < t.connect_backoff_cap);
        assert!(t.queue_depth > 0);
    }

    #[test]
    fn defaults_are_commodity() {
        assert_eq!(DiskProfile::default(), DiskProfile::commodity_2007());
        assert_eq!(NetProfile::default(), NetProfile::lan_2007());
        assert_eq!(CpuProfile::default(), CpuProfile::athlon_2007());
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let n = NetProfile::lan_2007();
        let small = n.transfer_time(100);
        let big = n.transfer_time(100 * 1024);
        assert!(big > small);
        assert!(big - small >= Duration::from_micros(800));
    }

    #[test]
    fn zero_profiles_cost_nothing() {
        assert_eq!(NetProfile::zero().transfer_time(1 << 20), Duration::ZERO);
        assert_eq!(CpuProfile::zero().per_row_write, Duration::ZERO);
    }

    #[test]
    fn disk_ordering_sane() {
        let d = DiskProfile::commodity_2007();
        assert!(d.seq_read_latency < d.read_latency);
        assert!(d.write_latency < d.read_latency);
    }
}
