//! Workspace-wide error type.

use crate::ids::{NodeId, PageId, TxnId};
use std::fmt;

/// Result alias used across the workspace.
pub type DmvResult<T> = Result<T, DmvError>;

/// Errors produced by the DMV middleware and its substrates.
///
/// `VersionConflict` and `Deadlock` are *retryable*: the client emulator
/// and the TPC-W driver retry such transactions, and the paper reports the
/// version-conflict abort rate (< 2.5 %) as an evaluation metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmvError {
    /// A read-only transaction touched a page whose last applied version
    /// exceeds the transaction's version tag (paper §2.2). Retryable.
    VersionConflict {
        /// Page where the inconsistency was detected.
        page: PageId,
        /// Version the transaction was tagged to read.
        wanted: u64,
        /// Version the page had already been upgraded to.
        found: u64,
    },
    /// Transaction aborted to break a lock deadlock or after a lock wait
    /// timeout. Retryable.
    Deadlock(TxnId),
    /// Transaction was aborted by reconfiguration (node failure while the
    /// transaction was in flight). Retryable.
    NodeFailed(NodeId),
    /// The target node is not part of the current topology.
    NoSuchNode(NodeId),
    /// No replica is currently able to serve the request.
    NoReplicaAvailable,
    /// Schema-level error (unknown table/column, arity mismatch, ...).
    Schema(String),
    /// Query execution error (type mismatch, missing index, ...).
    Query(String),
    /// A row or key was not found where one was required.
    NotFound(String),
    /// Unique-key violation on insert.
    DuplicateKey(String),
    /// Page-level storage error (page full beyond repair, bad slot, ...).
    Storage(String),
    /// Transaction used after commit/abort, or protocol misuse.
    InvalidTxnState(String),
    /// Network-level failure (endpoint closed, timeout).
    Network(String),
    /// Wire-format decode failure (truncated frame, bad checksum,
    /// unknown tag or protocol version). Never retryable: the peer sent
    /// bytes this build cannot interpret.
    Codec(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl DmvError {
    /// True if the client should retry the whole transaction.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DmvError::VersionConflict { .. } | DmvError::Deadlock(_) | DmvError::NodeFailed(_)
        )
    }
}

impl fmt::Display for DmvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmvError::VersionConflict { page, wanted, found } => {
                write!(f, "version conflict on {page}: wanted <= {wanted}, page at {found}")
            }
            DmvError::Deadlock(t) => write!(f, "transaction {t} aborted to break deadlock"),
            DmvError::NodeFailed(n) => write!(f, "node {n} failed during the transaction"),
            DmvError::NoSuchNode(n) => write!(f, "node {n} is not in the current topology"),
            DmvError::NoReplicaAvailable => write!(f, "no replica available for the request"),
            DmvError::Schema(s) => write!(f, "schema error: {s}"),
            DmvError::Query(s) => write!(f, "query error: {s}"),
            DmvError::NotFound(s) => write!(f, "not found: {s}"),
            DmvError::DuplicateKey(s) => write!(f, "duplicate key: {s}"),
            DmvError::Storage(s) => write!(f, "storage error: {s}"),
            DmvError::InvalidTxnState(s) => write!(f, "invalid transaction state: {s}"),
            DmvError::Network(s) => write!(f, "network error: {s}"),
            DmvError::Codec(s) => write!(f, "codec error: {s}"),
            DmvError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for DmvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;

    #[test]
    fn retryability() {
        let vc =
            DmvError::VersionConflict { page: PageId::heap(TableId(0), 1), wanted: 3, found: 5 };
        assert!(vc.is_retryable());
        assert!(DmvError::Deadlock(TxnId::new(NodeId(0), 1)).is_retryable());
        assert!(DmvError::NodeFailed(NodeId(2)).is_retryable());
        assert!(!DmvError::Schema("x".into()).is_retryable());
        assert!(!DmvError::NotFound("y".into()).is_retryable());
    }

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs: Vec<DmvError> = vec![
            DmvError::NoReplicaAvailable,
            DmvError::Schema("no such table".into()),
            DmvError::Network("endpoint closed".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object() {
        fn take(_: Box<dyn std::error::Error + Send + Sync>) {}
        take(Box::new(DmvError::NoReplicaAvailable));
    }
}
