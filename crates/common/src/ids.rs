//! Strongly-typed identifiers used throughout the workspace.
//!
//! Newtypes (per C-NEWTYPE) keep node ids, table ids, page ids and
//! transaction ids statically distinct: a [`PageId`] can never be confused
//! with a [`TxnId`] at a call site.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cluster node (scheduler, master, slave, spare backup or
/// on-disk backend).
///
/// ```
/// use dmv_common::ids::NodeId;
/// let n = NodeId(3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a table within a database schema.
///
/// The replication protocol maintains one version-vector entry per table,
/// indexed by `TableId`, mirroring the paper's `DBVersion` vector that has
/// "a single integer entry for each table of the application".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u16);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Which page space within a table a page belongs to.
///
/// Heap pages store row data; index pages store B+Tree nodes. Both are
/// replicated identically (the paper replicates "physical memory
/// modifications performed by the storage manager", which covers index
/// structures as well as row storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PageSpace {
    /// Slotted row-storage pages.
    Heap,
    /// B+Tree node pages of the `n`-th index of the table.
    Index(u8),
}

impl fmt::Display for PageSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSpace::Heap => write!(f, "heap"),
            PageSpace::Index(i) => write!(f, "idx{i}"),
        }
    }
}

/// Globally unique identifier of a page: (table, space, page number).
///
/// The page is the unit of both concurrency control and replication in
/// Dynamic Multiversioning, so `PageId` is the key of the pending-update
/// queues on slave replicas and of the page-version maps used during data
/// migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId {
    /// Owning table.
    pub table: TableId,
    /// Heap or index space within the table.
    pub space: PageSpace,
    /// Page number within the space (dense, starting at 0).
    pub page_no: u32,
}

impl PageId {
    /// Convenience constructor for a heap page.
    pub fn heap(table: TableId, page_no: u32) -> Self {
        PageId { table, space: PageSpace::Heap, page_no }
    }

    /// Convenience constructor for an index page.
    pub fn index(table: TableId, index_no: u8, page_no: u32) -> Self {
        PageId { table, space: PageSpace::Index(index_no), page_no }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/p{}", self.table, self.space, self.page_no)
    }
}

/// Identifier of a transaction, unique per originating node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId {
    /// Node that started the transaction.
    pub node: NodeId,
    /// Sequence number local to that node.
    pub seq: u64,
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(node: NodeId, seq: u64) -> Self {
        TxnId { node, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.node, self.seq)
    }
}

/// Row locator within a table's heap: page number and slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId {
    /// Heap page number.
    pub page_no: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl RowId {
    /// Creates a row id from a heap page number and slot.
    pub fn new(page_no: u32, slot: u16) -> Self {
        RowId { page_no, slot }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}:{}", self.page_no, self.slot)
    }
}

/// Role a database node currently plays in the in-memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicaRole {
    /// Executes update transactions for one or more conflict classes and
    /// determines the serialization order.
    Master,
    /// Executes read-only transactions under version tags.
    Slave,
    /// Receives the replication stream but serves no (or almost no) reads;
    /// kept for fail-over.
    SpareBackup,
    /// Not currently part of the computation (failed or recovering).
    Offline,
}

impl fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplicaRole::Master => "master",
            ReplicaRole::Slave => "slave",
            ReplicaRole::SpareBackup => "spare",
            ReplicaRole::Offline => "offline",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn page_id_display_and_ordering() {
        let a = PageId::heap(TableId(1), 0);
        let b = PageId::heap(TableId(1), 1);
        let c = PageId::index(TableId(1), 0, 0);
        assert!(a < b);
        assert_ne!(a, c);
        assert_eq!(format!("{a}"), "t1/heap/p0");
        assert_eq!(format!("{c}"), "t1/idx0/p0");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for t in 0..4u16 {
            for p in 0..4u32 {
                set.insert(PageId::heap(TableId(t), p));
                set.insert(PageId::index(TableId(t), 0, p));
                set.insert(PageId::index(TableId(t), 1, p));
            }
        }
        assert_eq!(set.len(), 48);
    }

    #[test]
    fn txn_id_uniqueness_per_node() {
        let a = TxnId::new(NodeId(1), 7);
        let b = TxnId::new(NodeId(2), 7);
        assert_ne!(a, b);
        assert_eq!(format!("{a}"), "n1#7");
    }

    #[test]
    fn row_id_roundtrip() {
        let r = RowId::new(3, 12);
        assert_eq!(r.page_no, 3);
        assert_eq!(r.slot, 12);
        assert_eq!(format!("{r}"), "r3:12");
    }

    #[test]
    fn replica_role_display() {
        assert_eq!(ReplicaRole::Master.to_string(), "master");
        assert_eq!(ReplicaRole::SpareBackup.to_string(), "spare");
    }
}
