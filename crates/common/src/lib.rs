//! # dmv-common
//!
//! Shared foundation for the Dynamic Multiversioning (DMV) reproduction:
//! node/table/page/transaction identifiers, the per-table database
//! **version vector** that drives the replication protocol, the global
//! **time scale** that maps paper-time latencies onto compressed wall-clock
//! time, error types, statistics (histograms, throughput time series) and
//! cluster configuration.
//!
//! Everything in this crate is deliberately free of any database or
//! networking logic so that every other crate in the workspace can depend
//! on it without cycles.
//!
//! ```
//! use dmv_common::version::VersionVector;
//! use dmv_common::ids::TableId;
//!
//! let mut v = VersionVector::new(3);
//! v.bump(TableId(0));
//! assert_eq!(v.get(TableId(0)), 1);
//! assert_eq!(v.get(TableId(2)), 0);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod clock;
pub mod config;
pub mod error;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod throttle;
pub mod version;
pub mod wire;

pub use clock::{SimClock, TimeScale};
pub use error::{DmvError, DmvResult};
pub use ids::{NodeId, PageId, PageSpace, TableId, TxnId};
pub use version::VersionVector;
