//! Deterministic random-number helpers.
//!
//! All randomized components in the workspace (workload generation,
//! population, load balancing tie-breaks) draw from seeded generators so
//! experiments are reproducible run to run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic generator from a 64-bit seed.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives an independent stream from a base seed and a stream index,
/// so each client/node thread gets its own deterministic sequence.
pub fn derive(seed: u64, stream: u64) -> SmallRng {
    // SplitMix64-style mix keeps streams well separated.
    let mut z = seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

/// Random ASCII alphanumeric string of length in `[min_len, max_len]`.
pub fn alnum_string<R: Rng>(rng: &mut R, min_len: usize, max_len: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    let len = rng.gen_range(min_len..=max_len);
    (0..len).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
}

/// Jittered exponential backoff sleep for transaction retries (breaks
/// deadlock-retry livelock storms). Wall-clock; capped at 16× the base.
pub fn retry_backoff(attempt: usize) {
    use rand::Rng as _;
    let base_us = 500u64;
    let factor = 1u64 << attempt.min(4);
    let max = base_us * factor;
    let us = rand::thread_rng().gen_range(0..=max);
    if us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
}

/// Sample from a (truncated) negative exponential distribution with the
/// given mean — the TPC-W think-time distribution. The result is clamped
/// to `7 * mean` as the TPC-W specification requires.
pub fn neg_exp<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-mean * u.ln()).min(7.0 * mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = derive(42, 0);
        let mut b = derive(42, 1);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn alnum_string_length_bounds() {
        let mut r = seeded(1);
        for _ in 0..100 {
            let s = alnum_string(&mut r, 3, 10);
            assert!((3..=10).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn neg_exp_mean_and_clamp() {
        let mut r = seeded(7);
        let mean = 2.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| neg_exp(&mut r, mean)).collect();
        let avg = samples.iter().sum::<f64>() / n as f64;
        assert!((avg - mean).abs() < 0.1, "mean was {avg}");
        assert!(samples.iter().all(|&s| s <= 7.0 * mean + 1e-9));
        assert!(samples.iter().all(|&s| s >= 0.0));
    }
}
