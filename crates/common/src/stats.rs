//! Measurement utilities: atomic counters, a log-bucketed latency
//! histogram, and a windowed throughput series recorder.
//!
//! All types are thread-safe and lock-free on the hot path, so client
//! emulator threads can record into shared instances without perturbing
//! the measured system.

use dmv_check::sync::atomic::{AtomicU64, Ordering};
use dmv_check::sync::Mutex;
use std::time::Duration;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one; returns the previous value.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }

    /// Resets to zero, returning the old value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed) // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }
}

/// Number of logarithmic buckets in [`LatencyHistogram`]; covers 1 µs to
/// ~1.2 h of paper time with ~9 % relative resolution.
const HIST_BUCKETS: usize = 256;

/// Thread-safe log-bucketed histogram of durations.
///
/// Buckets grow geometrically from 1 µs, giving bounded relative error on
/// percentile queries without per-record allocation.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    const GROWTH: f64 = 1.09;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    fn bucket_of(micros: u64) -> usize {
        if micros <= 1 {
            return 0;
        }
        let idx = (micros as f64).ln() / Self::GROWTH.ln();
        (idx as usize).min(HIST_BUCKETS - 1)
    }

    fn bucket_upper(idx: usize) -> u64 {
        Self::GROWTH.powi(idx as i32 + 1) as u64
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros() as u64;
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
        self.sum_micros.fetch_add(us, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
        self.max_micros.fetch_max(us, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }

    /// Mean of recorded samples, or zero if empty.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / n) // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }

    /// Maximum recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.load(Ordering::Relaxed)) // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }

    /// Approximate `p`-th percentile (`0.0..=1.0`), or zero if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Duration {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let target = ((n as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
            if seen >= target {
                return Duration::from_micros(Self::bucket_upper(i));
            }
        }
        self.max()
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
        }
        self.count.store(0, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
        self.sum_micros.store(0, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
        self.max_micros.store(0, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }
}

/// One point of a throughput time series: events in `[start, start+width)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Window start, in paper time since the experiment epoch.
    pub start: Duration,
    /// Window width.
    pub width: Duration,
    /// Events recorded in the window.
    pub events: u64,
    /// Mean latency of events in the window (paper time).
    pub mean_latency: Duration,
}

impl SeriesPoint {
    /// Event rate over the window, per paper second.
    pub fn rate(&self) -> f64 {
        self.events as f64 / self.width.as_secs_f64()
    }
}

/// Windowed throughput/latency series, keyed by paper time.
///
/// Used by the fail-over experiments to report throughput "averaged over
/// 20 second intervals" as the paper does.
#[derive(Debug)]
pub struct ThroughputSeries {
    width: Duration,
    counts: Vec<AtomicU64>,
    lat_sums: Vec<AtomicU64>,
    overflow: AtomicU64,
}

impl ThroughputSeries {
    /// Creates a series covering `[0, horizon)` of paper time with windows
    /// of `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `horizon < width`.
    pub fn new(horizon: Duration, width: Duration) -> Self {
        assert!(!width.is_zero(), "window width must be positive");
        assert!(horizon >= width, "horizon must cover at least one window");
        let n = horizon.as_nanos().div_ceil(width.as_nanos()) as usize;
        ThroughputSeries {
            width,
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            lat_sums: (0..n).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
        }
    }

    /// Records an event completed at paper time `at` with latency `lat`.
    /// Events past the horizon are counted in an overflow bucket.
    pub fn record(&self, at: Duration, lat: Duration) {
        let idx = (at.as_nanos() / self.width.as_nanos()) as usize;
        if idx < self.counts.len() {
            self.counts[idx].fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
                                                              // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
            self.lat_sums[idx].fetch_add(lat.as_micros() as u64, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
        }
    }

    /// Events recorded past the horizon.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed) // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
    }

    /// Snapshot of all windows.
    pub fn points(&self) -> Vec<SeriesPoint> {
        self.counts
            .iter()
            .zip(&self.lat_sums)
            .enumerate()
            .map(|(i, (c, l))| {
                let events = c.load(Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
                let sum = l.load(Ordering::Relaxed); // relaxed-ok: independent stats cell; readers tolerate torn cross-cell views
                SeriesPoint {
                    start: self.width * i as u32,
                    width: self.width,
                    events,
                    mean_latency: Duration::from_micros(sum.checked_div(events).unwrap_or(0)),
                }
            })
            .collect()
    }
}

/// Aggregate transaction outcome counters for one experiment run.
#[derive(Debug, Default)]
pub struct TxnStats {
    /// Committed transactions.
    pub commits: Counter,
    /// Aborts due to version inconsistency (the paper's < 2.5 % metric).
    pub version_aborts: Counter,
    /// Aborts due to deadlock / lock timeouts.
    pub deadlock_aborts: Counter,
    /// Aborts due to node failure during execution.
    pub failure_aborts: Counter,
    /// Read-only transactions executed.
    pub reads: Counter,
    /// Update transactions executed.
    pub updates: Counter,
}

impl TxnStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total attempted transactions (commits + all aborts).
    pub fn attempts(&self) -> u64 {
        self.commits.get()
            + self.version_aborts.get()
            + self.deadlock_aborts.get()
            + self.failure_aborts.get()
    }

    /// Fraction of attempts aborted for version inconsistency.
    pub fn version_abort_rate(&self) -> f64 {
        let a = self.attempts();
        if a == 0 {
            0.0
        } else {
            self.version_aborts.get() as f64 / a as f64
        }
    }
}

/// Record of one run's summary, for printing experiment tables.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Human-readable configuration label, e.g. "shopping/4 slaves".
    pub label: String,
    /// Peak or average throughput, in interactions per paper second.
    pub throughput: f64,
    /// Mean latency in paper time.
    pub mean_latency: Duration,
    /// 90th percentile latency in paper time.
    pub p90_latency: Duration,
    /// Version-conflict abort rate.
    pub version_abort_rate: f64,
}

/// Guarded collection of [`RunSummary`] rows built up by an experiment.
#[derive(Debug, Default)]
pub struct SummaryTable {
    rows: Mutex<Vec<RunSummary>>,
}

impl SummaryTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&self, row: RunSummary) {
        self.rows.lock().push(row);
    }

    /// Snapshot of all rows.
    pub fn rows(&self) -> Vec<RunSummary> {
        self.rows.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.inc(), 0);
        c.add(5);
        assert_eq!(c.get(), 6);
        assert_eq!(c.reset(), 6);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_percentiles_ordered() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i * 10));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50:?} {p90:?} {p99:?}");
        // p50 of uniform 10..10000us should be near 5000us (within bucket error)
        let p50us = p50.as_micros() as f64;
        assert!((4000.0..6500.0).contains(&p50us), "p50 {p50us}");
    }

    #[test]
    fn histogram_mean_and_max() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        assert_eq!(h.mean(), Duration::from_micros(200));
        assert_eq!(h.max(), Duration::from_micros(300));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), Duration::ZERO);
    }

    #[test]
    #[should_panic]
    fn percentile_out_of_range_panics() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn series_windows() {
        let s = ThroughputSeries::new(Duration::from_secs(10), Duration::from_secs(2));
        s.record(Duration::from_millis(100), Duration::from_millis(5));
        s.record(Duration::from_millis(1900), Duration::from_millis(15));
        s.record(Duration::from_secs(5), Duration::from_millis(10));
        s.record(Duration::from_secs(11), Duration::from_millis(10)); // overflow
        let pts = s.points();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].events, 2);
        assert_eq!(pts[0].mean_latency, Duration::from_millis(10));
        assert_eq!(pts[2].events, 1);
        assert_eq!(pts[0].rate(), 1.0);
        assert_eq!(s.overflow(), 1);
    }

    #[test]
    #[should_panic]
    fn series_zero_width_panics() {
        let _ = ThroughputSeries::new(Duration::from_secs(1), Duration::ZERO);
    }

    #[test]
    fn txn_stats_abort_rate() {
        let t = TxnStats::new();
        for _ in 0..97 {
            t.commits.inc();
        }
        for _ in 0..3 {
            t.version_aborts.inc();
        }
        assert_eq!(t.attempts(), 100);
        assert!((t.version_abort_rate() - 0.03).abs() < 1e-9);
    }

    #[test]
    fn summary_table_collects() {
        let t = SummaryTable::new();
        t.push(RunSummary {
            label: "x".into(),
            throughput: 1.0,
            mean_latency: Duration::ZERO,
            p90_latency: Duration::ZERO,
            version_abort_rate: 0.0,
        });
        assert_eq!(t.rows().len(), 1);
    }
}
