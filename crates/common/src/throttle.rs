//! Capacity-limited cost charging.
//!
//! Modeled costs (disk accesses, per-query CPU) must not simply sleep:
//! concurrent sleepers would give a node unbounded capacity, erasing the
//! saturation effects the paper's scaling curves depend on (a single
//! disk arm serves one seek at a time; a dual-CPU node runs two query
//! threads at a time). A [`Throttle`] holds a fixed number of permits;
//! charging acquires a permit for the scaled duration, so concurrent
//! charges queue exactly like requests at a saturated resource.

use crate::clock::SimClock;
// Shimmed lock/condvar: parking_lot in normal builds, model-checked
// under `--cfg dmv_check` (see crates/check).
use dmv_check::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

struct Inner {
    permits: Mutex<usize>,
    cv: Condvar,
    clock: SimClock,
}

/// A semaphore-guarded cost charger. Cheap to clone (shared permits).
#[derive(Clone)]
pub struct Throttle {
    inner: Arc<Inner>,
}

impl Throttle {
    /// Creates a throttle with `permits` concurrent service slots.
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero.
    pub fn new(clock: SimClock, permits: usize) -> Self {
        assert!(permits > 0, "a resource needs at least one service slot");
        Throttle {
            inner: Arc::new(Inner { permits: Mutex::new(permits), cv: Condvar::new(), clock }),
        }
    }

    /// Charges `paper` of service time: waits for a permit, holds it for
    /// the scaled duration, releases it. Zero charges return immediately.
    pub fn charge(&self, paper: Duration) {
        if paper.is_zero() {
            return;
        }
        {
            let mut permits = self.inner.permits.lock();
            while *permits == 0 {
                self.inner.cv.wait(&mut permits);
            }
            *permits -= 1;
        }
        // Always sleep (never spin): the harness may run on a host with
        // very few cores, where spinning starves the threads being
        // simulated. Charges are batched per statement upstream, so the
        // OS timer granularity (~0.1 ms) is amortized.
        self.inner.clock.sleep_paper(paper);
        {
            let mut permits = self.inner.permits.lock();
            *permits += 1;
        }
        self.inner.cv.notify_one();
    }

    /// The throttle's clock.
    pub fn clock(&self) -> SimClock {
        self.inner.clock
    }
}

impl std::fmt::Debug for Throttle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Throttle").field("permits", &*self.inner.permits.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimeScale;
    use std::time::Instant;

    #[test]
    fn zero_charge_is_free() {
        let t = Throttle::new(SimClock::default(), 1);
        let t0 = Instant::now();
        t.charge(Duration::ZERO);
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn single_permit_serializes() {
        // 4 threads × 4 paper-seconds on one permit at 1 paper-s = 2 wall-ms
        // must take ≥ 4*4*2 = 32 wall-ms; with unlimited concurrency it
        // would take ~8 ms.
        let clock = SimClock::new(TimeScale::new(0.002));
        let t = Throttle::new(clock, 1);
        let t0 = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                dmv_check::thread::spawn(move || t.charge(Duration::from_secs(4)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(30), "elapsed {:?}", t0.elapsed());
    }

    #[test]
    fn more_permits_increase_parallelism() {
        let clock = SimClock::new(TimeScale::new(0.002));
        let t = Throttle::new(clock, 4);
        let t0 = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                dmv_check::thread::spawn(move || t.charge(Duration::from_secs(4)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All four run in parallel: ~8 ms, allow generous slack.
        assert!(t0.elapsed() < Duration::from_millis(25), "elapsed {:?}", t0.elapsed());
    }

    #[test]
    #[should_panic]
    fn zero_permits_rejected() {
        let _ = Throttle::new(SimClock::default(), 0);
    }
}
