//! The database version vector (`DBVersion` in the paper).
//!
//! Each committed update transaction on a master produces a new database
//! state, represented by a vector with one integer entry per table. The
//! scheduler merges the vectors reported by the (possibly multiple) masters
//! and tags every read-only transaction with the most recent merged vector;
//! slaves then materialize exactly that state, lazily, page by page.

use crate::ids::TableId;
// Shimmed atomics: plain std atomics in normal builds, model-checked
// under `--cfg dmv_check` (see crates/check).
use dmv_check::sync::atomic::{AtomicU64, Ordering};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single table's version component.
pub type TableVersion = u64;

/// Per-table version vector describing a consistent database state.
///
/// `VersionVector` is a small, cloneable value type; ordering between
/// vectors is the usual component-wise partial order.
///
/// ```
/// use dmv_common::version::VersionVector;
/// use dmv_common::ids::TableId;
///
/// let mut a = VersionVector::new(2);
/// let mut b = VersionVector::new(2);
/// a.bump(TableId(0));
/// b.bump(TableId(1));
/// let m = a.merged(&b);
/// assert!(m.dominates(&a) && m.dominates(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VersionVector {
    entries: Vec<TableVersion>,
}

impl VersionVector {
    /// Creates a zero vector for `n_tables` tables.
    pub fn new(n_tables: usize) -> Self {
        VersionVector { entries: vec![0; n_tables] }
    }

    /// Creates a vector from explicit entries.
    pub fn from_entries(entries: Vec<TableVersion>) -> Self {
        VersionVector { entries }
    }

    /// Number of tables covered by this vector.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector covers no tables.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Version component for `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range for this vector.
    pub fn get(&self, table: TableId) -> TableVersion {
        self.entries[table.0 as usize]
    }

    /// Sets the component for `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range for this vector.
    pub fn set(&mut self, table: TableId, v: TableVersion) {
        self.entries[table.0 as usize] = v;
    }

    /// Increments the component for `table` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range for this vector.
    pub fn bump(&mut self, table: TableId) -> TableVersion {
        let e = &mut self.entries[table.0 as usize];
        *e += 1;
        *e
    }

    /// Component-wise maximum with `other`, in place.
    ///
    /// This is the scheduler's merge of version vectors reported by
    /// different conflict-class masters.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn merge(&mut self, other: &VersionVector) {
        assert_eq!(self.entries.len(), other.entries.len(), "version vector length mismatch");
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Returns the component-wise maximum of `self` and `other`.
    pub fn merged(&self, other: &VersionVector) -> VersionVector {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// True if every component of `self` is `>=` the matching component of
    /// `other`.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().zip(&other.entries).all(|(a, b)| a >= b)
    }

    /// True if `self` dominates `other` and differs in at least one entry.
    pub fn strictly_dominates(&self, other: &VersionVector) -> bool {
        self.dominates(other) && self.entries != other.entries
    }

    /// Iterator over `(TableId, version)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, TableVersion)> + '_ {
        self.entries.iter().enumerate().map(|(i, v)| (TableId(i as u16), *v))
    }

    /// Raw entries, table-indexed.
    pub fn entries(&self) -> &[TableVersion] {
        &self.entries
    }

    /// Sum of all components; handy as a cheap monotone progress measure.
    pub fn total(&self) -> u64 {
        self.entries.iter().sum()
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V[")?;
        for (i, v) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// A version vector whose entries advance by lock-free atomic maximum —
/// the hot-path form of [`VersionVector`] for state that many threads
/// read (schedulers routing reads, appliers gating page access) while
/// one or more writers advance it.
///
/// Entries advance independently, but [`snapshot`] is still
/// linearizable: it double-collects until two consecutive scans agree,
/// which (entries being monotone under [`merge`]/`set_max`) pins the
/// exact state at the instant between the scans. This matters for
/// read-tagging — a torn mixture like `[0,1]` between commits `[1,0]`
/// and `[1,1]` is a vector no commit produced, and a reader tagged
/// with it aborts on any page legitimately applied ahead of the torn
/// component. Clamping ([`clamp`]) breaks monotonicity and is only
/// used during reconfiguration, when broadcasts are quiesced.
///
/// [`snapshot`]: AtomicVersionVector::snapshot
/// [`merge`]: AtomicVersionVector::merge
/// [`clamp`]: AtomicVersionVector::clamp
#[derive(Debug)]
pub struct AtomicVersionVector {
    entries: Box<[AtomicU64]>,
}

impl AtomicVersionVector {
    /// All-zero vector for `n_tables` tables.
    pub fn new(n_tables: usize) -> Self {
        AtomicVersionVector { entries: (0..n_tables).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Atomic copy of a plain vector.
    pub fn from_vector(v: &VersionVector) -> Self {
        AtomicVersionVector { entries: v.entries().iter().map(|e| AtomicU64::new(*e)).collect() }
    }

    /// Number of tables covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector covers no tables.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current version of one table.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn get(&self, table: TableId) -> TableVersion {
        self.entries[table.0 as usize].load(Ordering::SeqCst)
    }

    /// Raises one table's entry to at least `v`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn set_max(&self, table: TableId, v: TableVersion) {
        self.entries[table.0 as usize].fetch_max(v, Ordering::SeqCst);
    }

    /// Component-wise atomic maximum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn merge(&self, other: &VersionVector) {
        assert_eq!(self.entries.len(), other.len(), "version vector length mismatch");
        for (a, b) in self.entries.iter().zip(other.entries()) {
            a.fetch_max(*b, Ordering::SeqCst);
        }
    }

    /// Component-wise atomic minimum with `other` — the post-failure
    /// clamp discarding versions a failed master never confirmed.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn clamp(&self, other: &VersionVector) {
        assert_eq!(self.entries.len(), other.len(), "version vector length mismatch");
        for (a, b) in self.entries.iter().zip(other.entries()) {
            a.fetch_min(*b, Ordering::SeqCst);
        }
    }

    /// True if every current component is `>=` the matching component of
    /// `other`.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        self.entries.len() == other.len()
            && self.entries.iter().zip(other.entries()).all(|(a, b)| a.load(Ordering::SeqCst) >= *b)
    }

    /// Linearizable plain-vector copy of the current state.
    ///
    /// Collects all entries twice and retries until both scans agree.
    /// Entries only grow (outside quiesced reconfiguration), so equal
    /// scans mean every component held its value from its first read to
    /// its second — i.e. the returned vector is the complete state at
    /// the instant between the scans, never a torn mixture. Commits are
    /// orders of magnitude rarer than a scan, so retries are rare.
    pub fn snapshot(&self) -> VersionVector {
        let collect =
            || -> Vec<u64> { self.entries.iter().map(|e| e.load(Ordering::SeqCst)).collect() };
        let mut a = collect();
        loop {
            let b = collect();
            if a == b {
                return VersionVector::from_entries(a);
            }
            a = b;
        }
    }

    /// Sum of all components (cheap monotone progress measure).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.load(Ordering::SeqCst)).sum()
    }
}

impl fmt::Display for AtomicVersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.snapshot(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(e: &[u64]) -> VersionVector {
        VersionVector::from_entries(e.to_vec())
    }

    #[test]
    fn new_is_zero() {
        let v = VersionVector::new(4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.total(), 0);
        assert!(v.iter().all(|(_, x)| x == 0));
    }

    #[test]
    fn bump_is_monotone_per_table() {
        let mut v = VersionVector::new(2);
        assert_eq!(v.bump(TableId(1)), 1);
        assert_eq!(v.bump(TableId(1)), 2);
        assert_eq!(v.get(TableId(0)), 0);
        assert_eq!(v.get(TableId(1)), 2);
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = vv(&[3, 1, 0]);
        let b = vv(&[2, 5, 0]);
        a.merge(&b);
        assert_eq!(a, vv(&[3, 5, 0]));
    }

    #[test]
    fn dominance_partial_order() {
        let a = vv(&[2, 2]);
        let b = vv(&[1, 3]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        let m = a.merged(&b);
        assert!(m.dominates(&a) && m.dominates(&b));
        assert!(m.strictly_dominates(&a));
        assert!(a.dominates(&a) && !a.strictly_dominates(&a));
    }

    #[test]
    fn dominates_requires_equal_length() {
        let a = vv(&[1, 2]);
        let b = vv(&[1]);
        assert!(!a.dominates(&b));
    }

    #[test]
    fn display_format() {
        assert_eq!(vv(&[1, 0, 7]).to_string(), "V[1,0,7]");
    }

    #[test]
    #[should_panic]
    fn merge_length_mismatch_panics() {
        let mut a = vv(&[1]);
        a.merge(&vv(&[1, 2]));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_vv(n: usize) -> impl Strategy<Value = VersionVector> {
        proptest::collection::vec(0u64..1000, n).prop_map(VersionVector::from_entries)
    }

    proptest! {
        #[test]
        fn merge_commutative(a in arb_vv(5), b in arb_vv(5)) {
            prop_assert_eq!(a.merged(&b), b.merged(&a));
        }

        #[test]
        fn merge_associative(a in arb_vv(4), b in arb_vv(4), c in arb_vv(4)) {
            prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        }

        #[test]
        fn merge_idempotent(a in arb_vv(6)) {
            prop_assert_eq!(a.merged(&a), a);
        }

        #[test]
        fn merge_is_least_upper_bound(a in arb_vv(5), b in arb_vv(5)) {
            let m = a.merged(&b);
            prop_assert!(m.dominates(&a));
            prop_assert!(m.dominates(&b));
            // least: any other upper bound dominates m
            let mut ub = a.clone();
            ub.merge(&b);
            prop_assert!(ub.dominates(&m) && m.dominates(&ub));
        }

        #[test]
        fn bump_strictly_dominates(mut a in arb_vv(5), t in 0u16..5) {
            let before = a.clone();
            a.bump(TableId(t));
            prop_assert!(a.strictly_dominates(&before));
        }

        #[test]
        fn atomic_merge_matches_plain_merge(a in arb_vv(5), b in arb_vv(5)) {
            let av = AtomicVersionVector::from_vector(&a);
            av.merge(&b);
            prop_assert_eq!(av.snapshot(), a.merged(&b));
            prop_assert!(av.dominates(&a) && av.dominates(&b));
        }

        #[test]
        fn atomic_clamp_is_componentwise_min(a in arb_vv(5), b in arb_vv(5)) {
            let av = AtomicVersionVector::from_vector(&a);
            av.clamp(&b);
            let want: Vec<u64> = a
                .entries()
                .iter()
                .zip(b.entries())
                .map(|(x, y)| (*x).min(*y))
                .collect();
            prop_assert_eq!(av.snapshot(), VersionVector::from_entries(want));
        }
    }

    #[test]
    fn atomic_concurrent_merges_reach_upper_bound() {
        use std::sync::Arc;
        let av = Arc::new(AtomicVersionVector::new(4));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let av = Arc::clone(&av);
                dmv_check::thread::spawn(move || {
                    for v in 1..=100u64 {
                        let mut w = VersionVector::new(4);
                        w.set(TableId((t % 4) as u16), v);
                        av.merge(&w);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(av.snapshot(), VersionVector::from_entries(vec![100; 4]));
    }

    #[test]
    fn atomic_set_max_never_regresses() {
        let av = AtomicVersionVector::new(2);
        av.set_max(TableId(0), 5);
        av.set_max(TableId(0), 3);
        assert_eq!(av.get(TableId(0)), 5);
        assert_eq!(av.total(), 5);
    }

    /// A writer merges the totally-ordered chain `[i, i]`; every
    /// concurrent snapshot must be an instantaneous state of that
    /// history: `[i, i]`, or `[i, i-1]` while the writer sits between
    /// the two `fetch_max`es of one merge (entry 0 advances first).
    /// A *torn* snapshot inverts the order (`s0 < s1`) or mixes states
    /// more than one merge apart — the naive single-collect snapshot
    /// produced both. (Mirrors `snapshot_is_linearizable_under_chain_
    /// merge` in crates/check, which explores the interleavings
    /// exhaustively; this is the full-speed stress version.)
    #[test]
    fn atomic_snapshot_is_never_torn() {
        use std::sync::Arc;
        let av = Arc::new(AtomicVersionVector::new(2));
        let writer = {
            let av = Arc::clone(&av);
            dmv_check::thread::spawn(move || {
                for i in 1..=50_000u64 {
                    av.merge(&VersionVector::from_entries(vec![i, i]));
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let av = Arc::clone(&av);
                dmv_check::thread::spawn(move || {
                    for _ in 0..25_000 {
                        let s = av.snapshot();
                        let (s0, s1) = (s.entries()[0], s.entries()[1]);
                        assert!(s0 >= s1 && s0 - s1 <= 1, "torn snapshot: {s}");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
