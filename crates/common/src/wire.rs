//! Versioned little-endian wire codec primitives.
//!
//! Every value that crosses a real network boundary implements [`Wire`]:
//! an explicit, dependency-free encoding with an **exact** size
//! ([`Wire::encoded_len`]), so the simulated network's serialization-cost
//! charge and the TCP transport's frames agree byte for byte.
//!
//! The codec is deliberately minimal: all integers are little-endian,
//! all sequences are length-prefixed, and there is no self-description —
//! the protocol version carried by the transport handshake (see
//! `dmv-net`) selects the layout. Decoding is total: malformed input
//! yields [`DmvError::Codec`], never a panic, which keeps the decoder
//! safe against truncated or corrupted frames.

use crate::error::{DmvError, DmvResult};
use crate::ids::{NodeId, PageId, PageSpace, TableId, TxnId};
use crate::version::VersionVector;

/// A value with an explicit wire encoding.
///
/// Invariants (checked by the round-trip proptests in `dmv-core`):
///
/// - `encode(x).len() == x.encoded_len()`
/// - `decode(&mut Reader::new(&encode(x))) == Ok(x)`
pub trait Wire: Sized {
    /// Exact number of bytes [`encode_into`](Wire::encode_into) appends.
    fn encoded_len(&self) -> usize;

    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes one value from the cursor, advancing it.
    fn decode(r: &mut Reader<'_>) -> DmvResult<Self>;

    /// Encodes `self` into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }
}

/// Decodes exactly one value from `bytes`, rejecting trailing garbage.
pub fn decode_exact<T: Wire>(bytes: &[u8]) -> DmvResult<T> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(DmvError::Codec(format!("{} trailing bytes after value", r.remaining())));
    }
    Ok(v)
}

/// Read cursor over an encoded buffer.
///
/// All accessors fail with [`DmvError::Codec`] on exhaustion instead of
/// panicking, so a truncated frame can never take the receiver down.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> DmvResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DmvError::Codec(format!(
                "truncated input: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> DmvResult<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    pub fn u16(&mut self) -> DmvResult<u16> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> DmvResult<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> DmvResult<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a sequence count and guards it against hostile allocation:
    /// a count claiming more elements than the remaining bytes could
    /// possibly hold (at `min_elem_len` bytes each) is rejected before
    /// any `Vec::with_capacity`.
    pub fn seq_len(&mut self, count: usize, min_elem_len: usize) -> DmvResult<usize> {
        if min_elem_len > 0 && count > self.remaining() / min_elem_len {
            return Err(DmvError::Codec(format!(
                "sequence length {count} exceeds remaining input ({} bytes)",
                self.remaining()
            )));
        }
        Ok(count)
    }
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Wire for NodeId {
    fn encoded_len(&self) -> usize {
        4
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.0);
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        Ok(NodeId(r.u32()?))
    }
}

impl Wire for TableId {
    fn encoded_len(&self) -> usize {
        2
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u16(out, self.0);
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        Ok(TableId(r.u16()?))
    }
}

impl Wire for PageSpace {
    fn encoded_len(&self) -> usize {
        2
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            PageSpace::Heap => out.extend_from_slice(&[0, 0]),
            PageSpace::Index(i) => out.extend_from_slice(&[1, *i]),
        }
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        let tag = r.u8()?;
        let idx = r.u8()?;
        match tag {
            0 => Ok(PageSpace::Heap),
            1 => Ok(PageSpace::Index(idx)),
            t => Err(DmvError::Codec(format!("unknown page-space tag {t}"))),
        }
    }
}

impl Wire for PageId {
    fn encoded_len(&self) -> usize {
        8
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.table.encode_into(out);
        self.space.encode_into(out);
        put_u32(out, self.page_no);
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        Ok(PageId { table: TableId::decode(r)?, space: PageSpace::decode(r)?, page_no: r.u32()? })
    }
}

impl Wire for TxnId {
    fn encoded_len(&self) -> usize {
        12
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.node.encode_into(out);
        put_u64(out, self.seq);
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        Ok(TxnId { node: NodeId::decode(r)?, seq: r.u64()? })
    }
}

impl Wire for VersionVector {
    fn encoded_len(&self) -> usize {
        2 + 8 * self.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        // The per-table vector is bounded by the schema's table count; a
        // u16 prefix matches `TableId`'s width.
        put_u16(out, self.len() as u16);
        for e in self.entries() {
            put_u64(out, *e);
        }
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        let count = r.u16()? as usize;
        let n = r.seq_len(count, 8)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(r.u64()?);
        }
        Ok(VersionVector::from_entries(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode();
        assert_eq!(bytes.len(), v.encoded_len(), "encoded_len drift for {v:?}");
        assert_eq!(decode_exact::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(NodeId(0));
        roundtrip(NodeId(u32::MAX));
        roundtrip(TableId(7));
        roundtrip(PageSpace::Heap);
        roundtrip(PageSpace::Index(3));
        roundtrip(PageId::heap(TableId(2), 9));
        roundtrip(PageId::index(TableId(1), 4, u32::MAX));
        roundtrip(TxnId::new(NodeId(5), u64::MAX));
        roundtrip(VersionVector::new(0));
        roundtrip(VersionVector::from_entries(vec![1, 0, u64::MAX]));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let full = PageId::heap(TableId(3), 12).encode();
        for cut in 0..full.len() {
            let err = decode_exact::<PageId>(&full[..cut]).unwrap_err();
            assert!(matches!(err, DmvError::Codec(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = NodeId(1).encode();
        bytes.push(0);
        assert!(matches!(decode_exact::<NodeId>(&bytes), Err(DmvError::Codec(_))));
    }

    #[test]
    fn unknown_page_space_tag_rejected() {
        assert!(matches!(decode_exact::<PageSpace>(&[9, 0]), Err(DmvError::Codec(_))));
    }

    #[test]
    fn hostile_sequence_length_rejected_before_allocation() {
        // Claims u16::MAX entries with no payload behind the count.
        let bytes = u16::MAX.to_le_bytes().to_vec();
        assert!(matches!(decode_exact::<VersionVector>(&bytes), Err(DmvError::Codec(_))));
    }
}
