//! Cumulative-acknowledgement tracking for the master's commit path.
//!
//! Per-txn ack bookkeeping (`HashMap<TxnId, HashSet<NodeId>>` churned
//! on every commit and every ack) is replaced by one monotone
//! [`AtomicU64`] **watermark per peer**: a slave's `CumAck { seq }`
//! means "every write-set with commit sequence ≤ `seq` is received and
//! enqueued", so recording an ack is a single `fetch_max` and a
//! commit's ack-wait is the predicate "all live targets' watermarks ≥
//! my seq" — no allocation, no per-txn state, and a lost or overtaken
//! ack is subsumed by any later one.
//!
//! Waiters park on a single condvar using the same missed-notify-proof
//! protocol as the applier's `wait_received` (waiter registers in
//! `waiters` with SeqCst *before* its final predicate check; a recorder
//! that advances a watermark then observes `waiters > 0` and notifies
//! under `wait_lock`, which the waiter holds from re-check to park).
//!
//! Built on the `dmv_check::sync` shims so the whole path is explored
//! by the model checker under `--cfg dmv_check`
//! (`crates/check/tests/hotpath.rs`).

use dmv_check::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use dmv_check::sync::{Condvar, Mutex, RwLock};
use dmv_common::clock::{wall_now, WallInstant};
use dmv_common::ids::NodeId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-peer cumulative ack watermarks with a single waiter condvar.
pub struct AckTracker {
    /// Highest cumulatively acknowledged commit seq per peer. The map
    /// itself changes only on membership events (subscribe/unsubscribe);
    /// the hot path takes the read lock and bumps an atomic.
    peers: RwLock<HashMap<NodeId, Arc<AtomicU64>>>,
    /// Commit threads blocked in [`AckTracker::wait`]. Recording only
    /// takes `wait_lock` when this is non-zero.
    waiters: AtomicUsize,
    wait_lock: Mutex<()>,
    cv: Condvar,
}

impl AckTracker {
    /// An empty tracker (no peers, no waiters).
    pub fn new() -> Self {
        let t = AckTracker {
            peers: RwLock::new(HashMap::new()),
            waiters: AtomicUsize::new(0),
            wait_lock: Mutex::new(()),
            cv: Condvar::new(),
        };
        dmv_check::race::label(&t.peers, "peers");
        dmv_check::race::label(&t.wait_lock, "wait_lock");
        dmv_check::race::label(&t.cv, "ack.cv");
        t
    }

    /// Records a cumulative ack from `peer`: the watermark advances by
    /// atomic maximum (a reordered or duplicate ack is a no-op) and any
    /// blocked committers are woken to re-evaluate their predicate.
    pub fn record(&self, peer: NodeId, seq: u64) {
        let cell = {
            let peers = self.peers.read();
            match peers.get(&peer) {
                Some(c) => Arc::clone(c),
                None => {
                    drop(peers);
                    Arc::clone(self.peers.write().entry(peer).or_default())
                }
            }
        };
        cell.fetch_max(seq, Ordering::SeqCst);
        self.notify();
    }

    /// The peer's current watermark (0 if never seen).
    pub fn watermark(&self, peer: NodeId) -> u64 {
        self.peers.read().get(&peer).map_or(0, |c| c.load(Ordering::SeqCst))
    }

    /// Whether the peer currently has a watermark entry (removed peers
    /// are gone immediately — commit predicates can test membership).
    pub fn has_peer(&self, peer: NodeId) -> bool {
        self.peers.read().contains_key(&peer)
    }

    /// Initializes (or resets) a joining peer's watermark to `floor`:
    /// everything at or below the master's commit seq at subscribe time
    /// reaches the joiner through data migration, not through acks, so
    /// committers must not wait on the joiner for those seqs.
    pub fn set_floor(&self, peer: NodeId, floor: u64) {
        let cell = Arc::clone(self.peers.write().entry(peer).or_default());
        cell.store(floor, Ordering::SeqCst);
        self.notify();
    }

    /// Drops a departed peer's state and wakes waiters so commits stop
    /// waiting on it immediately (the ack-leak fix: previously a dead
    /// target's missing acks stalled every in-flight commit until its
    /// full ack timeout).
    pub fn remove(&self, peer: NodeId) {
        self.peers.write().remove(&peer);
        self.notify();
    }

    /// Wakes blocked committers to re-evaluate their predicates (used
    /// directly on membership changes that bypass record/remove, e.g.
    /// wholesale target-list replacement).
    pub fn notify(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.wait_lock.lock();
            self.cv.notify_all();
        }
    }

    /// Blocks until `pred()` holds or `deadline` passes; returns whether
    /// the predicate held. The wait re-arms at most every `slice` so
    /// conditions with no notifier of their own (a target silently
    /// dying) are noticed promptly rather than after the full timeout.
    pub fn wait(
        &self,
        deadline: WallInstant,
        slice: Duration,
        mut pred: impl FnMut() -> bool,
    ) -> bool {
        if pred() {
            return true;
        }
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut g = self.wait_lock.lock();
        let ok = loop {
            if pred() {
                break true;
            }
            let now = wall_now();
            if now >= deadline {
                break false;
            }
            let until = deadline.min(now + slice);
            let _ = self.cv.wait_until(&mut g, until);
        };
        drop(g);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        ok
    }
}

impl Default for AckTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AckTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let peers = self.peers.read();
        let mut marks: Vec<(NodeId, u64)> =
            peers.iter().map(|(n, c)| (*n, c.load(Ordering::SeqCst))).collect();
        marks.sort_by_key(|(n, _)| *n);
        f.debug_struct("AckTracker").field("watermarks", &marks).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::clock::wall_deadline;

    #[test]
    fn record_is_monotone() {
        let t = AckTracker::new();
        t.record(NodeId(1), 5);
        t.record(NodeId(1), 3); // late, reordered ack
        assert_eq!(t.watermark(NodeId(1)), 5);
        t.record(NodeId(1), 9);
        assert_eq!(t.watermark(NodeId(1)), 9);
    }

    #[test]
    fn unknown_peer_is_zero() {
        let t = AckTracker::new();
        assert_eq!(t.watermark(NodeId(7)), 0);
    }

    #[test]
    fn floor_resets_even_downward() {
        let t = AckTracker::new();
        t.record(NodeId(1), 50);
        t.set_floor(NodeId(1), 10); // fresh incarnation of the peer
        assert_eq!(t.watermark(NodeId(1)), 10);
    }

    #[test]
    fn wait_returns_once_predicate_holds() {
        let t = Arc::new(AckTracker::new());
        let t2 = Arc::clone(&t);
        let h = dmv_check::thread::spawn(move || {
            t2.wait(wall_deadline(Duration::from_secs(5)), Duration::from_millis(10), || {
                t2.watermark(NodeId(1)) >= 3
            })
        });
        std::thread::sleep(Duration::from_millis(20));
        t.record(NodeId(1), 3);
        assert!(h.join().unwrap()); // unwrap-ok: test thread join
    }

    #[test]
    fn wait_times_out_without_acks() {
        let t = AckTracker::new();
        let ok =
            t.wait(wall_deadline(Duration::from_millis(40)), Duration::from_millis(10), || {
                t.watermark(NodeId(1)) >= 1
            });
        assert!(!ok);
    }

    #[test]
    fn remove_wakes_waiters() {
        let t = Arc::new(AckTracker::new());
        let t2 = Arc::clone(&t);
        let h = dmv_check::thread::spawn(move || {
            // Predicate: no peer entry left to wait on.
            t2.wait(wall_deadline(Duration::from_secs(5)), Duration::from_secs(5), || {
                t2.peers.read().is_empty()
            })
        });
        std::thread::sleep(Duration::from_millis(20));
        t.set_floor(NodeId(1), 0);
        t.remove(NodeId(1));
        assert!(h.join().unwrap()); // unwrap-ok: test thread join
    }
}
