//! Lazy version materialization — the heart of Dynamic Multiversioning.
//!
//! Each slave keeps, per page, a FIFO queue of the byte diffs it has
//! received from the master(s) but not yet applied. When a read-only
//! transaction tagged with version vector `V` first touches a page, the
//! applier applies exactly the queued diffs with version `≤ V[table]`,
//! leaving later diffs queued: "the appropriate version for each
//! individual data item is created dynamically and lazily at that slave
//! replica, when needed by an in-progress read-only transaction".
//!
//! A page that has already been upgraded past `V[table]` (by a reader
//! with a newer tag) cannot be rewound — old versions are not kept — so
//! the transaction aborts with `VersionConflict`; the scheduler keeps
//! such aborts rare by same-version routing.
//!
//! # Hot-path structure
//!
//! The applier sits on both sides of the replication hot path: the
//! receiver thread enqueues every incoming write-set while reader
//! threads concurrently gate page accesses. Three choices keep those
//! sides from serializing each other:
//!
//! * queued entries are `(version, Arc<WriteSet>, index)` — the diff
//!   bytes live once, in the write-set allocation shared with the
//!   network layer, no matter how many pages or replicas are involved;
//! * the page-queue map is split into [`SHARD_COUNT`] independently
//!   locked shards keyed by a page-id hash, so readers materializing
//!   different pages don't contend on one map lock;
//! * the received-version vector is an [`AtomicVersionVector`]: tag
//!   checks are lock-free loads, and the condvar (with its mutex) is
//!   touched only when a reader actually has to wait for in-flight
//!   versions — enqueue skips the lock entirely while no one waits.

use crate::messages::WriteSet;
use crate::trace::{SharedTap, TraceEvent};
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{NodeId, PageId, PageSpace};
use dmv_common::version::{AtomicVersionVector, VersionVector};
use dmv_memdb::ReadGate;
use dmv_pagestore::diff::PageDiff;
use dmv_pagestore::store::{PageCell, PageStore};
// Shimmed primitives: parking_lot/std in normal builds, model-checked
// under `--cfg dmv_check` (see crates/check).
use dmv_check::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use dmv_check::sync::{Condvar, Mutex, RwLock};
use dmv_common::clock::wall_deadline;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Number of independently locked page-queue shards. Power of two so
/// the hash can mask; 64 is comfortably past the core counts this
/// simulation runs on.
const SHARD_COUNT: usize = 64;

/// One queued page modification: the version this diff raises the page
/// to, plus a handle into the shared write-set that carries the bytes.
struct PendingDiff {
    version: u64,
    ws: Arc<WriteSet>,
    idx: usize,
}

impl PendingDiff {
    fn diff(&self) -> &PageDiff {
        &self.ws.pages[self.idx].1
    }

    /// Encoded size of this entry's diff — the unit of pending-byte
    /// accounting (the `Arc<WriteSet>` bytes are shared, so the encoded
    /// diff length is the honest per-entry footprint).
    fn byte_len(&self) -> u64 {
        self.diff().encoded_len() as u64
    }
}

/// A page's pending queue plus its reap flag. `dead` is set (under both
/// the shard-map and queue locks) when the reclaim sweep removes a
/// drained entry from the map: an enqueuer that captured the `Arc`
/// before removal re-checks the flag under the queue lock and
/// re-inserts through the map instead of pushing into a limbo queue no
/// reader can ever find.
#[derive(Default)]
struct PageQueueSlot {
    q: VecDeque<PendingDiff>,
    dead: bool,
}

type PageQueue = Arc<Mutex<PageQueueSlot>>;

/// Fibonacci-hash a page id onto a shard index. All three id
/// components participate so heap/index pages of one table spread out.
fn shard_of(id: PageId) -> usize {
    let space = match id.space {
        PageSpace::Heap => 0u64,
        PageSpace::Index(n) => 1 + n as u64,
    };
    let key = (id.table.0 as u64) << 48 | space << 40 | id.page_no as u64;
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SHARD_COUNT.trailing_zeros())) as usize
}

/// Per-replica pending-update state implementing [`ReadGate`].
pub struct PendingApplier {
    store: Arc<PageStore>,
    queues: [Mutex<HashMap<PageId, PageQueue>>; SHARD_COUNT],
    received: AtomicVersionVector,
    /// Readers blocked on versions still in flight. Enqueue only takes
    /// `wait_lock` when this is non-zero.
    waiters: AtomicUsize,
    wait_lock: Mutex<()>,
    received_cv: Condvar,
    /// Wall-clock bound on waiting for a not-yet-received version.
    wait_timeout: Duration,
    /// Write-sets enqueued (not yet necessarily materialized).
    enqueued_writesets: AtomicU64,
    /// Encoded bytes of all queued (unapplied, undiscarded) diffs —
    /// the replica's pending-memory figure fed to the bounded-memory
    /// oracle and the bench high-water tracking.
    pending_diff_bytes: AtomicU64,
    /// Optional history tap and the node id to attribute events to.
    trace: RwLock<Option<(NodeId, SharedTap)>>,
}

impl PendingApplier {
    /// Creates an applier over `store` covering `n_tables` tables.
    pub fn new(store: Arc<PageStore>, n_tables: usize, wait_timeout: Duration) -> Self {
        let applier = PendingApplier {
            store,
            queues: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            received: AtomicVersionVector::new(n_tables),
            waiters: AtomicUsize::new(0),
            wait_lock: Mutex::new(()),
            received_cv: Condvar::new(),
            wait_timeout,
            enqueued_writesets: AtomicU64::new(0),
            pending_diff_bytes: AtomicU64::new(0),
            trace: RwLock::new(None),
        };
        for shard in &applier.queues {
            dmv_check::race::label(shard, "queues");
        }
        dmv_check::race::label(&applier.wait_lock, "wait_lock");
        dmv_check::race::label(&applier.received_cv, "applier.received_cv");
        applier
    }

    /// Installs a history tap attributing this applier's events to
    /// `node`. Enqueue events fire on the replica's receiver thread.
    pub fn set_trace(&self, node: NodeId, tap: SharedTap) {
        *self.trace.write() = Some((node, tap));
    }

    fn emit(&self, f: impl FnOnce(NodeId) -> TraceEvent) {
        if let Some((node, tap)) = self.trace.read().as_ref() {
            tap.record(f(*node));
        }
    }

    /// Looks up a page's queue without inserting one. The apply path
    /// must use this (not an `entry().or_default()`): every tagged read
    /// consults the queue, and inserting on lookup would grow the shard
    /// maps by one entry per page ever read, with nothing to reap them.
    fn lookup_queue(&self, id: PageId) -> Option<PageQueue> {
        self.queues[shard_of(id)].lock().get(&id).map(Arc::clone)
    }

    /// Slow-path insert used when an enqueuer's captured queue turned
    /// out dead. Holding the shard-map lock while locking the slot
    /// guarantees liveness: the reaper marks a slot dead and removes it
    /// from the map in one map-locked critical section, so any `Arc`
    /// obtained from the map under the map lock is not dead.
    fn push_via_map(&self, id: PageId, diff: PendingDiff) {
        let mut map = self.queues[shard_of(id)].lock();
        let q = Arc::clone(map.entry(id).or_default());
        let mut slot = q.lock();
        debug_assert!(!slot.dead, "a mapped slot cannot be dead under the map lock");
        slot.q.push_back(diff);
    }

    /// Enqueues a received write-set: each page's entry points into the
    /// shared allocation (no diff is copied), and the received-version
    /// vector advances by atomic maximum.
    pub fn enqueue(&self, ws: &Arc<WriteSet>) {
        self.enqueue_batch(std::slice::from_ref(ws));
    }

    /// Enqueues a group-commit batch of write-sets (in `seq` order) with
    /// one pass over the shard locks: entries are bucketed per shard
    /// first, so a shard's map lock is taken once per batch instead of
    /// once per page. The received vector advances to the *last*
    /// write-set's versions — a master stream's vectors are monotone, so
    /// the last one dominates the whole batch.
    pub fn enqueue_batch(&self, sets: &[Arc<WriteSet>]) {
        let Some(last) = sets.last() else { return };
        let mut buckets: [Vec<(PageId, PendingDiff)>; SHARD_COUNT] =
            std::array::from_fn(|_| Vec::new());
        for ws in sets {
            for (idx, (id, _)) in ws.pages.iter().enumerate() {
                // Ensure the page exists so later reads/scans can see it.
                let _ = self.store.get_or_create(*id);
                buckets[shard_of(*id)].push((
                    *id,
                    PendingDiff { version: ws.versions.get(id.table), ws: Arc::clone(ws), idx },
                ));
            }
        }
        let mut queued_bytes = 0u64;
        for (shard, entries) in buckets.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let queues: Vec<PageQueue> = {
                let mut map = self.queues[shard].lock();
                entries.iter().map(|(id, _)| Arc::clone(map.entry(*id).or_default())).collect()
            };
            for (q, (id, diff)) in queues.into_iter().zip(entries) {
                queued_bytes += diff.byte_len();
                let mut slot = q.lock();
                if slot.dead {
                    // A reclaim sweep reaped this slot between our map
                    // pass and this push; re-insert through the map.
                    drop(slot);
                    self.push_via_map(id, diff);
                } else {
                    slot.q.push_back(diff);
                }
            }
        }
        self.pending_diff_bytes.fetch_add(queued_bytes, Ordering::Relaxed); // relaxed-ok: diagnostics gauge
        self.received.merge(&last.versions);
        self.notify_waiters();
        self.enqueued_writesets.fetch_add(sets.len() as u64, Ordering::Relaxed); // relaxed-ok: diagnostics counter; stream order is carried by received + wait_lock
        for ws in sets {
            self.emit(|node| TraceEvent::WriteSetEnqueued {
                node,
                txn: ws.txn,
                versions: ws.versions.clone(),
            });
        }
    }

    /// Wakes blocked readers, taking the wait lock only if any exist.
    /// A waiter increments `waiters` before its final dominance check
    /// (both SeqCst), so an advance it misses is followed by a notify
    /// it cannot miss — the notifier locks `wait_lock`, which the
    /// waiter holds from re-check until it parks on the condvar.
    fn notify_waiters(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.wait_lock.lock();
            self.received_cv.notify_all();
        }
    }

    /// Highest version vector received so far.
    pub fn received(&self) -> VersionVector {
        self.received.snapshot()
    }

    /// Write-sets enqueued so far.
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued_writesets.load(Ordering::Relaxed) // relaxed-ok: diagnostics counter; stream order is carried by received + wait_lock
    }

    /// Blocks until the replication stream has delivered everything up
    /// to `tag`.
    ///
    /// # Errors
    ///
    /// [`DmvError::Network`] if the wait times out (e.g. the master died
    /// mid-broadcast; reconfiguration will retry the transaction).
    pub fn wait_received(&self, tag: &VersionVector) -> DmvResult<()> {
        self.wait_received_for(tag, self.wait_timeout)
    }

    /// [`PendingApplier::wait_received`] with an explicit wall-clock
    /// bound (data migration tolerates longer waits than page reads).
    ///
    /// # Errors
    ///
    /// [`DmvError::Network`] if the wait times out.
    pub fn wait_received_for(&self, tag: &VersionVector, timeout: Duration) -> DmvResult<()> {
        // Lock-free fast path: the stream is usually ahead of readers.
        if self.received.dominates(tag) {
            return Ok(());
        }
        let deadline = wall_deadline(timeout);
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut g = self.wait_lock.lock();
        let result = loop {
            if self.received.dominates(tag) {
                break Ok(());
            }
            if self.received_cv.wait_until(&mut g, deadline).timed_out() {
                break Err(DmvError::Network(format!(
                    "version {tag} not received (have {})",
                    self.received
                )));
            }
        };
        drop(g);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Applies queued diffs of `cell` up to `want` (one table entry).
    fn apply_up_to(&self, id: PageId, cell: &PageCell, want: u64) -> DmvResult<()> {
        let q = self.lookup_queue(id);
        let mut slot = q.as_ref().map(|q| q.lock());
        let mut page = cell.latch.write();
        let mut applied_bytes = 0u64;
        if let Some(slot) = slot.as_mut() {
            while let Some(front) = slot.q.front() {
                if front.version > want {
                    break;
                }
                let entry = slot.q.pop_front().expect("front checked"); // unwrap-ok: front() returned Some under the same queue lock
                applied_bytes += entry.byte_len();
                // Idempotence across migration: a page image received
                // during data migration may already include this diff.
                if entry.version > page.version {
                    entry.diff().apply(page.data_mut());
                    page.version = entry.version;
                }
            }
        }
        if applied_bytes > 0 {
            // relaxed-ok: diagnostics gauge
            self.pending_diff_bytes.fetch_sub(applied_bytes, Ordering::Relaxed);
        }
        if page.version > want {
            return Err(DmvError::VersionConflict { page: id, wanted: want, found: page.version });
        }
        Ok(())
    }

    /// Applies *all* pending diffs of every page (used when promoting a
    /// slave to master, and by a support slave before sending pages to a
    /// joining node). Afterwards each page is at the replica's received
    /// version for its table.
    pub fn apply_all(&self) {
        for shard in &self.queues {
            let ids: Vec<PageId> = shard.lock().keys().copied().collect();
            for id in ids {
                if let Some(cell) = self.store.get(id) {
                    let _ = self.apply_up_to(id, &cell, u64::MAX);
                }
            }
        }
        self.reap_empty();
    }

    /// Eagerly applies every queued diff at or below the reclamation
    /// watermark `wm`, then reaps the queues left empty. This is the
    /// GC half of epoch-based reclamation: the epoch manager guarantees
    /// `wm` is dominated by every pinned reader tag, so applying up to
    /// it can never rob a pinned reader of a version it still needs —
    /// a reader ahead of `wm` materializes later diffs on demand, and a
    /// page already *past* `wm` (upgraded by a newer-tagged read) is
    /// left alone, exactly as [`ReadGate::prepare_read`] would find it.
    ///
    /// Returns the number of page-queue map entries reaped.
    pub fn reclaim_up_to(&self, wm: &VersionVector) -> usize {
        for shard in &self.queues {
            let ids: Vec<PageId> = shard.lock().keys().copied().collect();
            for id in ids {
                if let Some(cell) = self.store.get(id) {
                    // VersionConflict just means the page is already
                    // ahead of the watermark; the queue was still
                    // drained up to `wm`, which is all GC needs.
                    let _ = self.apply_up_to(id, &cell, wm.get(id.table));
                }
            }
        }
        self.reap_empty()
    }

    /// Removes shard-map entries whose queues are drained, releasing
    /// the `Arc<WriteSet>` allocations they pinned. A slot is marked
    /// dead and unmapped in one map-locked critical section, so a
    /// concurrent enqueue that captured the `Arc` earlier re-checks
    /// `dead` under the queue lock and re-inserts through the map.
    fn reap_empty(&self) -> usize {
        let mut reaped = 0usize;
        for shard in &self.queues {
            let mut map = shard.lock();
            map.retain(|_, q| {
                let mut slot = q.lock();
                if slot.q.is_empty() {
                    slot.dead = true;
                    reaped += 1;
                    false
                } else {
                    true
                }
            });
        }
        reaped
    }

    /// Fully applies one page's queue (support-slave side of migration).
    pub fn apply_page(&self, id: PageId) {
        if let Some(cell) = self.store.get(id) {
            let _ = self.apply_up_to(id, &cell, u64::MAX);
        }
    }

    /// Discards queued records with versions above `versions` — the
    /// cleanup after a master failure, removing partially propagated
    /// transactions the failed master never acknowledged (§4.2). Also
    /// clamps the received vector so later waits don't trust ghosts.
    pub fn discard_above(&self, versions: &VersionVector) {
        let mut dropped_bytes = 0u64;
        for shard in &self.queues {
            let shard = shard.lock();
            for (id, q) in shard.iter() {
                let keep = versions.get(id.table);
                q.lock().q.retain(|e| {
                    if e.version <= keep {
                        true
                    } else {
                        dropped_bytes += e.byte_len();
                        false
                    }
                });
            }
        }
        if dropped_bytes > 0 {
            // relaxed-ok: diagnostics gauge
            self.pending_diff_bytes.fetch_sub(dropped_bytes, Ordering::Relaxed);
        }
        self.reap_empty();
        self.received.clamp(versions);
        self.emit(|node| TraceEvent::DiscardedAbove { node, keep: versions.clone() });
    }

    /// Advances the received vector to (at least) `to` without any
    /// queued diffs — used when a joining node finishes data migration:
    /// the transferred page images already embody every version up to
    /// the migration target, so tagged reads at those versions must not
    /// wait for a replication stream that will never resend them.
    pub fn advance_received(&self, to: &VersionVector) {
        self.received.merge(to);
        self.notify_waiters();
    }

    /// Total queued (unapplied) diffs across all pages (diagnostics).
    pub fn pending_count(&self) -> usize {
        self.queues.iter().map(|s| s.lock().values().map(|q| q.lock().q.len()).sum::<usize>()).sum()
    }

    /// Encoded bytes of all queued diffs — the pending-memory gauge
    /// consumed by the bounded-memory oracle and the bench reporter.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_diff_bytes.load(Ordering::Relaxed) // relaxed-ok: diagnostics gauge; stream order is carried by received + wait_lock
    }

    /// Number of pages holding a shard-map entry (drained or not).
    /// [`Self::reclaim_up_to`] and [`Self::apply_all`] reap drained
    /// entries, so on an idle replica this tracks the pages with
    /// genuinely outstanding diffs rather than every page ever written.
    pub fn queue_map_len(&self) -> usize {
        self.queues.iter().map(|s| s.lock().len()).sum()
    }
}

impl ReadGate for PendingApplier {
    fn prepare_read(&self, id: PageId, cell: &PageCell, tag: &VersionVector) -> DmvResult<()> {
        let want = tag.get(id.table);
        // Fast path: nothing pending and the page is current enough.
        {
            let page = cell.latch.read();
            if page.version == want {
                return Ok(());
            }
            if page.version > want {
                return Err(DmvError::VersionConflict {
                    page: id,
                    wanted: want,
                    found: page.version,
                });
            }
        }
        // The tag may reference versions still in flight.
        let mut needed = VersionVector::new(tag.len());
        needed.set(id.table, want);
        self.wait_received(&needed)?;
        self.apply_up_to(id, cell, want)
    }
}

impl std::fmt::Debug for PendingApplier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingApplier")
            .field("received", &format!("{}", self.received))
            .field("pending", &self.pending_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::ids::{NodeId, TableId, TxnId};
    use dmv_pagestore::PAGE_SIZE;

    fn ws(seq: u64, table: u16, version: u64, page_no: u32, fill: u8) -> Arc<WriteSet> {
        let before = vec![0u8; PAGE_SIZE];
        let mut after = before.clone();
        after[0] = fill;
        let mut versions = VersionVector::new(2);
        versions.set(TableId(table), version);
        Arc::new(WriteSet {
            txn: TxnId::new(NodeId(0), seq),
            seq,
            versions,
            pages: vec![(
                PageId::heap(TableId(table), page_no),
                PageDiff::compute(&before, &after),
            )],
        })
    }

    fn applier() -> (Arc<PageStore>, PendingApplier) {
        let store = Arc::new(PageStore::new_free());
        let a = PendingApplier::new(Arc::clone(&store), 2, Duration::from_millis(100));
        (store, a)
    }

    #[test]
    fn enqueue_creates_page_and_tracks_versions() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        assert!(store.contains(PageId::heap(TableId(0), 0)));
        assert_eq!(a.received().get(TableId(0)), 1);
        assert_eq!(a.pending_count(), 1);
        assert_eq!(a.enqueued_count(), 1);
    }

    #[test]
    fn enqueue_shares_the_writeset_allocation() {
        let (_store, a) = applier();
        let w = ws(1, 0, 1, 0, 10);
        a.enqueue(&w);
        // One strong count for the test handle, one for the queue entry:
        // the queue holds the same allocation, not a copy.
        assert_eq!(Arc::strong_count(&w), 2);
        a.apply_all();
        assert_eq!(Arc::strong_count(&w), 1, "materializing releases the handle");
    }

    #[test]
    fn enqueue_batch_matches_sequential_enqueues() {
        let (store, a) = applier();
        a.enqueue_batch(&[ws(1, 0, 1, 0, 10), ws(2, 0, 2, 0, 20), ws(3, 0, 3, 1, 30)]);
        assert_eq!(a.pending_count(), 3);
        assert_eq!(a.enqueued_count(), 3);
        assert_eq!(a.received().get(TableId(0)), 3);
        a.apply_all();
        let p0 = store.get(PageId::heap(TableId(0), 0)).unwrap();
        assert_eq!(p0.latch.read().version, 2);
        assert_eq!(p0.latch.read().data()[0], 20, "both page-0 diffs applied in seq order");
        let p1 = store.get(PageId::heap(TableId(0), 1)).unwrap();
        assert_eq!(p1.latch.read().version, 3);
        assert_eq!(p1.latch.read().data()[0], 30);
    }

    #[test]
    fn enqueue_batch_of_nothing_is_a_noop() {
        let (_store, a) = applier();
        a.enqueue_batch(&[]);
        assert_eq!(a.pending_count(), 0);
        assert_eq!(a.enqueued_count(), 0);
    }

    #[test]
    fn lazy_application_up_to_tag() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        a.enqueue(&ws(2, 0, 2, 0, 20));
        a.enqueue(&ws(3, 0, 3, 0, 30));
        let id = PageId::heap(TableId(0), 0);
        let cell = store.get(id).unwrap();
        let mut tag = VersionVector::new(2);
        tag.set(TableId(0), 2);
        a.prepare_read(id, &cell, &tag).unwrap();
        let page = cell.latch.read();
        assert_eq!(page.version, 2);
        assert_eq!(page.data()[0], 20, "only versions <= tag applied");
        drop(page);
        assert_eq!(a.pending_count(), 1, "version 3 still queued");
    }

    #[test]
    fn conflict_when_page_upgraded_past_tag() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        a.enqueue(&ws(2, 0, 2, 0, 20));
        let id = PageId::heap(TableId(0), 0);
        let cell = store.get(id).unwrap();
        let mut new_tag = VersionVector::new(2);
        new_tag.set(TableId(0), 2);
        a.prepare_read(id, &cell, &new_tag).unwrap();
        // now a reader with an older tag arrives
        let mut old_tag = VersionVector::new(2);
        old_tag.set(TableId(0), 1);
        let err = a.prepare_read(id, &cell, &old_tag).unwrap_err();
        assert!(matches!(err, DmvError::VersionConflict { wanted: 1, found: 2, .. }));
    }

    #[test]
    fn wait_times_out_for_future_version() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        let id = PageId::heap(TableId(0), 0);
        let cell = store.get(id).unwrap();
        let mut tag = VersionVector::new(2);
        tag.set(TableId(0), 5);
        let err = a.prepare_read(id, &cell, &tag).unwrap_err();
        assert!(matches!(err, DmvError::Network(_)));
    }

    #[test]
    fn wait_unblocks_when_version_arrives() {
        let store = Arc::new(PageStore::new_free());
        let a = Arc::new(PendingApplier::new(Arc::clone(&store), 2, Duration::from_secs(5)));
        a.enqueue(&ws(1, 0, 1, 0, 10));
        let a2 = Arc::clone(&a);
        let h = dmv_check::thread::spawn(move || {
            let mut tag = VersionVector::new(2);
            tag.set(TableId(0), 2);
            a2.wait_received(&tag)
        });
        std::thread::sleep(Duration::from_millis(30));
        a.enqueue(&ws(2, 0, 2, 0, 20));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn discard_above_removes_partial_broadcasts() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        a.enqueue(&ws(2, 0, 2, 0, 20)); // will be discarded
        let mut keep = VersionVector::new(2);
        keep.set(TableId(0), 1);
        a.discard_above(&keep);
        assert_eq!(a.pending_count(), 1);
        assert_eq!(a.received().get(TableId(0)), 1);
        // applying everything now stops at version 1
        a.apply_all();
        let cell = store.get(PageId::heap(TableId(0), 0)).unwrap();
        assert_eq!(cell.latch.read().version, 1);
        assert_eq!(cell.latch.read().data()[0], 10);
    }

    #[test]
    fn apply_all_catches_up_everything() {
        let (store, a) = applier();
        for v in 1..=5 {
            a.enqueue(&ws(v, 0, v, 0, v as u8 * 10));
        }
        a.apply_all();
        assert_eq!(a.pending_count(), 0);
        let cell = store.get(PageId::heap(TableId(0), 0)).unwrap();
        assert_eq!(cell.latch.read().version, 5);
        assert_eq!(cell.latch.read().data()[0], 50);
    }

    #[test]
    fn idempotent_application_after_migration_image() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        a.enqueue(&ws(2, 0, 2, 0, 20));
        // migration already delivered the page at version 2
        let id = PageId::heap(TableId(0), 0);
        let cell = store.get(id).unwrap();
        {
            let mut page = cell.latch.write();
            page.version = 2;
            page.data_mut()[0] = 20;
        }
        let mut tag = VersionVector::new(2);
        tag.set(TableId(0), 2);
        a.prepare_read(id, &cell, &tag).unwrap();
        let page = cell.latch.read();
        assert_eq!(page.version, 2);
        assert_eq!(page.data()[0], 20, "stale diffs must not reapply");
    }

    #[test]
    fn per_table_isolation() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        a.enqueue(&ws(2, 1, 1, 0, 99));
        let id0 = PageId::heap(TableId(0), 0);
        let cell0 = store.get(id0).unwrap();
        let mut tag = VersionVector::new(2);
        tag.set(TableId(0), 1);
        // table 1's version in the tag is 0; reading table 0 is fine
        a.prepare_read(id0, &cell0, &tag).unwrap();
        assert_eq!(cell0.latch.read().data()[0], 10);
        // table 1's page remains unapplied
        let id1 = PageId::heap(TableId(1), 0);
        assert_eq!(store.get(id1).unwrap().latch.read().version, 0);
    }

    #[test]
    fn shard_map_is_reaped_after_drain() {
        // Regression: `queue_of`'s entry().or_default() used to insert
        // one map entry per page ever written and nothing removed them,
        // so the shard maps (and the Arc<WriteSet>s their queues held)
        // grew without bound on a long-lived replica.
        let (_store, a) = applier();
        const N: u64 = 128;
        for n in 0..N {
            a.enqueue(&ws(n + 1, 0, n + 1, n as u32, 10));
        }
        assert_eq!(a.queue_map_len(), N as usize);
        assert!(a.pending_bytes() > 0);
        a.apply_all();
        assert_eq!(a.pending_count(), 0);
        assert_eq!(a.queue_map_len(), 0, "drained queues must leave the map");
        assert_eq!(a.pending_bytes(), 0);
    }

    #[test]
    fn reads_do_not_grow_the_queue_map() {
        let (store, a) = applier();
        let id = PageId::heap(TableId(0), 7);
        store.get_or_create(id);
        let cell = store.get(id).unwrap();
        let tag = VersionVector::new(2);
        a.prepare_read(id, &cell, &tag).unwrap();
        assert_eq!(a.queue_map_len(), 0, "a tagged read of a quiet page must not insert a queue");
    }

    #[test]
    fn reclaim_applies_up_to_the_watermark_and_reaps() {
        let (store, a) = applier();
        let w1 = ws(1, 0, 1, 0, 10);
        let w2 = ws(2, 0, 2, 0, 20);
        let w3 = ws(3, 0, 3, 1, 30);
        a.enqueue(&w1);
        a.enqueue(&w2);
        a.enqueue(&w3);
        let mut wm = VersionVector::new(2);
        wm.set(TableId(0), 2);
        let reaped = a.reclaim_up_to(&wm);
        assert_eq!(reaped, 1, "page 0's queue drained; page 1 still holds v3");
        assert_eq!(a.pending_count(), 1);
        assert_eq!(a.queue_map_len(), 1);
        assert_eq!(Arc::strong_count(&w1), 1, "reclaim released the write-set handle");
        assert_eq!(Arc::strong_count(&w2), 1);
        assert_eq!(Arc::strong_count(&w3), 2, "v3 is above the watermark and stays queued");
        let cell = store.get(PageId::heap(TableId(0), 0)).unwrap();
        assert_eq!(cell.latch.read().version, 2, "reclaim applies, never drops");
        assert_eq!(cell.latch.read().data()[0], 20);
    }

    #[test]
    fn reclaim_tolerates_pages_ahead_of_the_watermark() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        a.enqueue(&ws(2, 0, 2, 0, 20));
        // A new-tagged reader materializes version 2 first.
        let id = PageId::heap(TableId(0), 0);
        let cell = store.get(id).unwrap();
        let mut tag = VersionVector::new(2);
        tag.set(TableId(0), 2);
        a.prepare_read(id, &cell, &tag).unwrap();
        // The cluster watermark lags at 1; reclaim must still reap.
        let mut wm = VersionVector::new(2);
        wm.set(TableId(0), 1);
        a.reclaim_up_to(&wm);
        assert_eq!(a.queue_map_len(), 0);
        assert_eq!(cell.latch.read().version, 2, "the newer materialization is untouched");
    }

    #[test]
    fn enqueue_after_reap_lands_in_a_fresh_queue() {
        let (store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        a.apply_all();
        assert_eq!(a.queue_map_len(), 0);
        a.enqueue(&ws(2, 0, 2, 0, 20));
        assert_eq!(a.queue_map_len(), 1);
        assert_eq!(a.pending_count(), 1);
        a.apply_all();
        let cell = store.get(PageId::heap(TableId(0), 0)).unwrap();
        assert_eq!(cell.latch.read().version, 2);
        assert_eq!(cell.latch.read().data()[0], 20);
    }

    #[test]
    fn pending_bytes_falls_on_discard() {
        let (_store, a) = applier();
        a.enqueue(&ws(1, 0, 1, 0, 10));
        a.enqueue(&ws(2, 0, 2, 0, 20));
        let full = a.pending_bytes();
        assert!(full > 0);
        let mut keep = VersionVector::new(2);
        keep.set(TableId(0), 1);
        a.discard_above(&keep);
        assert!(a.pending_bytes() < full);
        a.apply_all();
        assert_eq!(a.pending_bytes(), 0);
    }

    #[test]
    fn multi_page_writeset_spreads_across_shards() {
        let store = Arc::new(PageStore::new_free());
        let a = PendingApplier::new(Arc::clone(&store), 2, Duration::from_millis(100));
        let before = vec![0u8; PAGE_SIZE];
        let mut after = before.clone();
        after[0] = 7;
        let diff = PageDiff::compute(&before, &after);
        let mut versions = VersionVector::new(2);
        versions.set(TableId(0), 1);
        let pages: Vec<(PageId, PageDiff)> =
            (0..200u32).map(|n| (PageId::heap(TableId(0), n), diff.clone())).collect();
        let w = Arc::new(WriteSet { txn: TxnId::new(NodeId(0), 1), seq: 1, versions, pages });
        a.enqueue(&w);
        assert_eq!(a.pending_count(), 200);
        // Shards that never saw a page must stay empty; with 200 pages
        // over 64 shards, several must be occupied.
        let occupied = a.queues.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(occupied > 16, "pages concentrated on {occupied} shards");
        a.apply_all();
        assert_eq!(a.pending_count(), 0);
        for n in 0..200u32 {
            let cell = store.get(PageId::heap(TableId(0), n)).unwrap();
            assert_eq!(cell.latch.read().data()[0], 7);
        }
    }
}
