//! Cluster orchestration: builds the in-memory tier, monitors it for
//! failures, reconfigures on node death, reintegrates recovered nodes
//! (data migration, §4.4) and exposes client sessions.

use crate::messages::{Msg, PageBatch};
use crate::replica::{ReplicaConfig, ReplicaNode};
use crate::scheduler::{Scheduler, SchedulerConfig, Topology, WarmupStrategy};
use crate::trace::SharedTap;
use dmv_check::sync::atomic::{AtomicBool, Ordering};
use dmv_check::sync::{Mutex, RwLock};
use dmv_common::clock::{SimClock, TimeScale};
use dmv_common::config::{BufferBudget, CpuProfile, DiskProfile, GroupCommitConfig, NetProfile};
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{NodeId, ReplicaRole, TableId};
use dmv_common::stats::TxnStats;
use dmv_common::version::VersionVector;
use dmv_common::wire::Wire;
use dmv_epoch::EpochManager;
use dmv_net::{DynTransport, SimnetTransport};
use dmv_ondisk::{DiskDb, DiskDbOptions};
use dmv_sql::exec::{execute, ResultSet};
use dmv_sql::query::Query;
use dmv_sql::row::Row;
use dmv_sql::schema::Schema;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Pages per migration batch message.
const MIGRATION_BATCH_PAGES: usize = 64;

/// Cluster construction parameters. All durations are paper time.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Database schema.
    pub schema: Schema,
    /// Active slaves serving reads.
    pub n_slaves: usize,
    /// Spare backups.
    pub n_spares: usize,
    /// Peer schedulers (≥ 1).
    pub n_schedulers: usize,
    /// On-disk persistence backends.
    pub n_backends: usize,
    /// Conflict classes: disjoint table sets, one master each. `None`
    /// schedules all updates on a single master.
    pub conflict_classes: Option<Vec<Vec<TableId>>>,
    /// Paper-time → wall-time compression.
    pub time_scale: TimeScale,
    /// Interconnect model.
    pub net: NetProfile,
    /// Disk model (backends and page-in cost reference).
    pub disk: DiskProfile,
    /// CPU cost model for query execution.
    pub cpu: CpuProfile,
    /// Buffer pool pages per backend.
    pub backend_buffer_pages: usize,
    /// Page-in latency for a non-resident page of an in-memory replica
    /// (the mmap fault behind the cache-warmup effects).
    pub fault_latency: Duration,
    /// Lock wait timeout (wall time).
    pub lock_timeout: Duration,
    /// Bound on a master's wait for replication acks (wall time). A
    /// dead or unreachable target is abandoned after this long; the
    /// failure detector reconfigures it away.
    pub ack_timeout: Duration,
    /// Group-commit batching bounds for masters (see
    /// [`GroupCommitConfig`]). The defaults suit the paper's workloads;
    /// lower `max_batch_count` to bound per-frame latency skew, raise
    /// it on high-fan-out clusters where broadcast cost dominates.
    pub group_commit: GroupCommitConfig,
    /// Spare warmup strategy.
    pub warmup: WarmupStrategy,
    /// Fuzzy checkpoint period, if any.
    pub checkpoint_period: Option<Duration>,
    /// Failure-detector poll interval.
    pub detect_interval: Duration,
    /// Commit-path query-logging cost (§4.6).
    pub log_latency: Duration,
    /// Automatically activate a spare when an active node dies.
    pub auto_activate_spares: bool,
    /// Version-aware read routing (ablation toggle; paper default on).
    pub same_version_routing: bool,
    /// Resident-byte budget per in-memory replica (see
    /// [`BufferBudget`]); unbounded by default.
    pub buffer_budget: BufferBudget,
    /// Period of the epoch GC sweep (watermark broadcast + pending-queue
    /// reclamation), paper time. `None` disables the background sweep;
    /// deterministic harnesses call [`DmvCluster::gc_sweep`] directly.
    pub gc_interval: Option<Duration>,
}

impl ClusterSpec {
    /// A spec with realistic 2007-era cost models at the given scale.
    pub fn new(schema: Schema, time_scale: TimeScale) -> Self {
        ClusterSpec {
            schema,
            n_slaves: 1,
            n_spares: 0,
            n_schedulers: 1,
            n_backends: 0,
            conflict_classes: None,
            time_scale,
            net: NetProfile::lan_2007(),
            disk: DiskProfile::commodity_2007(),
            cpu: CpuProfile::athlon_2007(),
            backend_buffer_pages: 512,
            fault_latency: Duration::from_micros(8000),
            lock_timeout: Duration::from_millis(300),
            ack_timeout: Duration::from_secs(2),
            group_commit: GroupCommitConfig::default(),
            warmup: WarmupStrategy::None,
            checkpoint_period: None,
            detect_interval: Duration::from_secs(1),
            log_latency: Duration::from_micros(500),
            auto_activate_spares: true,
            same_version_routing: true,
            buffer_budget: BufferBudget::unbounded(),
            gc_interval: Some(Duration::from_millis(500)),
        }
    }

    /// A zero-cost spec for fast logic tests.
    pub fn fast_test(schema: Schema) -> Self {
        let mut s = Self::new(schema, TimeScale::realtime());
        s.net = NetProfile::zero();
        s.cpu = CpuProfile::zero();
        s.disk = DiskProfile::fast_ssd();
        s.fault_latency = Duration::ZERO;
        s.detect_interval = Duration::from_millis(20);
        s.log_latency = Duration::ZERO;
        s.ack_timeout = Duration::from_millis(500);
        // Deterministic tests drive GC explicitly via `gc_sweep`.
        s.gc_interval = None;
        s
    }
}

/// Result of a node reintegration (§4.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationReport {
    /// Pages transferred from the support slave.
    pub pages: usize,
    /// Bytes transferred.
    pub bytes: usize,
    /// Paper-time duration of the catch-up.
    pub duration: Duration,
}

/// The running DMV cluster: in-memory tier + schedulers + backends.
pub struct DmvCluster {
    clock: SimClock,
    net: DynTransport<Msg>,
    spec: ClusterSpec,
    replicas: RwLock<HashMap<NodeId, Arc<ReplicaNode>>>,
    schedulers: Vec<Arc<Scheduler>>,
    backends: Vec<Arc<DiskDb>>,
    handled_failures: Mutex<HashSet<NodeId>>,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<dmv_check::thread::JoinHandle<()>>>,
    ready: AtomicBool,
    next_node_id: Mutex<u32>,
    /// History tap propagated to every present and future component.
    trace_tap: Mutex<Option<SharedTap>>,
    /// Cluster-wide epoch manager: reader pins + peer ack floors →
    /// reclamation watermark.
    epoch: Arc<EpochManager>,
}

impl DmvCluster {
    /// Builds the cluster in *loading* state: nodes exist but replication
    /// targets are not wired. Call [`DmvCluster::load_rows`] to populate,
    /// then [`DmvCluster::finish_load`] to go live.
    ///
    /// The cluster runs on the simulated interconnect described by
    /// `spec.net`; use [`DmvCluster::start_with_transport`] to run the
    /// same machinery over a different fabric (e.g. real TCP).
    pub fn start(spec: ClusterSpec) -> Arc<Self> {
        let clock = SimClock::new(spec.time_scale);
        let net: DynTransport<Msg> = Arc::new(SimnetTransport::new(spec.net, clock));
        Self::start_inner(spec, clock, net)
    }

    /// Like [`DmvCluster::start`], but over a caller-supplied transport.
    /// `spec.net` still models the client↔scheduler hops; the replica
    /// tier's traffic goes through `net`.
    pub fn start_with_transport(spec: ClusterSpec, net: DynTransport<Msg>) -> Arc<Self> {
        let clock = SimClock::new(spec.time_scale);
        Self::start_inner(spec, clock, net)
    }

    fn start_inner(spec: ClusterSpec, clock: SimClock, net: DynTransport<Msg>) -> Arc<Self> {
        let n_tables = spec.schema.len();
        let classes: Vec<Vec<TableId>> = spec
            .conflict_classes
            .clone()
            .unwrap_or_else(|| vec![(0..n_tables as u16).map(TableId).collect()]);
        let epoch = EpochManager::new(n_tables);
        let rc = ReplicaConfig {
            clock,
            cpu: spec.cpu,
            fault_latency: spec.fault_latency,
            lock_timeout: spec.lock_timeout,
            ack_timeout: spec.ack_timeout,
            group_commit: spec.group_commit,
            buffer_budget: spec.buffer_budget,
        };
        let mut replicas = HashMap::new();
        let mut masters = Vec::new();
        for i in 0..classes.len() {
            let id = NodeId(i as u32);
            let node = ReplicaNode::start(
                id,
                spec.schema.clone(),
                ReplicaRole::Master,
                Arc::clone(&net),
                rc.clone(),
            );
            replicas.insert(id, Arc::clone(&node));
            masters.push(node);
        }
        let mut slaves = Vec::new();
        for i in 0..spec.n_slaves {
            let id = NodeId(10 + i as u32);
            let node = ReplicaNode::start(
                id,
                spec.schema.clone(),
                ReplicaRole::Slave,
                Arc::clone(&net),
                rc.clone(),
            );
            replicas.insert(id, Arc::clone(&node));
            slaves.push(node);
        }
        let mut spares = Vec::new();
        for i in 0..spec.n_spares {
            let id = NodeId(50 + i as u32);
            let node = ReplicaNode::start(
                id,
                spec.schema.clone(),
                ReplicaRole::SpareBackup,
                Arc::clone(&net),
                rc.clone(),
            );
            replicas.insert(id, Arc::clone(&node));
            spares.push(node);
        }
        let backends: Vec<Arc<DiskDb>> = (0..spec.n_backends)
            .map(|i| {
                Arc::new(DiskDb::new(
                    spec.schema.clone(),
                    DiskDbOptions {
                        node: NodeId(200 + i as u32),
                        disk: spec.disk,
                        cpu: spec.cpu,
                        clock,
                        buffer_pages: spec.backend_buffer_pages,
                        lock_timeout: spec.lock_timeout,
                    },
                ))
            })
            .collect();
        for node in replicas.values() {
            node.set_epoch_manager(Arc::clone(&epoch));
        }
        let topo = Topology { masters, classes, slaves, spares };
        let sched_cfg = SchedulerConfig {
            clock,
            net: spec.net,
            log_latency: spec.log_latency,
            warmup: spec.warmup,
            same_version_routing: spec.same_version_routing,
        };
        let schedulers: Vec<Arc<Scheduler>> = (0..spec.n_schedulers.max(1))
            .map(|i| {
                Scheduler::new(
                    NodeId(100 + i as u32),
                    n_tables,
                    topo.clone(),
                    backends.clone(),
                    Arc::clone(&net),
                    sched_cfg.clone(),
                )
            })
            .collect();
        for s in &schedulers {
            s.set_epoch_manager(Arc::clone(&epoch));
        }
        Arc::new(DmvCluster {
            clock,
            net,
            spec,
            replicas: RwLock::new(replicas),
            schedulers,
            backends,
            handled_failures: Mutex::new(HashSet::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
            ready: AtomicBool::new(false),
            next_node_id: Mutex::new(80),
            trace_tap: Mutex::new(None),
            epoch,
        })
    }

    /// Bulk-loads rows into the appropriate master, bypassing
    /// replication (the initial state is distributed by page copy in
    /// [`DmvCluster::finish_load`], modeling every node mmap-ing the same
    /// on-disk database).
    ///
    /// # Errors
    ///
    /// Propagates insert errors (duplicate keys, schema violations).
    ///
    /// # Panics
    ///
    /// Panics if called after [`DmvCluster::finish_load`].
    pub fn load_rows(&self, table: TableId, rows: Vec<Row>) -> DmvResult<()> {
        assert!(!self.ready.load(Ordering::Acquire), "cluster already live");
        let topo = self.schedulers[0].topology();
        let class = topo.classes.iter().position(|c| c.contains(&table)).unwrap_or(0);
        let master = &topo.masters[class];
        for chunk in rows.chunks(256) {
            let mut txn = master.db().begin_update();
            for row in chunk {
                match execute(&mut txn, &Query::Insert { table, rows: vec![row.clone()] }) {
                    Ok(_) => {}
                    Err(e) => {
                        txn.abort();
                        return Err(e);
                    }
                }
            }
            txn.commit(None);
        }
        Ok(())
    }

    /// Finishes loading: copies the masters' pages onto every replica
    /// (the shared initial database image), wires replication targets,
    /// and starts the failure monitor and checkpoint threads.
    pub fn finish_load(self: &Arc<Self>) {
        let topo = self.schedulers[0].topology();
        for master in &topo.masters {
            for other in topo.all() {
                if other.id() != master.id() {
                    other.clone_pages_from(master);
                }
            }
        }
        for master in &topo.masters {
            let targets: Vec<NodeId> =
                topo.all().iter().filter(|r| r.id() != master.id()).map(|r| r.id()).collect();
            master.set_targets(targets);
        }
        // Baseline checkpoint so reintegration always has a floor.
        for r in topo.all() {
            r.take_checkpoint();
        }
        self.ready.store(true, Ordering::Release);
        self.start_monitor();
        if self.spec.checkpoint_period.is_some() {
            self.start_checkpointer();
        }
        if self.spec.gc_interval.is_some() {
            self.start_gc();
        }
    }

    /// Sleeps up to `total`, waking early (and returning true) when the
    /// shutdown flag is raised — keeps long periods joinable.
    fn interruptible_sleep(shutdown: &AtomicBool, total: Duration) -> bool {
        let mut left = total;
        while !left.is_zero() {
            if shutdown.load(Ordering::Acquire) {
                return true;
            }
            let step = left.min(Duration::from_millis(25));
            std::thread::sleep(step);
            left -= step;
        }
        shutdown.load(Ordering::Acquire)
    }

    fn start_monitor(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        let shutdown = Arc::clone(&self.shutdown);
        let interval = self.clock.scale().to_wall(self.spec.detect_interval);
        let interval = interval.max(Duration::from_millis(5));
        let h = dmv_check::thread::Builder::new()
            .name("dmv-monitor".into())
            .spawn(move || loop {
                if Self::interruptible_sleep(&shutdown, interval) {
                    break;
                }
                let Some(cluster) = weak.upgrade() else { break };
                cluster.detect_and_reconfigure();
            })
            .expect("spawn monitor"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
        self.threads.lock().push(h);
    }

    fn start_checkpointer(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        let shutdown = Arc::clone(&self.shutdown);
        let period = self
            .clock
            .scale()
            .to_wall(self.spec.checkpoint_period.expect("checked")) // unwrap-ok: guarded by the checkpoint_period Some-check at the call site
            .max(Duration::from_millis(10));
        let h = dmv_check::thread::Builder::new()
            .name("dmv-checkpoint".into())
            .spawn(move || loop {
                if Self::interruptible_sleep(&shutdown, period) {
                    break;
                }
                let Some(cluster) = weak.upgrade() else { break };
                for r in cluster.schedulers[0].topology().all() {
                    if r.is_alive() {
                        r.take_checkpoint();
                    }
                }
            })
            .expect("spawn checkpointer"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
        self.threads.lock().push(h);
    }

    fn start_gc(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        let shutdown = Arc::clone(&self.shutdown);
        let period = self
            .clock
            .scale()
            .to_wall(self.spec.gc_interval.expect("checked")) // unwrap-ok: guarded by the gc_interval Some-check at the call site
            .max(Duration::from_millis(10));
        let h = dmv_check::thread::Builder::new()
            .name("dmv-gc".into())
            .spawn(move || loop {
                if Self::interruptible_sleep(&shutdown, period) {
                    break;
                }
                let Some(cluster) = weak.upgrade() else { break };
                cluster.gc_broadcast();
            })
            .expect("spawn gc"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
        self.threads.lock().push(h);
    }

    /// The cluster's epoch manager (reader pins, peer floors,
    /// reclamation watermark).
    pub fn epoch(&self) -> &Arc<EpochManager> {
        &self.epoch
    }

    /// Computes the current reclamation watermark: the schedulers'
    /// latest merged vectors are folded into the epoch manager's
    /// `latest`, then met with every pinned reader epoch and every live
    /// peer's cumulative-ack floor.
    fn compute_watermark(&self) -> VersionVector {
        for s in &self.schedulers {
            self.epoch.advance_latest(&s.latest());
        }
        self.epoch.watermark()
    }

    /// One deterministic epoch GC pass: computes the watermark and
    /// reclaims on every live replica **synchronously on the calling
    /// thread** (no network round-trip), returning the watermark used.
    /// This is the form deterministic harnesses (DST) drive; the
    /// background sweeper uses [`Msg::Watermark`] broadcasts instead.
    pub fn gc_sweep(&self) -> VersionVector {
        let wm = self.compute_watermark();
        for r in self.replicas.read().values() {
            if r.is_alive() {
                r.reclaim_local(&wm);
            }
        }
        wm
    }

    /// Background-sweeper form of [`DmvCluster::gc_sweep`]: every live
    /// master broadcasts [`Msg::Watermark`] to its targets (slaves
    /// reclaim on their receiver threads) and reclaims locally.
    pub fn gc_broadcast(&self) -> VersionVector {
        let wm = self.compute_watermark();
        let topo = self.schedulers[0].topology();
        for m in topo.masters.iter().filter(|m| m.is_alive()) {
            m.broadcast_watermark(&wm);
        }
        wm
    }

    /// Per-node memory gauges of live replicas, sorted by node id:
    /// `(node, pending diff bytes, resident page bytes)`. Consumed by
    /// the bounded-memory oracle and the bench high-water tracking.
    pub fn memory_gauges(&self) -> Vec<(NodeId, u64, u64)> {
        let mut v: Vec<(NodeId, u64, u64)> = self
            .replicas
            .read()
            .values()
            .filter(|r| r.is_alive())
            .map(|r| (r.id(), r.pending_bytes(), r.resident_bytes()))
            .collect();
        v.sort_by_key(|(n, _, _)| *n);
        v
    }

    /// One failure-detector sweep: finds newly dead replicas and runs the
    /// §4.1–4.3 reconfiguration. Public so experiments can force
    /// immediate detection instead of waiting out the poll interval.
    pub fn detect_and_reconfigure(&self) {
        let topo = self.schedulers[0].topology();
        let mut handled = self.handled_failures.lock();
        let dead: Vec<Arc<ReplicaNode>> = topo
            .all()
            .into_iter()
            .filter(|r| !r.is_alive() && !handled.contains(&r.id()))
            .collect();
        for node in dead {
            handled.insert(node.id());
            let was_master = topo.masters.iter().any(|m| m.id() == node.id());
            if was_master {
                // Let the primary scheduler drive promotion, then mirror
                // the new topology onto the peers.
                if let Ok(new_master) = self.schedulers[0].handle_master_failure(node.id(), None) {
                    for s in &self.schedulers[1..] {
                        s.set_topology(self.schedulers[0].topology());
                        s.recover_from_masters();
                    }
                    let _ = new_master; // promoted
                }
            } else {
                for s in &self.schedulers {
                    s.handle_slave_failure(node.id());
                }
            }
            if self.spec.auto_activate_spares {
                let spare_id = self.schedulers[0]
                    .topology()
                    .spares
                    .iter()
                    .find(|s| s.is_alive())
                    .map(|s| s.id());
                if let Some(id) = spare_id {
                    for s in &self.schedulers {
                        s.activate_spare(id);
                    }
                }
            }
        }
    }

    /// The cluster clock.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// The transport fabric (for fault injection in tests).
    pub fn net(&self) -> &DynTransport<Msg> {
        &self.net
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.spec.schema
    }

    /// A replica by id.
    pub fn replica(&self, id: NodeId) -> Option<Arc<ReplicaNode>> {
        self.replicas.read().get(&id).cloned()
    }

    /// The primary scheduler's latest merged version vector (the tag the
    /// next read would receive).
    pub fn latest_version(&self) -> VersionVector {
        self.schedulers[0].latest()
    }

    /// Installs a history tap on every scheduler and replica, including
    /// nodes integrated later (deterministic simulation testing).
    pub fn set_trace_tap(&self, tap: SharedTap) {
        for s in &self.schedulers {
            s.set_trace_tap(Arc::clone(&tap));
        }
        for r in self.replicas.read().values() {
            r.set_trace_tap(Arc::clone(&tap));
        }
        *self.trace_tap.lock() = Some(tap);
    }

    /// The current master of conflict class `class`.
    pub fn master(&self, class: usize) -> Arc<ReplicaNode> {
        Arc::clone(&self.schedulers[0].topology().masters[class])
    }

    /// Ids of the current active slaves.
    pub fn slave_ids(&self) -> Vec<NodeId> {
        self.schedulers[0].topology().slaves.iter().map(|s| s.id()).collect()
    }

    /// Ids of the current spares.
    pub fn spare_ids(&self) -> Vec<NodeId> {
        self.schedulers[0].topology().spares.iter().map(|s| s.id()).collect()
    }

    /// The persistence backends.
    pub fn backends(&self) -> &[Arc<DiskDb>] {
        &self.backends
    }

    /// Merged transaction statistics across schedulers.
    pub fn stats(&self) -> Vec<Arc<TxnStats>> {
        self.schedulers.iter().map(|s| Arc::clone(&s.stats)).collect()
    }

    /// Total version-conflict abort rate across schedulers.
    pub fn version_abort_rate(&self) -> f64 {
        let (mut aborts, mut attempts) = (0u64, 0u64);
        for s in &self.schedulers {
            aborts += s.stats.version_aborts.get();
            attempts += s.stats.attempts();
        }
        if attempts == 0 {
            0.0
        } else {
            aborts as f64 / attempts as f64
        }
    }

    /// A client session (scheduler fail-over is handled inside).
    pub fn session(self: &Arc<Self>) -> Session {
        Session { cluster: Arc::clone(self) }
    }

    fn alive_scheduler(&self) -> DmvResult<Arc<Scheduler>> {
        self.schedulers.iter().find(|s| s.is_alive()).cloned().ok_or(DmvError::NoReplicaAvailable)
    }

    /// Kills a replica node (fail-stop). The monitor reconfigures within
    /// the detection interval.
    pub fn kill_replica(&self, id: NodeId) {
        if let Some(node) = self.replica(id) {
            node.kill();
        }
    }

    /// Kills scheduler `i`; a peer takes over (§4.1) by recovering the
    /// latest versions from the masters.
    pub fn kill_scheduler(&self, i: usize) {
        self.schedulers[i].kill();
        if let Some(peer) = self.schedulers.iter().find(|s| s.is_alive()) {
            peer.set_topology(self.schedulers[i].topology());
            peer.recover_from_masters();
        }
    }

    /// Reintegrates a previously failed node (§4.4): restores its last
    /// checkpoint from local stable storage, subscribes it to the
    /// masters, transfers only the pages newer than its checkpoint from a
    /// support slave, and adds it back as a slave.
    ///
    /// # Errors
    ///
    /// `NoSuchNode` for an unknown id; `NoReplicaAvailable` if no support
    /// slave exists; network errors if migration stalls.
    pub fn reintegrate(&self, id: NodeId) -> DmvResult<MigrationReport> {
        let old = self.replica(id).ok_or(DmvError::NoSuchNode(id))?;
        let checkpoint = old.checkpoint();
        let rc = ReplicaConfig {
            clock: self.clock,
            cpu: self.spec.cpu,
            fault_latency: self.spec.fault_latency,
            lock_timeout: self.spec.lock_timeout,
            ack_timeout: self.spec.ack_timeout,
            group_commit: self.spec.group_commit,
            buffer_budget: self.spec.buffer_budget,
        };
        let node = ReplicaNode::start(
            id,
            self.spec.schema.clone(),
            ReplicaRole::Slave,
            Arc::clone(&self.net),
            rc,
        );
        node.set_epoch_manager(Arc::clone(&self.epoch));
        node.restore_from_checkpoint(&checkpoint);
        if let Some(tap) = self.trace_tap.lock().as_ref() {
            node.set_trace_tap(Arc::clone(tap));
        }
        self.replicas.write().insert(id, Arc::clone(&node));
        self.integrate_node(node, checkpoint.page_versions())
    }

    /// Integrates a brand-new node (never part of the cluster) as a
    /// slave: a worst-case migration where every page is transferred.
    ///
    /// # Errors
    ///
    /// Same as [`DmvCluster::reintegrate`].
    pub fn integrate_fresh_node(&self) -> DmvResult<(NodeId, MigrationReport)> {
        let id = {
            let mut next = self.next_node_id.lock();
            let id = NodeId(*next);
            *next += 1;
            id
        };
        let rc = ReplicaConfig {
            clock: self.clock,
            cpu: self.spec.cpu,
            fault_latency: self.spec.fault_latency,
            lock_timeout: self.spec.lock_timeout,
            ack_timeout: self.spec.ack_timeout,
            group_commit: self.spec.group_commit,
            buffer_budget: self.spec.buffer_budget,
        };
        let node = ReplicaNode::start(
            id,
            self.spec.schema.clone(),
            ReplicaRole::Slave,
            Arc::clone(&self.net),
            rc,
        );
        node.set_epoch_manager(Arc::clone(&self.epoch));
        if let Some(tap) = self.trace_tap.lock().as_ref() {
            node.set_trace_tap(Arc::clone(tap));
        }
        self.replicas.write().insert(id, Arc::clone(&node));
        let report = self.integrate_node(node, HashMap::new())?;
        Ok((id, report))
    }

    fn integrate_node(
        &self,
        node: Arc<ReplicaNode>,
        joiner_versions: HashMap<dmv_common::ids::PageId, u64>,
    ) -> DmvResult<MigrationReport> {
        let t0 = self.clock.now_paper();
        let topo = self.schedulers[0].topology();
        // 1. Subscribe to the replication list of every master, obtaining
        //    the current DBVersion.
        let mut target = VersionVector::new(self.spec.schema.len());
        for m in topo.masters.iter().filter(|m| m.is_alive()) {
            target.merge(&m.subscribe(node.id()));
        }
        // 2. Support slave: any active slave.
        let support = topo
            .slaves
            .iter()
            .find(|s| s.is_alive() && s.id() != node.id())
            .cloned()
            .ok_or(DmvError::NoReplicaAvailable)?;
        // 3. Selective page transfer: only pages newer than the joiner's
        //    checkpointed versions.
        let pages = support.collect_pages_newer(&joiner_versions, &target)?;
        let total_pages = pages.len();
        let mut total_bytes = 0usize;
        let mut batches: Vec<PageBatch> = pages
            .chunks(MIGRATION_BATCH_PAGES)
            .map(|c| PageBatch { pages: c.to_vec(), done: false })
            .collect();
        if batches.is_empty() {
            batches.push(PageBatch { pages: Vec::new(), done: true });
        } else {
            batches.last_mut().expect("nonempty").done = true; // unwrap-ok: else-branch of the is_empty check above
        }
        for b in batches {
            let msg = Msg::PageBatch(b);
            let size = msg.encoded_len();
            total_bytes += size;
            self.net.send_from(support.id(), node.id(), msg, size)?;
        }
        node.wait_migration_done(Duration::from_secs(30))?;
        // The transferred images embody everything up to `target`; the
        // live stream covers everything after. Reads tagged ≤ target
        // must not wait for stream records that predate the subscription.
        node.applier().advance_received(&target);
        // 4. Back into the computation as a slave.
        for s in &self.schedulers {
            s.add_slave(Arc::clone(&node));
        }
        self.handled_failures.lock().remove(&node.id());
        let duration = self.clock.now_paper() - t0;
        Ok(MigrationReport { pages: total_pages, bytes: total_bytes, duration })
    }

    /// Clean shutdown: stops monitor/checkpoint threads, receiver
    /// threads and scheduler feeds (draining queued backend batches).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
        for s in &self.schedulers {
            s.shutdown();
        }
        for r in self.replicas.read().values() {
            r.shutdown();
        }
        self.net.shutdown();
    }
}

impl std::fmt::Debug for DmvCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmvCluster")
            .field("replicas", &self.replicas.read().len())
            .field("schedulers", &self.schedulers.len())
            .field("backends", &self.backends.len())
            .finish()
    }
}

impl Drop for DmvCluster {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// A client connection to the cluster: routes through the first alive
/// scheduler and offers retry helpers for the retryable abort classes.
#[derive(Clone)]
pub struct Session {
    cluster: Arc<DmvCluster>,
}

impl Session {
    /// Runs an update transaction (no retry).
    ///
    /// # Errors
    ///
    /// Propagates scheduler/master errors.
    pub fn update(&self, queries: &[Query]) -> DmvResult<Vec<ResultSet>> {
        self.cluster.alive_scheduler()?.run_update(queries)
    }

    /// Runs a read-only transaction (no retry).
    ///
    /// # Errors
    ///
    /// Propagates scheduler/slave errors.
    pub fn read(&self, queries: &[Query]) -> DmvResult<Vec<ResultSet>> {
        self.cluster.alive_scheduler()?.run_read(queries)
    }

    /// Runs an update transaction driven by a statement closure.
    /// `tables` declares the tables the transaction accesses (conflict-
    /// class routing information; the paper's scheduler is pre-configured
    /// with this per transaction type).
    ///
    /// # Errors
    ///
    /// Propagates scheduler/master errors.
    pub fn update_with(
        &self,
        tables: &[TableId],
        f: &mut dyn FnMut(&mut dyn dmv_sql::StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<()> {
        self.cluster.alive_scheduler()?.run_update_with(tables, f)
    }

    /// Runs a read-only transaction driven by a statement closure.
    ///
    /// # Errors
    ///
    /// Propagates scheduler/slave errors.
    pub fn read_with(
        &self,
        f: &mut dyn FnMut(&mut dyn dmv_sql::StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<()> {
        self.cluster.alive_scheduler()?.run_read_with(f)
    }

    /// Closure form of [`Session::update_retry`]. The closure must be
    /// re-runnable: an aborted attempt rolls back completely before the
    /// retry.
    ///
    /// # Errors
    ///
    /// The last error if retries are exhausted.
    pub fn update_with_retry(
        &self,
        tables: &[TableId],
        f: &mut dyn FnMut(&mut dyn dmv_sql::StatementRunner) -> DmvResult<()>,
        retries: usize,
    ) -> DmvResult<()> {
        let mut last = None;
        for attempt in 0..=retries {
            if attempt > 0 {
                dmv_common::rng::retry_backoff(attempt);
            }
            match self.update_with(tables, f) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt")) // unwrap-ok: the retry loop always records an error before falling through
    }

    /// Closure form of [`Session::read_retry`].
    ///
    /// # Errors
    ///
    /// The last error if retries are exhausted.
    pub fn read_with_retry(
        &self,
        f: &mut dyn FnMut(&mut dyn dmv_sql::StatementRunner) -> DmvResult<()>,
        retries: usize,
    ) -> DmvResult<()> {
        let mut last = None;
        for attempt in 0..=retries {
            if attempt > 0 {
                dmv_common::rng::retry_backoff(attempt);
            }
            match self.read_with(f) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt")) // unwrap-ok: the retry loop always records an error before falling through
    }

    /// Runs an update, retrying retryable aborts up to `retries` times.
    ///
    /// # Errors
    ///
    /// The last error if retries are exhausted.
    pub fn update_retry(&self, queries: &[Query], retries: usize) -> DmvResult<Vec<ResultSet>> {
        let mut last = None;
        for attempt in 0..=retries {
            if attempt > 0 {
                dmv_common::rng::retry_backoff(attempt);
            }
            match self.update(queries) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt")) // unwrap-ok: the retry loop always records an error before falling through
    }

    /// Runs a read, retrying retryable aborts up to `retries` times.
    ///
    /// # Errors
    ///
    /// The last error if retries are exhausted.
    pub fn read_retry(&self, queries: &[Query], retries: usize) -> DmvResult<Vec<ResultSet>> {
        let mut last = None;
        for attempt in 0..=retries {
            if attempt > 0 {
                dmv_common::rng::retry_backoff(attempt);
            }
            match self.read(queries) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt")) // unwrap-ok: the retry loop always records an error before falling through
    }

    /// The owning cluster.
    pub fn cluster(&self) -> &Arc<DmvCluster> {
        &self.cluster
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish_non_exhaustive()
    }
}
