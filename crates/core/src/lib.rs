//! # dmv-core — Dynamic Multiversioning
//!
//! The paper's primary contribution: a replicated in-memory database
//! middleware tier providing 1-copy serializability, read scaling and
//! split-second fail-over on top of commodity hardware.
//!
//! * [`messages`] — the replication protocol (write-sets carrying
//!   per-page diffs and the per-table `DBVersion` vector, migration page
//!   batches, warmup hints, failure-cleanup control messages);
//! * [`applier`] — per-page pending-update queues with **lazy version
//!   materialization** and the version-conflict abort rule (§2.2);
//! * [`replica`] — a replica node: master commit pipeline (Figure 2),
//!   tagged slave reads, promotion, checkpointing, migration endpoints;
//! * [`scheduler`] — the version-aware scheduler: conflict-class routing
//!   of updates, version tagging and same-version read routing,
//!   asynchronous persistence feed (§4.6), failure handlers (§4.1–4.3);
//! * [`cluster`] — orchestration: build/monitor/reconfigure the tier,
//!   data migration for stale-node reintegration (§4.4), spare-backup
//!   activation, client sessions.
//!
//! ```no_run
//! use dmv_core::cluster::{ClusterSpec, DmvCluster};
//! use dmv_sql::{Schema, TableSchema, Column, ColType, IndexDef, Query};
//! use dmv_common::ids::TableId;
//!
//! # fn main() -> Result<(), dmv_common::DmvError> {
//! let schema = Schema::new(vec![TableSchema::new(
//!     TableId(0), "kv",
//!     vec![Column::new("k", ColType::Int), Column::new("v", ColType::Str)],
//!     vec![IndexDef::unique("pk", vec![0])],
//! )]);
//! let mut spec = ClusterSpec::fast_test(schema);
//! spec.n_slaves = 2;
//! let cluster = DmvCluster::start(spec);
//! cluster.finish_load();
//! let session = cluster.session();
//! session.update(&[Query::Insert { table: TableId(0), rows: vec![vec![1.into(), "x".into()]] }])?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod ack;
pub mod applier;
pub mod cluster;
pub mod messages;
pub mod replica;
pub mod scheduler;
pub mod trace;

pub use ack::AckTracker;
pub use applier::PendingApplier;
pub use cluster::{ClusterSpec, DmvCluster, MigrationReport, Session};
pub use messages::{Msg, PageBatch, WriteSet, WriteSetBatch};
pub use replica::{ReplicaConfig, ReplicaNode};
pub use scheduler::{Scheduler, SchedulerConfig, Topology, WarmupStrategy};
pub use trace::{SharedTap, TraceEvent, TraceTap};
