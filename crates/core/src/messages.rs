//! Replication protocol messages.

use dmv_common::ids::{NodeId, PageId, TxnId};
use dmv_common::version::VersionVector;
use dmv_pagestore::diff::PageDiff;
use std::sync::Arc;

/// The write-set a master broadcasts at pre-commit (paper Figure 2): the
/// per-page modification encodings of one update transaction plus the
/// database version vector the commit produces.
#[derive(Debug, Clone)]
pub struct WriteSet {
    /// The committing transaction.
    pub txn: TxnId,
    /// The version vector the database enters when this commit applies.
    /// Only the entries of tables in the write set were incremented.
    pub versions: VersionVector,
    /// Per-page byte diffs, in first-write order.
    pub pages: Vec<(PageId, PageDiff)>,
}

impl WriteSet {
    /// Approximate wire size (for network cost accounting).
    pub fn encoded_len(&self) -> usize {
        64 + self.pages.iter().map(|(_, d)| 16 + d.encoded_len()).sum::<usize>()
    }
}

/// A batch of full page images sent during data migration (paper §4.4):
/// only pages newer than the joining node's checkpointed versions.
#[derive(Debug, Clone)]
pub struct PageBatch {
    /// `(page, version, image)` triples.
    pub pages: Vec<(PageId, u64, Vec<u8>)>,
    /// True on the final batch of a migration.
    pub done: bool,
}

impl PageBatch {
    /// Approximate wire size.
    pub fn encoded_len(&self) -> usize {
        32 + self.pages.iter().map(|(_, _, img)| 24 + img.len()).sum::<usize>()
    }
}

/// Messages carried by the simulated cluster network.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Master → replicas: a pre-commit write-set flush. The write-set is
    /// shared (`Arc`) so an `n`-slave fan-out clones a pointer per
    /// target instead of re-allocating the page diffs `n` times; slaves
    /// keep the same allocation alive in their pending queues until the
    /// diffs are materialized.
    WriteSet(Arc<WriteSet>),
    /// Replica → master: write-set received and enqueued.
    WriteSetAck {
        /// The acknowledged transaction.
        txn: TxnId,
    },
    /// Support slave → joining node: migration page batch.
    PageBatch(PageBatch),
    /// Active slave → spare backup: identifiers of hot (buffer-resident)
    /// pages; the spare touches them to keep its cache warm (§4.5).
    PageIdHint {
        /// Hot page ids.
        pages: Vec<PageId>,
    },
    /// Scheduler → replicas after a master failure: discard queued
    /// modification-log records above the last version the scheduler saw
    /// from the failed master (§4.2).
    DiscardAbove {
        /// Highest acknowledged versions.
        versions: VersionVector,
    },
    /// Scheduler → replicas: announce a topology change (new master or
    /// membership); carries the sender so replicas re-target acks.
    Topology {
        /// Current master node.
        master: NodeId,
        /// Current replication targets.
        replicas: Vec<NodeId>,
    },
}

impl Msg {
    /// Approximate wire size of the message.
    pub fn encoded_len(&self) -> usize {
        match self {
            Msg::WriteSet(ws) => ws.encoded_len(),
            Msg::WriteSetAck { .. } => 24,
            Msg::PageBatch(b) => b.encoded_len(),
            Msg::PageIdHint { pages } => 16 + pages.len() * 12,
            Msg::DiscardAbove { versions } => 16 + versions.len() * 8,
            Msg::Topology { replicas, .. } => 24 + replicas.len() * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::ids::TableId;
    use dmv_pagestore::PAGE_SIZE;

    #[test]
    fn writeset_size_tracks_payload() {
        let before = vec![0u8; PAGE_SIZE];
        let mut after = before.clone();
        after[0..100].fill(7);
        let small = WriteSet {
            txn: TxnId::new(NodeId(0), 1),
            versions: VersionVector::new(2),
            pages: vec![(PageId::heap(TableId(0), 0), PageDiff::compute(&before, &after))],
        };
        let mut big_after = before.clone();
        big_after.fill(9);
        let big = WriteSet {
            txn: TxnId::new(NodeId(0), 2),
            versions: VersionVector::new(2),
            pages: vec![(PageId::heap(TableId(0), 0), PageDiff::compute(&before, &big_after))],
        };
        assert!(big.encoded_len() > small.encoded_len());
        assert!(small.encoded_len() < 300);
    }

    #[test]
    fn msg_sizes_nonzero() {
        let msgs = vec![
            Msg::WriteSetAck { txn: TxnId::new(NodeId(1), 1) },
            Msg::PageIdHint { pages: vec![PageId::heap(TableId(0), 0)] },
            Msg::DiscardAbove { versions: VersionVector::new(3) },
            Msg::Topology { master: NodeId(0), replicas: vec![NodeId(1)] },
        ];
        for m in msgs {
            assert!(m.encoded_len() > 0);
        }
    }
}
