//! Replication protocol messages and their wire encoding.
//!
//! Every message variant implements [`Wire`] with an **exact**
//! `encoded_len`, so the byte counts charged to the simulated network and
//! the frames pushed through the real TCP transport are the same bytes.
//! The assertion test at the bottom pins `encode(m).len() ==
//! m.encoded_len()` for every variant.

use dmv_common::ids::{NodeId, PageId, TxnId};
use dmv_common::version::VersionVector;
use dmv_common::wire::{put_u32, put_u64, Reader, Wire};
use dmv_common::{DmvError, DmvResult};
use dmv_pagestore::diff::PageDiff;
use dmv_pagestore::PAGE_SIZE;
use std::sync::Arc;

/// The write-set a master broadcasts at pre-commit (paper Figure 2): the
/// per-page modification encodings of one update transaction plus the
/// database version vector the commit produces.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteSet {
    /// The committing transaction.
    pub txn: TxnId,
    /// Master-local commit sequence number, assigned in commit order
    /// (strictly increasing, starting at 1 for each master incarnation).
    /// Slaves acknowledge the highest contiguously enqueued `seq` with
    /// one cumulative [`Msg::CumAck`] instead of a per-txn ack.
    pub seq: u64,
    /// The version vector the database enters when this commit applies.
    /// Only the entries of tables in the write set were incremented.
    pub versions: VersionVector,
    /// Per-page byte diffs, in first-write order.
    pub pages: Vec<(PageId, PageDiff)>,
}

impl Wire for WriteSet {
    fn encoded_len(&self) -> usize {
        self.txn.encoded_len()
            + 8
            + self.versions.encoded_len()
            + 4
            + self.pages.iter().map(|(p, d)| p.encoded_len() + Wire::encoded_len(d)).sum::<usize>()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.txn.encode_into(out);
        put_u64(out, self.seq);
        self.versions.encode_into(out);
        put_u32(out, self.pages.len() as u32);
        for (page, diff) in &self.pages {
            page.encode_into(out);
            diff.encode_into(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        let txn = TxnId::decode(r)?;
        let seq = r.u64()?;
        let versions = VersionVector::decode(r)?;
        let count = r.u32()? as usize;
        // Minimum per entry: 8-byte PageId + 2-byte empty diff.
        let n = r.seq_len(count, 10)?;
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            let page = PageId::decode(r)?;
            let diff = PageDiff::decode(r)?;
            pages.push((page, diff));
        }
        Ok(WriteSet { txn, seq, versions, pages })
    }
}

/// A group-commit flush: write-sets of consecutive commits coalesced
/// while the previous broadcast was in flight, sent as one frame. The
/// write-sets appear in strictly increasing `seq` order; a slave
/// enqueues them all before acknowledging the last one, so a batch is
/// all-or-nothing with respect to the cumulative-ack watermark.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteSetBatch {
    /// Coalesced write-sets, in commit (`seq`) order. Each is shared
    /// (`Arc`) so the fan-out clones pointers, exactly as for a lone
    /// [`Msg::WriteSet`].
    pub sets: Vec<Arc<WriteSet>>,
}

impl Wire for WriteSetBatch {
    fn encoded_len(&self) -> usize {
        4 + self.sets.iter().map(|ws| ws.encoded_len()).sum::<usize>()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.sets.len() as u32);
        for ws in &self.sets {
            ws.encode_into(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        let count = r.u32()? as usize;
        // Minimum per entry: TxnId (12) + seq (8) + empty VV (2) + count (4).
        let n = r.seq_len(count, 26)?;
        let mut sets = Vec::with_capacity(n);
        for _ in 0..n {
            sets.push(Arc::new(WriteSet::decode(r)?));
        }
        Ok(WriteSetBatch { sets })
    }
}

/// A batch of full page images sent during data migration (paper §4.4):
/// only pages newer than the joining node's checkpointed versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageBatch {
    /// `(page, version, image)` triples.
    pub pages: Vec<(PageId, u64, Vec<u8>)>,
    /// True on the final batch of a migration.
    pub done: bool,
}

impl Wire for PageBatch {
    fn encoded_len(&self) -> usize {
        4 + self.pages.iter().map(|(_, _, img)| 8 + 8 + 4 + img.len()).sum::<usize>() + 1
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.pages.len() as u32);
        for (page, version, img) in &self.pages {
            page.encode_into(out);
            put_u64(out, *version);
            put_u32(out, img.len() as u32);
            out.extend_from_slice(img);
        }
        out.push(u8::from(self.done));
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        let count = r.u32()? as usize;
        let n = r.seq_len(count, 8 + 8 + 4)?;
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            let page = PageId::decode(r)?;
            let version = r.u64()?;
            let len = r.u32()? as usize;
            // The migration applier copies images into page frames; any
            // other length would panic there, so reject it here.
            if len != PAGE_SIZE {
                return Err(DmvError::Codec(format!(
                    "page image of {len} bytes, expected {PAGE_SIZE}"
                )));
            }
            pages.push((page, version, r.bytes(len)?.to_vec()));
        }
        let done = match r.u8()? {
            0 => false,
            1 => true,
            b => return Err(DmvError::Codec(format!("bad bool byte {b}"))),
        };
        Ok(PageBatch { pages, done })
    }
}

/// Messages carried by the cluster transport.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Master → replicas: a pre-commit write-set flush. The write-set is
    /// shared (`Arc`) so an `n`-slave fan-out clones a pointer per
    /// target instead of re-allocating the page diffs `n` times; slaves
    /// keep the same allocation alive in their pending queues until the
    /// diffs are materialized.
    WriteSet(Arc<WriteSet>),
    /// Master → replicas: a group-commit flush of several consecutive
    /// write-sets (strictly increasing `seq`). Shared (`Arc`) so the
    /// fan-out clones one pointer per target for the whole batch.
    WriteSetBatch(Arc<WriteSetBatch>),
    /// Replica → master: cumulative acknowledgement — every write-set
    /// with `seq` up to and including this one has been received and
    /// enqueued. Supersedes per-txn acks: links are FIFO and the master
    /// sends in `seq` order, so the highest seq seen is the highest
    /// contiguous seq.
    CumAck {
        /// Highest contiguously enqueued commit sequence number.
        seq: u64,
    },
    /// Support slave → joining node: migration page batch.
    PageBatch(PageBatch),
    /// Active slave → spare backup: identifiers of hot (buffer-resident)
    /// pages; the spare touches them to keep its cache warm (§4.5).
    PageIdHint {
        /// Hot page ids.
        pages: Vec<PageId>,
    },
    /// Scheduler → replicas after a master failure: discard queued
    /// modification-log records above the last version the scheduler saw
    /// from the failed master (§4.2).
    DiscardAbove {
        /// Highest acknowledged versions.
        versions: VersionVector,
    },
    /// Scheduler → replicas: announce a topology change (new master or
    /// membership); carries the sender so replicas re-target acks.
    Topology {
        /// Current master node.
        master: NodeId,
        /// Current replication targets.
        replicas: Vec<NodeId>,
    },
    /// Master → replicas: the cluster reclamation watermark — the meet
    /// of every pinned reader epoch and every live peer's cumulative-ack
    /// floor. A replica eagerly applies queued diffs up to these
    /// versions and reaps the drained page queues; no reader the
    /// epoch manager knows about can still demand an older version.
    Watermark {
        /// Reclamation watermark (componentwise safe-to-apply bound).
        versions: VersionVector,
    },
}

/// Wire tags of the [`Msg`] variants (protocol version 1).
///
/// Tag 1 (`WRITE_SET_ACK`) is retired: per-txn acks were replaced by
/// cumulative [`Msg::CumAck`] sequence acks. The tag is not reused so a
/// stale peer's ack decodes as an unknown-tag error instead of
/// misparsing.
mod tag {
    pub const WRITE_SET: u8 = 0;
    pub const PAGE_BATCH: u8 = 2;
    pub const PAGE_ID_HINT: u8 = 3;
    pub const DISCARD_ABOVE: u8 = 4;
    pub const TOPOLOGY: u8 = 5;
    pub const WRITE_SET_BATCH: u8 = 6;
    pub const CUM_ACK: u8 = 7;
    pub const WATERMARK: u8 = 8;
}

impl Wire for Msg {
    fn encoded_len(&self) -> usize {
        1 + match self {
            Msg::WriteSet(ws) => ws.encoded_len(),
            Msg::WriteSetBatch(b) => b.encoded_len(),
            Msg::CumAck { .. } => 8,
            Msg::PageBatch(b) => b.encoded_len(),
            Msg::PageIdHint { pages } => 4 + pages.len() * 8,
            Msg::DiscardAbove { versions } => versions.encoded_len(),
            Msg::Topology { master, replicas } => master.encoded_len() + 4 + replicas.len() * 4,
            Msg::Watermark { versions } => versions.encoded_len(),
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Msg::WriteSet(ws) => {
                out.push(tag::WRITE_SET);
                ws.encode_into(out);
            }
            Msg::WriteSetBatch(b) => {
                out.push(tag::WRITE_SET_BATCH);
                b.encode_into(out);
            }
            Msg::CumAck { seq } => {
                out.push(tag::CUM_ACK);
                put_u64(out, *seq);
            }
            Msg::PageBatch(b) => {
                out.push(tag::PAGE_BATCH);
                b.encode_into(out);
            }
            Msg::PageIdHint { pages } => {
                out.push(tag::PAGE_ID_HINT);
                put_u32(out, pages.len() as u32);
                for p in pages {
                    p.encode_into(out);
                }
            }
            Msg::DiscardAbove { versions } => {
                out.push(tag::DISCARD_ABOVE);
                versions.encode_into(out);
            }
            Msg::Topology { master, replicas } => {
                out.push(tag::TOPOLOGY);
                master.encode_into(out);
                put_u32(out, replicas.len() as u32);
                for n in replicas {
                    n.encode_into(out);
                }
            }
            Msg::Watermark { versions } => {
                out.push(tag::WATERMARK);
                versions.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        match r.u8()? {
            tag::WRITE_SET => Ok(Msg::WriteSet(Arc::new(WriteSet::decode(r)?))),
            tag::WRITE_SET_BATCH => Ok(Msg::WriteSetBatch(Arc::new(WriteSetBatch::decode(r)?))),
            tag::CUM_ACK => Ok(Msg::CumAck { seq: r.u64()? }),
            tag::PAGE_BATCH => Ok(Msg::PageBatch(PageBatch::decode(r)?)),
            tag::PAGE_ID_HINT => {
                let count = r.u32()? as usize;
                let n = r.seq_len(count, 8)?;
                let mut pages = Vec::with_capacity(n);
                for _ in 0..n {
                    pages.push(PageId::decode(r)?);
                }
                Ok(Msg::PageIdHint { pages })
            }
            tag::DISCARD_ABOVE => Ok(Msg::DiscardAbove { versions: VersionVector::decode(r)? }),
            tag::TOPOLOGY => {
                let master = NodeId::decode(r)?;
                let count = r.u32()? as usize;
                let n = r.seq_len(count, 4)?;
                let mut replicas = Vec::with_capacity(n);
                for _ in 0..n {
                    replicas.push(NodeId::decode(r)?);
                }
                Ok(Msg::Topology { master, replicas })
            }
            tag::WATERMARK => Ok(Msg::Watermark { versions: VersionVector::decode(r)? }),
            t => Err(DmvError::Codec(format!("unknown message tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::ids::TableId;
    use dmv_common::wire::decode_exact;

    fn sample_writeset(seq: u64, fill: u8) -> WriteSet {
        let before = vec![0u8; PAGE_SIZE];
        let mut after = before.clone();
        after[0..100].fill(fill);
        WriteSet {
            txn: TxnId::new(NodeId(0), seq),
            seq,
            versions: VersionVector::from_entries(vec![seq, 0]),
            pages: vec![(PageId::heap(TableId(0), 0), PageDiff::compute(&before, &after))],
        }
    }

    /// Every `Msg` variant — the satellite's shapes.
    fn all_variants() -> Vec<Msg> {
        vec![
            Msg::WriteSet(Arc::new(sample_writeset(1, 7))),
            Msg::WriteSetBatch(Arc::new(WriteSetBatch {
                sets: vec![Arc::new(sample_writeset(2, 3)), Arc::new(sample_writeset(3, 9))],
            })),
            Msg::WriteSetBatch(Arc::new(WriteSetBatch { sets: vec![] })),
            Msg::CumAck { seq: 42 },
            Msg::CumAck { seq: 0 },
            Msg::PageBatch(PageBatch {
                pages: vec![(PageId::index(TableId(2), 1, 5), 9, vec![3u8; PAGE_SIZE])],
                done: true,
            }),
            Msg::PageBatch(PageBatch { pages: vec![], done: false }),
            Msg::PageIdHint { pages: vec![PageId::heap(TableId(0), 0)] },
            Msg::PageIdHint { pages: vec![] },
            Msg::DiscardAbove { versions: VersionVector::from_entries(vec![4, 0, 2]) },
            Msg::Topology { master: NodeId(0), replicas: vec![NodeId(1), NodeId(10)] },
            Msg::Watermark { versions: VersionVector::from_entries(vec![7, 0, 3]) },
            Msg::Watermark { versions: VersionVector::new(0) },
        ]
    }

    #[test]
    fn encoded_len_is_exact_for_all_variants() {
        for m in all_variants() {
            assert_eq!(m.encode().len(), m.encoded_len(), "encoded_len drift for {m:?}");
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        for m in all_variants() {
            let bytes = m.encode();
            assert_eq!(decode_exact::<Msg>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn writeset_size_tracks_payload() {
        let small = sample_writeset(1, 7);
        let before = vec![0u8; PAGE_SIZE];
        let mut big_after = before.clone();
        big_after.fill(9);
        let big = WriteSet {
            txn: TxnId::new(NodeId(0), 2),
            seq: 2,
            versions: VersionVector::new(2),
            pages: vec![(PageId::heap(TableId(0), 0), PageDiff::compute(&before, &big_after))],
        };
        assert!(big.encoded_len() > small.encoded_len());
        assert!(small.encoded_len() < 300);
    }

    #[test]
    fn msg_sizes_nonzero() {
        for m in all_variants() {
            assert!(m.encoded_len() > 0);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(decode_exact::<Msg>(&[200]), Err(DmvError::Codec(_))));
        // The retired per-txn ack tag must not decode to anything.
        let stale_ack = {
            let mut b = vec![1u8];
            TxnId::new(NodeId(1), 1).encode_into(&mut b);
            b
        };
        assert!(matches!(decode_exact::<Msg>(&stale_ack), Err(DmvError::Codec(_))));
    }

    #[test]
    fn batch_overhead_is_one_tag_and_one_count() {
        // A batch spends one tag byte and one 4-byte count no matter how
        // many write-sets it carries; the per-commit savings (frame
        // headers, send syscalls, per-target ack round-trips) live in
        // the transport and ack tiers, not in the payload encoding.
        let a = sample_writeset(1, 7);
        let b = sample_writeset(2, 9);
        let batch = Msg::WriteSetBatch(Arc::new(WriteSetBatch {
            sets: vec![Arc::new(a.clone()), Arc::new(b.clone())],
        }));
        assert_eq!(batch.encoded_len(), 1 + 4 + a.encoded_len() + b.encoded_len());
    }

    #[test]
    fn wrong_page_image_size_rejected() {
        let bad =
            PageBatch { pages: vec![(PageId::heap(TableId(0), 0), 1, vec![0u8; 16])], done: false };
        let bytes = bad.encode();
        assert!(matches!(decode_exact::<PageBatch>(&bytes), Err(DmvError::Codec(_))));
    }

    #[test]
    fn truncated_message_never_panics() {
        let full = Msg::WriteSet(Arc::new(sample_writeset(3, 5))).encode();
        for cut in 0..full.len() {
            assert!(decode_exact::<Msg>(&full[..cut]).is_err(), "cut at {cut}");
        }
    }
}
