//! A replica of the in-memory tier: one `MemDb` plus its replication
//! machinery. The same node type plays every role — master (update
//! execution, pre-commit broadcast), active slave (tagged reads), spare
//! backup (stream subscription only) — and changes role during
//! reconfiguration, exactly as the paper's nodes do.

use crate::applier::PendingApplier;
use crate::messages::{Msg, PageBatch, WriteSet};
use crate::trace::{SharedTap, TraceEvent};
use dmv_common::clock::SimClock;
use dmv_common::config::CpuProfile;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{NodeId, PageId, ReplicaRole, TxnId};
use dmv_common::version::VersionVector;
use dmv_memdb::{MemDb, MemDbOptions};
use dmv_net::{DynTransport, Endpoint};
use dmv_pagestore::checkpoint::{fuzzy_checkpoint, CheckpointImage};
use dmv_pagestore::store::Residency;
use dmv_sql::exec::{execute, ResultSet, StatementRunner};
use dmv_sql::query::Query;
use dmv_sql::schema::Schema;
// Shimmed primitives: parking_lot/std in normal builds, model-checked
// under `--cfg dmv_check` (see crates/check).
use dmv_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use dmv_check::sync::{Condvar, Mutex, RwLock};
use dmv_common::clock::wall_deadline;
use dmv_common::wire::Wire;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for one replica node.
#[derive(Clone)]
pub struct ReplicaConfig {
    /// Clock shared by the whole cluster.
    pub clock: SimClock,
    /// CPU cost model for query execution.
    pub cpu: CpuProfile,
    /// Page-in latency (mmap fault) for non-resident pages.
    pub fault_latency: Duration,
    /// Lock wait timeout (wall).
    pub lock_timeout: Duration,
    /// Bound on waiting for replication acks / missing versions (wall).
    pub ack_timeout: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            clock: SimClock::default(),
            cpu: CpuProfile::zero(),
            fault_latency: Duration::ZERO,
            lock_timeout: Duration::from_millis(250),
            ack_timeout: Duration::from_secs(2),
        }
    }
}

/// Counters exposed by a replica.
#[derive(Debug, Default)]
pub struct ReplicaStats {
    /// Update transactions committed (as master).
    pub commits: AtomicU64,
    /// Read-only transactions served (as slave).
    pub reads: AtomicU64,
    /// Reads aborted by version inconsistency on this node.
    pub version_aborts: AtomicU64,
}

/// A [`StatementRunner`] bound to one open transaction on a replica,
/// failing fast if the node is killed mid-transaction.
struct NodeRunner<'a, 'db> {
    node: &'a ReplicaNode,
    inner: &'a mut dmv_memdb::Txn<'db>,
}

impl StatementRunner for NodeRunner<'_, '_> {
    fn run(&mut self, q: &Query) -> DmvResult<ResultSet> {
        if !self.node.is_alive() {
            return Err(DmvError::NodeFailed(self.node.id));
        }
        execute(self.inner, q)
    }
}

/// One in-memory database replica.
pub struct ReplicaNode {
    id: NodeId,
    db: Arc<MemDb>,
    applier: Arc<PendingApplier>,
    net: DynTransport<Msg>,
    clock: SimClock,
    role: RwLock<ReplicaRole>,
    alive: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    // master state
    dbversion: Mutex<VersionVector>,
    commit_seq: Mutex<()>,
    /// Serializes broadcasts in version order; always acquired while
    /// still holding `commit_seq` (lock chaining), never the reverse.
    bcast: Mutex<()>,
    targets: RwLock<Vec<NodeId>>,
    acks: Mutex<HashMap<TxnId, HashSet<NodeId>>>,
    acks_cv: Condvar,
    ack_timeout: Duration,
    // migration (joiner side)
    migration_done: Mutex<bool>,
    migration_cv: Condvar,
    // checkpointing
    checkpoint: Mutex<CheckpointImage>,
    /// Operation counters.
    pub stats: ReplicaStats,
    receiver: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Optional history tap (deterministic simulation testing).
    tap: RwLock<Option<SharedTap>>,
}

impl ReplicaNode {
    /// Creates a replica, registers it on the transport and starts its
    /// receiver thread. Any [`dmv_net::Transport`] works: the simulated
    /// fabric for experiments, real TCP for multi-process deployments.
    pub fn start(
        id: NodeId,
        schema: Schema,
        role: ReplicaRole,
        net: DynTransport<Msg>,
        cfg: ReplicaConfig,
    ) -> Arc<Self> {
        let residency = Residency::new(cfg.clock, cfg.fault_latency);
        let db = Arc::new(MemDb::new(
            schema.clone(),
            MemDbOptions {
                node: id,
                residency,
                cpu: cfg.cpu,
                clock: cfg.clock,
                lock_timeout: cfg.lock_timeout,
                cpu_permits: 2,
            },
        ));
        let applier =
            Arc::new(PendingApplier::new(Arc::clone(db.store()), schema.len(), cfg.ack_timeout));
        db.set_gate(Arc::clone(&applier) as Arc<dyn dmv_memdb::ReadGate>);
        let node = Arc::new(ReplicaNode {
            id,
            db,
            applier,
            net: Arc::clone(&net),
            clock: cfg.clock,
            role: RwLock::new(role),
            alive: Arc::new(AtomicBool::new(true)),
            shutdown: Arc::new(AtomicBool::new(false)),
            dbversion: Mutex::new(VersionVector::new(schema.len())),
            commit_seq: Mutex::new(()),
            bcast: Mutex::new(()),
            targets: RwLock::new(Vec::new()),
            acks: Mutex::new(HashMap::new()),
            acks_cv: Condvar::new(),
            ack_timeout: cfg.ack_timeout,
            migration_done: Mutex::new(false),
            migration_cv: Condvar::new(),
            checkpoint: Mutex::new(CheckpointImage::empty()),
            stats: ReplicaStats::default(),
            receiver: Mutex::new(None),
            tap: RwLock::new(None),
        });
        let endpoint = net.register(id);
        let weak = Arc::downgrade(&node);
        let handle = std::thread::Builder::new()
            .name(format!("replica-{id}"))
            .spawn(move || {
                while let Some(node) = weak.upgrade() {
                    if node.shutdown.load(Ordering::Acquire) || !endpoint.is_alive() {
                        break;
                    }
                    match endpoint.recv_timeout(Duration::from_millis(20)) {
                        Ok(env) => node.handle_msg(env.from, env.msg, &*endpoint),
                        Err(DmvError::NodeFailed(_)) => break,
                        Err(_) => {} // timeout: loop
                    }
                    drop(node);
                }
            })
            .expect("spawn receiver"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
        *node.receiver.lock() = Some(handle);
        node
    }

    fn handle_msg(&self, from: NodeId, msg: Msg, endpoint: &dyn Endpoint<Msg>) {
        match msg {
            Msg::WriteSet(ws) => {
                let txn = ws.txn;
                self.applier.enqueue(&ws);
                let ack = Msg::WriteSetAck { txn };
                let size = ack.encoded_len();
                let _ = endpoint.send(from, ack, size);
            }
            Msg::WriteSetAck { txn } => {
                self.acks.lock().entry(txn).or_default().insert(from);
                self.acks_cv.notify_all();
            }
            Msg::PageBatch(batch) => {
                self.apply_page_batch(&batch);
                if batch.done {
                    *self.migration_done.lock() = true;
                    self.migration_cv.notify_all();
                }
            }
            Msg::PageIdHint { pages } => {
                // Touch the hinted pages so they stay swapped in (§4.5).
                let store = self.db.store();
                for id in pages {
                    if let Some(cell) = store.get(id) {
                        store.fault_in(&cell);
                    }
                }
            }
            Msg::DiscardAbove { versions } => {
                self.applier.discard_above(&versions);
            }
            Msg::Topology { .. } => {}
        }
    }

    fn apply_page_batch(&self, batch: &PageBatch) {
        let store = self.db.store();
        for (id, version, image) in &batch.pages {
            // A page the joiner does not have at all must be installed
            // even at version 0 (tables untouched since the initial
            // load): a just-created cell is also at version 0, and the
            // newer-than check alone would silently drop the image.
            let absent = !store.contains(*id);
            let cell = store.get_or_create(*id);
            let mut page = cell.latch.write();
            if absent || *version > page.version {
                page.data_mut().copy_from_slice(image);
                page.version = *version;
            }
            drop(page);
            // Migrated pages arrive over the network into memory.
            cell.set_resident(true);
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's database.
    pub fn db(&self) -> &Arc<MemDb> {
        &self.db
    }

    /// The node's pending-update applier.
    pub fn applier(&self) -> &Arc<PendingApplier> {
        &self.applier
    }

    /// Installs a history tap on this node and its applier.
    pub fn set_trace_tap(&self, tap: SharedTap) {
        self.applier.set_trace(self.id, Arc::clone(&tap));
        *self.tap.write() = Some(tap);
    }

    fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(tap) = self.tap.read().as_ref() {
            tap.record(f());
        }
    }

    /// Current role.
    pub fn role(&self) -> ReplicaRole {
        *self.role.read()
    }

    /// Sets the role (used by reconfiguration).
    pub fn set_role(&self, role: ReplicaRole) {
        *self.role.write() = role;
    }

    /// True until killed.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Replication targets of this master.
    pub fn targets(&self) -> Vec<NodeId> {
        self.targets.read().clone()
    }

    /// Replaces the replication target list (on a master).
    pub fn set_targets(&self, t: Vec<NodeId>) {
        *self.targets.write() = t;
    }

    /// Adds a replication target, returning the current database version
    /// vector — the join protocol's "subscribe and obtain the current
    /// DBVersion" step. Holding `commit_seq` guarantees every commit
    /// with a version beyond the returned vector sees the new target in
    /// its snapshot; earlier commits may still be on the wire, but their
    /// effects reach the joiner through data migration, which waits on a
    /// support slave until the returned vector has fully arrived.
    pub fn subscribe(&self, node: NodeId) -> VersionVector {
        let _g = self.commit_seq.lock();
        let mut t = self.targets.write();
        if !t.contains(&node) {
            t.push(node);
        }
        self.dbversion.lock().clone()
    }

    /// Removes a replication target.
    pub fn unsubscribe(&self, node: NodeId) {
        self.targets.write().retain(|n| *n != node);
    }

    /// The master's current database version vector.
    pub fn dbversion(&self) -> VersionVector {
        self.dbversion.lock().clone()
    }

    /// Executes an update transaction as master via a statement-driving
    /// closure (later statements may depend on earlier results): run
    /// under 2PL, then the Figure 2 pre-commit sequence (write-set,
    /// atomic version increment, broadcast, ack wait), then local commit
    /// and lock release. Returns the new version vector.
    ///
    /// # Errors
    ///
    /// Statement errors abort the transaction; `NodeFailed` if this node
    /// is killed mid-transaction (its effects are discarded).
    pub fn execute_update_with(
        &self,
        f: &mut dyn FnMut(&mut dyn StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<VersionVector> {
        if !self.is_alive() {
            return Err(DmvError::NodeFailed(self.id));
        }
        let mut txn = self.db.begin_update();
        {
            let mut runner = NodeRunner { node: self, inner: &mut txn };
            if let Err(e) = f(&mut runner) {
                txn.abort();
                return Err(e);
            }
        }
        if !txn.has_writes() {
            txn.commit(None);
            return Ok(self.dbversion());
        }
        // Pre-commit (Figure 2): all page locks stay held until the
        // local commit after the ack wait, but the global commit_seq
        // section covers only diff capture and the version-vector bump.
        // The broadcast chains onto `bcast` — acquired before commit_seq
        // is released, so write-sets enter every FIFO link in version
        // order — letting the next commit capture its diffs while this
        // one is still on the wire, and the ack wait runs with no
        // commit-path lock held at all.
        let seq_guard = self.commit_seq.lock();
        let pages = txn.precommit();
        let mut dbv = self.dbversion.lock();
        for t in txn.write_tables() {
            dbv.bump(t);
        }
        let new_v = dbv.clone();
        drop(dbv);
        // The one deep allocation per commit: every target link and
        // every slave queue shares this Arc.
        let ws = Arc::new(WriteSet { txn: txn.id(), versions: new_v.clone(), pages });
        let targets_now = self.targets.read().clone();
        let bcast_guard = self.bcast.lock();
        drop(seq_guard);
        // One fan-out call: the transport encodes once and shares the
        // bytes across links; a dead target is skipped (reconfiguration
        // handles it).
        let msg = Msg::WriteSet(Arc::clone(&ws));
        let size = msg.encoded_len();
        self.net.broadcast(self.id, &targets_now, &msg, size);
        drop(bcast_guard);
        self.wait_for_acks(ws.txn, &targets_now);
        if !self.is_alive() {
            // Failed before confirming: a new master will tell replicas to
            // discard the partially propagated transaction.
            txn.abort();
            return Err(DmvError::NodeFailed(self.id));
        }
        txn.commit(Some(&new_v));
        self.stats.commits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter, read only for reporting
        Ok(new_v)
    }

    /// Batch form of [`ReplicaNode::execute_update_with`]: executes the
    /// given statements in order and returns their results plus the new
    /// version vector.
    ///
    /// # Errors
    ///
    /// Same as [`ReplicaNode::execute_update_with`].
    pub fn execute_update(&self, queries: &[Query]) -> DmvResult<(Vec<ResultSet>, VersionVector)> {
        let mut results = Vec::with_capacity(queries.len());
        let version = self.execute_update_with(&mut |r| {
            for q in queries {
                results.push(r.run(q)?);
            }
            Ok(())
        })?;
        Ok((results, version))
    }

    fn wait_for_acks(&self, txn: TxnId, targets: &[NodeId]) {
        let deadline = wall_deadline(self.ack_timeout);
        let mut acks = self.acks.lock();
        loop {
            let got = acks.get(&txn);
            let all = targets
                .iter()
                .all(|t| !self.net.is_alive(*t) || got.is_some_and(|s| s.contains(t)));
            if all {
                acks.remove(&txn);
                return;
            }
            if self.acks_cv.wait_until(&mut acks, deadline).timed_out() {
                acks.remove(&txn);
                return; // dead targets are reconfigured away
            }
        }
    }

    /// Executes a read-only transaction at the scheduler-assigned tag,
    /// driven by a statement closure.
    ///
    /// # Errors
    ///
    /// `VersionConflict` (retryable) if a required page version was
    /// already surpassed; `NodeFailed` if this node is killed mid-read.
    pub fn execute_read_with(
        &self,
        tag: &VersionVector,
        f: &mut dyn FnMut(&mut dyn StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<()> {
        if !self.is_alive() {
            return Err(DmvError::NodeFailed(self.id));
        }
        let mut txn = self.db.begin_read_tagged(tag.clone());
        {
            let mut runner = NodeRunner { node: self, inner: &mut txn };
            if let Err(e) = f(&mut runner) {
                if matches!(e, DmvError::VersionConflict { .. }) {
                    self.stats.version_aborts.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter, read only for reporting
                }
                return Err(e);
            }
        }
        txn.commit(None);
        self.stats.reads.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter, read only for reporting
        Ok(())
    }

    /// Batch form of [`ReplicaNode::execute_read_with`].
    ///
    /// # Errors
    ///
    /// Same as [`ReplicaNode::execute_read_with`].
    pub fn execute_read(
        &self,
        queries: &[Query],
        tag: &VersionVector,
    ) -> DmvResult<Vec<ResultSet>> {
        let mut results = Vec::with_capacity(queries.len());
        self.execute_read_with(tag, &mut |r| {
            for q in queries {
                results.push(r.run(q)?);
            }
            Ok(())
        })?;
        Ok(results)
    }

    /// Promotes this slave to master after a master failure: queued
    /// records beyond `latest` (the scheduler's last acknowledged
    /// version) were partially propagated and are discarded, the rest is
    /// applied, and the version counter continues from `latest`.
    pub fn promote_to_master(&self, latest: &VersionVector) {
        self.applier.discard_above(latest);
        self.applier.apply_all();
        *self.dbversion.lock() = latest.clone();
        self.set_role(ReplicaRole::Master);
        self.emit(|| TraceEvent::Promoted { node: self.id, from: latest.clone() });
    }

    /// Takes a fuzzy checkpoint (kept as this node's "local stable
    /// storage" for reintegration after a crash).
    pub fn take_checkpoint(&self) {
        let now = self.clock.now_paper();
        let ck = fuzzy_checkpoint(self.db.store(), now);
        *self.checkpoint.lock() = ck;
    }

    /// The last checkpoint image.
    pub fn checkpoint(&self) -> CheckpointImage {
        self.checkpoint.lock().clone()
    }

    /// Support-slave side of data migration (§4.4): waits until this
    /// node has received everything up to `target`, fully applies its
    /// pending queues, and returns the pages strictly newer than the
    /// joiner's versions.
    ///
    /// # Errors
    ///
    /// `Network` if `target` never arrives within the ack timeout.
    pub fn collect_pages_newer(
        &self,
        joiner_versions: &HashMap<PageId, u64>,
        target: &VersionVector,
    ) -> DmvResult<Vec<(PageId, u64, Vec<u8>)>> {
        // Migration tolerates a long wait: the replication stream may be
        // backlogged right after a failure.
        self.applier.wait_received_for(target, Duration::from_secs(30))?;
        let store = self.db.store();
        let mut out = Vec::new();
        for id in store.page_ids() {
            self.applier.apply_page(id);
            let Some(cell) = store.get(id) else { continue };
            let page = cell.latch.read();
            let joiner_v = joiner_versions.get(&id).copied();
            let newer = match joiner_v {
                None => true,
                Some(v) => page.version > v,
            };
            if newer {
                out.push((id, page.version, page.to_image()));
            }
        }
        Ok(out)
    }

    /// Joiner side: waits until the support slave's final page batch has
    /// arrived.
    ///
    /// # Errors
    ///
    /// `Network` on timeout.
    pub fn wait_migration_done(&self, timeout: Duration) -> DmvResult<()> {
        let deadline = wall_deadline(timeout);
        let mut done = self.migration_done.lock();
        while !*done {
            if self.migration_cv.wait_until(&mut done, deadline).timed_out() {
                return Err(DmvError::Network("migration did not complete".into()));
            }
        }
        *done = false; // reset for a future migration
        Ok(())
    }

    /// Restores this node's database from a checkpoint (crash recovery
    /// before reintegration). Pages restore *cold* — they live in the
    /// recovering node's on-disk image until touched.
    pub fn restore_from_checkpoint(&self, ck: &CheckpointImage) {
        ck.restore_into(self.db.store(), false);
    }

    /// Copies another replica's entire store into this one (the shared
    /// initial "mmap of the same on-disk database" at startup). Pages
    /// arrive resident.
    pub fn clone_pages_from(&self, other: &ReplicaNode) {
        let src = other.db.store();
        let dst = self.db.store();
        for id in src.page_ids() {
            let Some(s) = src.get(id) else { continue };
            let sp = s.latch.read();
            let cell = dst.get_or_create(id);
            let mut dp = cell.latch.write();
            dp.data_mut().copy_from_slice(sp.data());
            dp.version = sp.version;
        }
        *self.dbversion.lock() = other.dbversion();
    }

    /// Hot pages: the ids of currently resident pages (sent to spares by
    /// the page-id-transfer warmup strategy).
    pub fn hot_pages(&self) -> Vec<PageId> {
        let store = self.db.store();
        store
            .page_ids()
            .into_iter()
            .filter(|id| store.get(*id).is_some_and(|c| c.is_resident()))
            .collect()
    }

    /// Touches `pages` (faults them in, charging page-in cost).
    pub fn touch_pages(&self, pages: &[PageId]) {
        let store = self.db.store();
        for id in pages {
            if let Some(cell) = store.get(*id) {
                store.fault_in(&cell);
            }
        }
    }

    /// Marks the whole database non-resident (cold cache).
    pub fn evict_all(&self) {
        self.db.store().evict_all();
    }

    /// Resident pages (diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.db.store().resident_count()
    }

    /// Fail-stop kill: the node stops serving and its endpoint closes.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        self.net.kill(self.id);
        self.set_role(ReplicaRole::Offline);
    }

    /// Clean shutdown (stops the receiver thread).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.net.kill(self.id);
        if let Some(h) = self.receiver.lock().take() {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

impl std::fmt::Debug for ReplicaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("id", &self.id)
            .field("role", &self.role())
            .field("alive", &self.is_alive())
            .field("dbversion", &format!("{}", self.dbversion()))
            .finish()
    }
}

impl Drop for ReplicaNode {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.receiver.lock().take() {
            // Never join from the receiver thread itself (it may hold the
            // last Arc when the node is dropped).
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}
