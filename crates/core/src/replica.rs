//! A replica of the in-memory tier: one `MemDb` plus its replication
//! machinery. The same node type plays every role — master (update
//! execution, pre-commit broadcast), active slave (tagged reads), spare
//! backup (stream subscription only) — and changes role during
//! reconfiguration, exactly as the paper's nodes do.

use crate::ack::AckTracker;
use crate::applier::PendingApplier;
use crate::messages::{Msg, PageBatch, WriteSet, WriteSetBatch};
use crate::trace::{SharedTap, TraceEvent};
use dmv_common::clock::SimClock;
use dmv_common::config::{BufferBudget, CpuProfile, GroupCommitConfig};
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{NodeId, PageId, ReplicaRole};
use dmv_common::version::VersionVector;
use dmv_epoch::EpochManager;
use dmv_memdb::{MemDb, MemDbOptions};
use dmv_net::{DynTransport, Endpoint};
use dmv_pagestore::checkpoint::{fuzzy_checkpoint, CheckpointImage};
use dmv_pagestore::store::Residency;
use dmv_sql::exec::{execute, ResultSet, StatementRunner};
use dmv_sql::query::Query;
use dmv_sql::schema::Schema;
// Shimmed primitives: parking_lot/std in normal builds, model-checked
// under `--cfg dmv_check` (see crates/check).
use dmv_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use dmv_check::sync::{Condvar, Mutex, RwLock};
use dmv_common::clock::wall_deadline;
use dmv_common::wire::Wire;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for one replica node.
#[derive(Clone)]
pub struct ReplicaConfig {
    /// Clock shared by the whole cluster.
    pub clock: SimClock,
    /// CPU cost model for query execution.
    pub cpu: CpuProfile,
    /// Page-in latency (mmap fault) for non-resident pages.
    pub fault_latency: Duration,
    /// Lock wait timeout (wall).
    pub lock_timeout: Duration,
    /// Bound on waiting for replication acks / missing versions (wall).
    pub ack_timeout: Duration,
    /// Group-commit batching bounds (see [`GroupCommitConfig`]).
    pub group_commit: GroupCommitConfig,
    /// Resident-byte budget for this node's page store (see
    /// [`BufferBudget`]); unbounded by default.
    pub buffer_budget: BufferBudget,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            clock: SimClock::default(),
            cpu: CpuProfile::zero(),
            fault_latency: Duration::ZERO,
            lock_timeout: Duration::from_millis(250),
            ack_timeout: Duration::from_secs(2),
            group_commit: GroupCommitConfig::default(),
            buffer_budget: BufferBudget::unbounded(),
        }
    }
}

/// Counters exposed by a replica.
#[derive(Debug, Default)]
pub struct ReplicaStats {
    /// Update transactions committed (as master).
    pub commits: AtomicU64,
    /// Read-only transactions served (as slave).
    pub reads: AtomicU64,
    /// Reads aborted by version inconsistency on this node.
    pub version_aborts: AtomicU64,
}

/// Coalescer state for the master's group-commit pipeline.
struct BatchState {
    /// Write-sets committed but not yet broadcast, in seq order.
    queue: Vec<Arc<WriteSet>>,
    /// A flusher thread is draining the queue. Set only under the batch
    /// lock by the thread that will flush; cleared by that thread when
    /// the queue is empty. This single-flusher invariant is what keeps
    /// broadcasts totally ordered by seq without a separate lock.
    in_flight: bool,
    /// Test hook (DST): while true, pushes accumulate and nobody
    /// becomes flusher; `release_flush` drains on the caller's thread.
    hold: bool,
}

/// A [`StatementRunner`] bound to one open transaction on a replica,
/// failing fast if the node is killed mid-transaction.
struct NodeRunner<'a, 'db> {
    node: &'a ReplicaNode,
    inner: &'a mut dmv_memdb::Txn<'db>,
}

impl StatementRunner for NodeRunner<'_, '_> {
    fn run(&mut self, q: &Query) -> DmvResult<ResultSet> {
        if !self.node.is_alive() {
            return Err(DmvError::NodeFailed(self.node.id));
        }
        execute(self.inner, q)
    }
}

/// One in-memory database replica.
pub struct ReplicaNode {
    id: NodeId,
    db: Arc<MemDb>,
    applier: Arc<PendingApplier>,
    net: DynTransport<Msg>,
    clock: SimClock,
    role: RwLock<ReplicaRole>,
    alive: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    // master state
    dbversion: Mutex<VersionVector>,
    /// The commit critical section; its value is the commit sequence
    /// counter, so seq assignment order *is* commit order by
    /// construction.
    commit_seq: Mutex<u64>,
    targets: RwLock<Vec<NodeId>>,
    /// Write-set coalescer. A committer pushes while still holding
    /// `commit_seq` (lock chaining — queue order is seq order) and the
    /// first pusher to find no flush in flight becomes the flusher,
    /// draining the queue batch by batch until it is empty. No timers:
    /// a lone commit flushes itself immediately; under load, commits
    /// accumulated during the in-flight broadcast go out as one
    /// [`Msg::WriteSetBatch`] the moment it completes.
    batch: Mutex<BatchState>,
    /// Per-peer cumulative ack watermarks (replaces per-txn ack sets).
    acks: AckTracker,
    /// Cluster epoch manager, installed by the cluster/scheduler tier.
    /// Masters translate peer cumulative acks into vector floors for it;
    /// `None` leaves every epoch hook a no-op (standalone replicas).
    epoch: RwLock<Option<Arc<EpochManager>>>,
    /// Master-side `seq → version vector` log bridging scalar
    /// [`Msg::CumAck`]s to the epoch manager's vector floors. Appended
    /// under `commit_seq` (so it is seq-sorted by construction); pruned
    /// up to the slowest live target's ack as floors advance.
    seq_log: Mutex<VecDeque<(u64, VersionVector)>>,
    ack_timeout: Duration,
    group_commit: GroupCommitConfig,
    // migration (joiner side)
    migration_done: Mutex<bool>,
    migration_cv: Condvar,
    // checkpointing
    checkpoint: Mutex<CheckpointImage>,
    /// Operation counters.
    pub stats: ReplicaStats,
    receiver: Mutex<Option<dmv_check::thread::JoinHandle<()>>>,
    /// Optional history tap (deterministic simulation testing).
    tap: RwLock<Option<SharedTap>>,
}

impl ReplicaNode {
    /// Creates a replica, registers it on the transport and starts its
    /// receiver thread. Any [`dmv_net::Transport`] works: the simulated
    /// fabric for experiments, real TCP for multi-process deployments.
    pub fn start(
        id: NodeId,
        schema: Schema,
        role: ReplicaRole,
        net: DynTransport<Msg>,
        cfg: ReplicaConfig,
    ) -> Arc<Self> {
        let residency = Residency::new(cfg.clock, cfg.fault_latency);
        let db = Arc::new(MemDb::new(
            schema.clone(),
            MemDbOptions {
                node: id,
                residency,
                cpu: cfg.cpu,
                clock: cfg.clock,
                lock_timeout: cfg.lock_timeout,
                cpu_permits: 2,
            },
        ));
        let applier =
            Arc::new(PendingApplier::new(Arc::clone(db.store()), schema.len(), cfg.ack_timeout));
        db.set_gate(Arc::clone(&applier) as Arc<dyn dmv_memdb::ReadGate>);
        db.store().set_budget_bytes(cfg.buffer_budget.max_resident_bytes as u64);
        let node = Arc::new(ReplicaNode {
            id,
            db,
            applier,
            net: Arc::clone(&net),
            clock: cfg.clock,
            role: RwLock::new(role),
            alive: Arc::new(AtomicBool::new(true)),
            shutdown: Arc::new(AtomicBool::new(false)),
            dbversion: Mutex::new(VersionVector::new(schema.len())),
            commit_seq: Mutex::new(0),
            targets: RwLock::new(Vec::new()),
            batch: Mutex::new(BatchState { queue: Vec::new(), in_flight: false, hold: false }),
            acks: AckTracker::new(),
            epoch: RwLock::new(None),
            seq_log: Mutex::new(VecDeque::new()),
            ack_timeout: cfg.ack_timeout,
            group_commit: cfg.group_commit,
            migration_done: Mutex::new(false),
            migration_cv: Condvar::new(),
            checkpoint: Mutex::new(CheckpointImage::empty()),
            stats: ReplicaStats::default(),
            receiver: Mutex::new(None),
            tap: RwLock::new(None),
        });
        dmv_check::race::label(&node.dbversion, "dbversion");
        dmv_check::race::label(&node.commit_seq, "commit_seq");
        dmv_check::race::label(&node.targets, "targets");
        dmv_check::race::label(&node.batch, "batch");
        dmv_check::race::label(&node.seq_log, "seq_log");
        let endpoint = net.register(id);
        let weak = Arc::downgrade(&node);
        let handle = dmv_check::thread::Builder::new()
            .name(format!("replica-{id}"))
            .spawn(move || {
                while let Some(node) = weak.upgrade() {
                    if node.shutdown.load(Ordering::Acquire) || !endpoint.is_alive() {
                        break;
                    }
                    match endpoint.recv_timeout(Duration::from_millis(20)) {
                        Ok(env) => node.handle_msg(env.from, env.msg, &*endpoint),
                        Err(DmvError::NodeFailed(_)) => break,
                        Err(_) => {} // timeout: loop
                    }
                    drop(node);
                }
            })
            .expect("spawn receiver"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
        *node.receiver.lock() = Some(handle);
        node
    }

    fn handle_msg(&self, from: NodeId, msg: Msg, endpoint: &dyn Endpoint<Msg>) {
        match msg {
            Msg::WriteSet(ws) => {
                self.enqueue_and_ack(from, std::slice::from_ref(&ws), endpoint);
            }
            Msg::WriteSetBatch(batch) => {
                self.enqueue_and_ack(from, &batch.sets, endpoint);
            }
            Msg::CumAck { seq } => {
                // Floor before record: `record` wakes the parked
                // committer, and anything observing the settled commit
                // (the DST harness's GC sweep in particular) must already
                // see this ack reflected in the epoch peer floors.
                self.note_peer_floor(from, seq);
                self.acks.record(from, seq);
            }
            Msg::PageBatch(batch) => {
                self.apply_page_batch(&batch);
                if batch.done {
                    *self.migration_done.lock() = true;
                    self.migration_cv.notify_all();
                }
            }
            Msg::PageIdHint { pages } => {
                // Touch the hinted pages so they stay swapped in (§4.5).
                let store = self.db.store();
                for id in pages {
                    if let Some(cell) = store.get(id) {
                        store.fault_in(&cell);
                    }
                }
            }
            Msg::DiscardAbove { versions } => {
                self.applier.discard_above(&versions);
            }
            Msg::Topology { .. } => {}
            Msg::Watermark { versions } => {
                let reaped = self.applier.reclaim_up_to(&versions);
                self.emit(|| TraceEvent::Reclaimed { node: self.id, watermark: versions, reaped });
            }
        }
    }

    /// Master-side epoch hook: translates `peer`'s scalar cumulative-ack
    /// watermark into the version vector of the newest commit it covers
    /// and feeds that to the epoch manager as the peer's reclamation
    /// floor. Also prunes the seq log up to the slowest live target's
    /// ack, bounding it by the ack spread instead of the commit history.
    fn note_peer_floor(&self, peer: NodeId, acked: u64) {
        let Some(epoch) = self.epoch.read().clone() else { return };
        let acked = acked.max(self.acks.watermark(peer));
        let min_acked = {
            let targets = self.targets.read();
            targets.iter().map(|t| self.acks.watermark(*t)).min().unwrap_or(acked)
        };
        let floor = {
            let mut log = self.seq_log.lock();
            // Keep the newest entry at or below every target's ack so
            // it stays resolvable for slower peers' future acks.
            while log.len() > 1 && log[1].0 <= min_acked {
                log.pop_front();
            }
            let idx = log.partition_point(|(s, _)| *s <= acked);
            idx.checked_sub(1).map(|i| log[i].1.clone())
        };
        if let Some(floor) = floor {
            epoch.set_peer_floor(self.id, peer, floor);
        }
    }

    /// Slave side of replication: enqueue the frame's write-sets (one
    /// shard-lock pass for the whole batch) and acknowledge the last
    /// seq cumulatively. The master sends frames in strictly increasing
    /// seq order over a FIFO link, so the last seq of a frame *is* the
    /// highest contiguously received seq — no per-sender bookkeeping.
    fn enqueue_and_ack(&self, from: NodeId, sets: &[Arc<WriteSet>], endpoint: &dyn Endpoint<Msg>) {
        let Some(last) = sets.last() else { return };
        self.applier.enqueue_batch(sets);
        let ack = Msg::CumAck { seq: last.seq };
        let size = ack.encoded_len();
        let _ = endpoint.send(from, ack, size);
    }

    fn apply_page_batch(&self, batch: &PageBatch) {
        let store = self.db.store();
        for (id, version, image) in &batch.pages {
            // A page the joiner does not have at all must be installed
            // even at version 0 (tables untouched since the initial
            // load): a just-created cell is also at version 0, and the
            // newer-than check alone would silently drop the image.
            let absent = !store.contains(*id);
            let cell = store.get_or_create(*id);
            let mut page = cell.latch.write();
            if absent || *version > page.version {
                page.data_mut().copy_from_slice(image);
                page.version = *version;
            }
            drop(page);
            // Migrated pages arrive over the network into memory.
            cell.set_resident(true);
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's database.
    pub fn db(&self) -> &Arc<MemDb> {
        &self.db
    }

    /// The node's pending-update applier.
    pub fn applier(&self) -> &Arc<PendingApplier> {
        &self.applier
    }

    /// Installs a history tap on this node and its applier.
    pub fn set_trace_tap(&self, tap: SharedTap) {
        self.applier.set_trace(self.id, Arc::clone(&tap));
        *self.tap.write() = Some(tap);
    }

    fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(tap) = self.tap.read().as_ref() {
            tap.record(f());
        }
    }

    /// Current role.
    pub fn role(&self) -> ReplicaRole {
        *self.role.read()
    }

    /// Sets the role (used by reconfiguration).
    pub fn set_role(&self, role: ReplicaRole) {
        *self.role.write() = role;
    }

    /// True until killed.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Replication targets of this master.
    pub fn targets(&self) -> Vec<NodeId> {
        self.targets.read().clone()
    }

    /// Replaces the replication target list (on a master). Waiting
    /// commits are woken to re-evaluate against the new list, so a
    /// commit blocked on a just-removed target completes immediately
    /// instead of timing out.
    pub fn set_targets(&self, t: Vec<NodeId>) {
        *self.targets.write() = t;
        self.acks.notify();
    }

    /// Adds a replication target, returning the current database version
    /// vector — the join protocol's "subscribe and obtain the current
    /// DBVersion" step. Holding `commit_seq` guarantees every commit
    /// with a version beyond the returned vector sees the new target in
    /// its snapshot; earlier commits may still be on the wire, but their
    /// effects reach the joiner through data migration, which waits on a
    /// support slave until the returned vector has fully arrived.
    pub fn subscribe(&self, node: NodeId) -> VersionVector {
        let g = self.commit_seq.lock();
        // Everything at or below the current commit seq reaches the
        // joiner via data migration, not acks: floor its watermark so
        // in-flight commits don't wait on acks it will never send.
        self.acks.set_floor(node, *g);
        let mut t = self.targets.write();
        if !t.contains(&node) {
            t.push(node);
        }
        self.dbversion.lock().clone()
    }

    /// Removes a replication target, dropping its ack state and waking
    /// any commit blocked on it (a dead target must not stall commits
    /// until the ack timeout).
    pub fn unsubscribe(&self, node: NodeId) {
        self.targets.write().retain(|n| *n != node);
        self.acks.remove(node);
        // A departed peer must not hold the reclamation watermark back.
        if let Some(epoch) = self.epoch.read().clone() {
            epoch.remove_peer(node);
        }
    }

    /// Installs the cluster's epoch manager on this node. Masters feed
    /// peer ack floors and commit vectors into it; until this is called
    /// every epoch hook is a no-op.
    pub fn set_epoch_manager(&self, epoch: Arc<EpochManager>) {
        *self.epoch.write() = Some(epoch);
    }

    /// Broadcasts the reclamation watermark `wm` to this master's
    /// targets and reclaims locally, returning the local reap count.
    /// Deterministic contexts (DST) instead call
    /// [`crate::applier::PendingApplier::reclaim_up_to`] on each node
    /// directly.
    pub fn broadcast_watermark(&self, wm: &VersionVector) -> usize {
        let targets_now = self.targets.read().clone();
        let msg = Msg::Watermark { versions: wm.clone() };
        let size = msg.encoded_len();
        self.net.broadcast(self.id, &targets_now, &msg, size);
        self.reclaim_local(wm)
    }

    /// Reclaims this node's pending queues up to `wm` (eager apply +
    /// reap), emitting the trace event. Idempotent and monotone-safe:
    /// a second pass at the same or an older watermark is a no-op.
    pub fn reclaim_local(&self, wm: &VersionVector) -> usize {
        let reaped = self.applier.reclaim_up_to(wm);
        self.emit(|| TraceEvent::Reclaimed { node: self.id, watermark: wm.clone(), reaped });
        reaped
    }

    /// The master's current database version vector.
    pub fn dbversion(&self) -> VersionVector {
        self.dbversion.lock().clone()
    }

    /// Test hook (DST): suspends flushing so commits accumulate in the
    /// coalescer queue without going on the wire. Pair with
    /// [`ReplicaNode::release_flush`].
    pub fn hold_flush(&self) {
        self.batch.lock().hold = true;
    }

    /// Test hook (DST): resumes flushing and drains any held queue on
    /// the calling thread — so a fault trigger armed on this node's
    /// outgoing sends fires deterministically mid-batch.
    pub fn release_flush(&self) {
        let flusher = {
            let mut b = self.batch.lock();
            b.hold = false;
            let take_over = !b.in_flight && !b.queue.is_empty();
            if take_over {
                b.in_flight = true;
            }
            take_over
        };
        if flusher {
            self.flush_batches();
        }
    }

    /// Write-sets committed but not yet broadcast (test hook).
    pub fn pending_flush_count(&self) -> usize {
        self.batch.lock().queue.len()
    }

    /// Executes an update transaction as master via a statement-driving
    /// closure (later statements may depend on earlier results): run
    /// under 2PL, then the Figure 2 pre-commit sequence (write-set,
    /// atomic version increment, broadcast, ack wait), then local commit
    /// and lock release. Returns the new version vector.
    ///
    /// # Errors
    ///
    /// Statement errors abort the transaction; `NodeFailed` if this node
    /// is killed mid-transaction (its effects are discarded).
    pub fn execute_update_with(
        &self,
        f: &mut dyn FnMut(&mut dyn StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<VersionVector> {
        if !self.is_alive() {
            return Err(DmvError::NodeFailed(self.id));
        }
        let mut txn = self.db.begin_update();
        {
            let mut runner = NodeRunner { node: self, inner: &mut txn };
            if let Err(e) = f(&mut runner) {
                txn.abort();
                return Err(e);
            }
        }
        if !txn.has_writes() {
            txn.commit(None);
            return Ok(self.dbversion());
        }
        // Pre-commit (Figure 2) with group commit: the commit_seq
        // section covers diff capture, the version-vector bump and the
        // push into the coalescer queue — so queue order is seq order.
        // The first pusher to find no flush in flight becomes the
        // flusher: a lone commit under low load broadcasts itself
        // immediately (no added latency), while commits arriving during
        // an in-flight broadcast coalesce into one WriteSetBatch frame
        // flushed the moment it completes. The ack wait runs with no
        // commit-path lock held at all.
        let mut seq_guard = self.commit_seq.lock();
        let pages = txn.precommit();
        let mut dbv = self.dbversion.lock();
        for t in txn.write_tables() {
            dbv.bump(t);
        }
        let new_v = dbv.clone();
        drop(dbv);
        *seq_guard += 1;
        let seq = *seq_guard;
        // The one deep allocation per commit: every target link and
        // every slave queue shares this Arc.
        let ws = Arc::new(WriteSet { txn: txn.id(), seq, versions: new_v.clone(), pages });
        let epoch = self.epoch.read().clone();
        if epoch.is_some() {
            // Seq-sorted by construction: appended under `commit_seq`,
            // and before the coalescer push so a peer's ack for `seq`
            // (only possible after the flush) always resolves. The
            // logged vector is masked to the tables this master has
            // itself committed (its conflict class): an ack covers only
            // this master's stream, so components of other classes are
            // `u64::MAX` — no constraint — in the epoch floor meet.
            let mut log = self.seq_log.lock();
            let mut masked = log.back().map_or_else(
                || VersionVector::from_entries(vec![u64::MAX; new_v.len()]),
                |(_, v)| v.clone(),
            );
            for t in txn.write_tables() {
                masked.set(t, new_v.get(t));
            }
            log.push_back((seq, masked));
        }
        let flusher = {
            let mut b = self.batch.lock();
            b.queue.push(ws);
            let take_over = !b.in_flight && !b.hold;
            if take_over {
                b.in_flight = true;
            }
            take_over
        };
        drop(seq_guard);
        if flusher {
            self.flush_batches();
        }
        self.wait_for_acks(seq);
        if !self.is_alive() {
            // Failed before confirming: a new master will tell replicas to
            // discard the partially propagated transaction.
            txn.abort();
            return Err(DmvError::NodeFailed(self.id));
        }
        txn.commit(Some(&new_v));
        self.stats.commits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter, read only for reporting
        if let Some(epoch) = epoch {
            epoch.advance_latest(&new_v);
        }
        Ok(new_v)
    }

    /// Batch form of [`ReplicaNode::execute_update_with`]: executes the
    /// given statements in order and returns their results plus the new
    /// version vector.
    ///
    /// # Errors
    ///
    /// Same as [`ReplicaNode::execute_update_with`].
    pub fn execute_update(&self, queries: &[Query]) -> DmvResult<(Vec<ResultSet>, VersionVector)> {
        let mut results = Vec::with_capacity(queries.len());
        let version = self.execute_update_with(&mut |r| {
            for q in queries {
                results.push(r.run(q)?);
            }
            Ok(())
        })?;
        Ok((results, version))
    }

    /// Drains the coalescer queue, one bounded batch per iteration,
    /// until it is empty; only the thread that set `in_flight` runs
    /// this, so broadcasts leave in seq order with no extra lock. The
    /// batch lock is never held across a broadcast.
    fn flush_batches(&self) {
        loop {
            let sets = {
                let mut b = self.batch.lock();
                if b.queue.is_empty() {
                    b.in_flight = false;
                    return;
                }
                let mut take = 1;
                let mut bytes = b.queue[0].encoded_len();
                while take < b.queue.len()
                    && take < self.group_commit.max_batch_count
                    && bytes + b.queue[take].encoded_len() <= self.group_commit.max_batch_bytes
                {
                    bytes += b.queue[take].encoded_len();
                    take += 1;
                }
                let rest = b.queue.split_off(take);
                std::mem::replace(&mut b.queue, rest)
            };
            let targets_now = self.targets.read().clone();
            // One fan-out call: the transport encodes once and shares
            // the bytes across links; a dead target is skipped
            // (reconfiguration handles it). A singleton flush keeps the
            // plain WriteSet frame so low-load wire cost is unchanged.
            let msg = match sets.len() {
                1 => Msg::WriteSet(sets.into_iter().next().expect("len checked")), // unwrap-ok: length is 1
                _ => Msg::WriteSetBatch(Arc::new(WriteSetBatch { sets })),
            };
            let size = msg.encoded_len();
            self.net.broadcast(self.id, &targets_now, &msg, size);
        }
    }

    /// Waits until every live target's cumulative watermark covers
    /// `seq`. The target list is re-read on every check so membership
    /// changes (a dead slave removed, a spare promoted in) take effect
    /// on already-waiting commits instead of stalling them to the full
    /// ack timeout. Slice-bounded waits re-check liveness even when no
    /// ack arrives to wake us.
    fn wait_for_acks(&self, seq: u64) {
        let deadline = wall_deadline(self.ack_timeout);
        let slice =
            (self.ack_timeout / 8).clamp(Duration::from_millis(1), Duration::from_millis(25));
        // On timeout: dead targets are reconfigured away.
        let _ = self.acks.wait(deadline, slice, || {
            self.targets
                .read()
                .iter()
                .all(|t| !self.net.is_alive(*t) || self.acks.watermark(*t) >= seq)
        });
    }

    /// Executes a read-only transaction at the scheduler-assigned tag,
    /// driven by a statement closure.
    ///
    /// # Errors
    ///
    /// `VersionConflict` (retryable) if a required page version was
    /// already surpassed; `NodeFailed` if this node is killed mid-read.
    pub fn execute_read_with(
        &self,
        tag: &VersionVector,
        f: &mut dyn FnMut(&mut dyn StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<()> {
        if !self.is_alive() {
            return Err(DmvError::NodeFailed(self.id));
        }
        let mut txn = self.db.begin_read_tagged(tag.clone());
        {
            let mut runner = NodeRunner { node: self, inner: &mut txn };
            if let Err(e) = f(&mut runner) {
                if matches!(e, DmvError::VersionConflict { .. }) {
                    self.stats.version_aborts.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter, read only for reporting
                }
                return Err(e);
            }
        }
        txn.commit(None);
        self.stats.reads.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter, read only for reporting
        Ok(())
    }

    /// Batch form of [`ReplicaNode::execute_read_with`].
    ///
    /// # Errors
    ///
    /// Same as [`ReplicaNode::execute_read_with`].
    pub fn execute_read(
        &self,
        queries: &[Query],
        tag: &VersionVector,
    ) -> DmvResult<Vec<ResultSet>> {
        let mut results = Vec::with_capacity(queries.len());
        self.execute_read_with(tag, &mut |r| {
            for q in queries {
                results.push(r.run(q)?);
            }
            Ok(())
        })?;
        Ok(results)
    }

    /// Promotes this slave to master after a master failure: queued
    /// records beyond `latest` (the scheduler's last acknowledged
    /// version) were partially propagated and are discarded, the rest is
    /// applied, and the version counter continues from `latest`.
    pub fn promote_to_master(&self, latest: &VersionVector) {
        self.applier.discard_above(latest);
        self.applier.apply_all();
        *self.dbversion.lock() = latest.clone();
        // Commit seqs restart with this incarnation; the old master's
        // seq→vector log means nothing against the new numbering.
        self.seq_log.lock().clear();
        self.set_role(ReplicaRole::Master);
        self.emit(|| TraceEvent::Promoted { node: self.id, from: latest.clone() });
    }

    /// Takes a fuzzy checkpoint (kept as this node's "local stable
    /// storage" for reintegration after a crash).
    pub fn take_checkpoint(&self) {
        let now = self.clock.now_paper();
        let ck = fuzzy_checkpoint(self.db.store(), now);
        *self.checkpoint.lock() = ck;
    }

    /// The last checkpoint image.
    pub fn checkpoint(&self) -> CheckpointImage {
        self.checkpoint.lock().clone()
    }

    /// Support-slave side of data migration (§4.4): waits until this
    /// node has received everything up to `target`, fully applies its
    /// pending queues, and returns the pages strictly newer than the
    /// joiner's versions.
    ///
    /// # Errors
    ///
    /// `Network` if `target` never arrives within the ack timeout.
    pub fn collect_pages_newer(
        &self,
        joiner_versions: &HashMap<PageId, u64>,
        target: &VersionVector,
    ) -> DmvResult<Vec<(PageId, u64, Vec<u8>)>> {
        // Migration tolerates a long wait: the replication stream may be
        // backlogged right after a failure.
        self.applier.wait_received_for(target, Duration::from_secs(30))?;
        let store = self.db.store();
        let mut out = Vec::new();
        for id in store.page_ids() {
            self.applier.apply_page(id);
            let Some(cell) = store.get(id) else { continue };
            let page = cell.latch.read();
            let joiner_v = joiner_versions.get(&id).copied();
            let newer = match joiner_v {
                None => true,
                Some(v) => page.version > v,
            };
            if newer {
                out.push((id, page.version, page.to_image()));
            }
        }
        Ok(out)
    }

    /// Joiner side: waits until the support slave's final page batch has
    /// arrived.
    ///
    /// # Errors
    ///
    /// `Network` on timeout.
    pub fn wait_migration_done(&self, timeout: Duration) -> DmvResult<()> {
        let deadline = wall_deadline(timeout);
        let mut done = self.migration_done.lock();
        while !*done {
            if self.migration_cv.wait_until(&mut done, deadline).timed_out() {
                return Err(DmvError::Network("migration did not complete".into()));
            }
        }
        *done = false; // reset for a future migration
        Ok(())
    }

    /// Restores this node's database from a checkpoint (crash recovery
    /// before reintegration). Pages restore *cold* — they live in the
    /// recovering node's on-disk image until touched.
    pub fn restore_from_checkpoint(&self, ck: &CheckpointImage) {
        ck.restore_into(self.db.store(), false);
    }

    /// Copies another replica's entire store into this one (the shared
    /// initial "mmap of the same on-disk database" at startup). Pages
    /// arrive resident.
    pub fn clone_pages_from(&self, other: &ReplicaNode) {
        let src = other.db.store();
        let dst = self.db.store();
        for id in src.page_ids() {
            let Some(s) = src.get(id) else { continue };
            let sp = s.latch.read();
            let cell = dst.get_or_create(id);
            let mut dp = cell.latch.write();
            dp.data_mut().copy_from_slice(sp.data());
            dp.version = sp.version;
        }
        *self.dbversion.lock() = other.dbversion();
    }

    /// Hot pages: the ids of currently resident pages (sent to spares by
    /// the page-id-transfer warmup strategy).
    pub fn hot_pages(&self) -> Vec<PageId> {
        let store = self.db.store();
        store
            .page_ids()
            .into_iter()
            .filter(|id| store.get(*id).is_some_and(|c| c.is_resident()))
            .collect()
    }

    /// Touches `pages` (faults them in, charging page-in cost).
    pub fn touch_pages(&self, pages: &[PageId]) {
        let store = self.db.store();
        for id in pages {
            if let Some(cell) = store.get(*id) {
                store.fault_in(&cell);
            }
        }
    }

    /// Marks the whole database non-resident (cold cache).
    pub fn evict_all(&self) {
        self.db.store().evict_all();
    }

    /// Resident pages (diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.db.store().resident_count()
    }

    /// Resident page bytes in this node's store (bounded-memory gauge).
    pub fn resident_bytes(&self) -> u64 {
        self.db.store().resident_bytes()
    }

    /// Encoded bytes of queued, unapplied replication diffs on this
    /// node (bounded-memory gauge).
    pub fn pending_bytes(&self) -> u64 {
        self.applier.pending_bytes()
    }

    /// Fail-stop kill: the node stops serving and its endpoint closes.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        self.net.kill(self.id);
        self.set_role(ReplicaRole::Offline);
    }

    /// Clean shutdown (stops the receiver thread).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.net.kill(self.id);
        if let Some(h) = self.receiver.lock().take() {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

impl std::fmt::Debug for ReplicaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("id", &self.id)
            .field("role", &self.role())
            .field("alive", &self.is_alive())
            .field("dbversion", &format!("{}", self.dbversion()))
            .finish()
    }
}

impl Drop for ReplicaNode {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.receiver.lock().take() {
            // Never join from the receiver thread itself (it may hold the
            // last Arc when the node is dropped).
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}
