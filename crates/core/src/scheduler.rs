//! The version-aware scheduler (paper §2.1–2.2, §4.1, §4.6).
//!
//! The scheduler routes update transactions to the master of their
//! conflict class, merges the version vectors masters report at commit,
//! tags every read-only transaction with the latest merged vector, and
//! routes it to a slave — preferring one already serving the same
//! version (which is what keeps version-conflict aborts below the
//! paper's 2.5 %), falling back to plain least-loaded balancing.
//!
//! It also owns durability (§4.6): committed update queries are logged
//! (a lightweight insert) and fed asynchronously to the on-disk
//! backend(s), so the commit path never waits for a disk database.

use crate::messages::Msg;
use crate::replica::ReplicaNode;
use crate::trace::{SharedTap, TraceEvent};
use dmv_common::clock::SimClock;
use dmv_common::config::NetProfile;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{NodeId, TableId};
use dmv_common::stats::TxnStats;
use dmv_common::version::{AtomicVersionVector, VersionVector};
use dmv_common::wire::Wire;
use dmv_epoch::EpochManager;
use dmv_net::DynTransport;
use dmv_ondisk::DiskDb;
use dmv_sql::exec::{RecordingRunner, ResultSet, StatementRunner};
use dmv_sql::query::Query;
// Shimmed primitives: parking_lot/std in normal builds, model-checked
// under `--cfg dmv_check` (see crates/check).
use dmv_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use dmv_check::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Spare-backup buffer-cache warmup strategy (paper §4.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarmupStrategy {
    /// Spares receive the replication stream but no reads (cold cache).
    None,
    /// Route this fraction of the read-only workload to a spare, solely
    /// to keep its cache warm (the paper uses < 1 %).
    QueryFraction(f64),
    /// Every `every_reads` read transactions, an active slave sends its
    /// hot page ids to the spares, which touch them (the paper transfers
    /// every 100 transactions).
    PageIdTransfer {
        /// Transfer period, in read transactions.
        every_reads: u64,
    },
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Cluster clock.
    pub clock: SimClock,
    /// Network model for charging client↔scheduler↔database hops.
    pub net: NetProfile,
    /// Cost of logging one committed transaction's queries (§4.6:
    /// "a lightweight database insert of the corresponding query
    /// strings").
    pub log_latency: Duration,
    /// Spare warmup strategy.
    pub warmup: WarmupStrategy,
    /// Prefer slaves already serving the same version (the paper's
    /// version-aware policy). Disable for the plain-load-balancing
    /// ablation.
    pub same_version_routing: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            clock: SimClock::default(),
            net: NetProfile::zero(),
            log_latency: Duration::ZERO,
            warmup: WarmupStrategy::None,
            same_version_routing: true,
        }
    }
}

/// Cluster membership as the scheduler sees it.
#[derive(Clone, Default)]
pub struct Topology {
    /// One master per conflict class.
    pub masters: Vec<Arc<ReplicaNode>>,
    /// Table sets of the conflict classes (`classes[i]` → `masters[i]`).
    /// With a single entry covering every table, all updates serialize
    /// through one master.
    pub classes: Vec<Vec<TableId>>,
    /// Active slaves serving tagged reads.
    pub slaves: Vec<Arc<ReplicaNode>>,
    /// Warm/cold spare backups (receive the stream, serve no reads).
    pub spares: Vec<Arc<ReplicaNode>>,
}

impl Topology {
    /// Every replica (masters, slaves, spares).
    pub fn all(&self) -> Vec<Arc<ReplicaNode>> {
        let mut v = self.masters.clone();
        v.extend(self.slaves.clone());
        v.extend(self.spares.clone());
        v
    }
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field("masters", &self.masters.len())
            .field("slaves", &self.slaves.len())
            .field("spares", &self.spares.len())
            .finish()
    }
}

/// Per-slave routing state. Every read transaction touches this twice
/// (admit, complete), so the counters are atomics: routing decisions
/// read them lock-free under the map's shared read lock, and the map
/// itself is written only on membership changes.
#[derive(Default, Debug)]
struct SlaveLoad {
    /// Reads currently executing on the slave.
    inflight: AtomicUsize,
    /// `total()` of the last tag routed to the slave (the same-version
    /// preference compares against this).
    last_tag_total: AtomicU64,
}

/// The version-aware scheduler.
pub struct Scheduler {
    id: NodeId,
    topo: RwLock<Topology>,
    /// Latest merged version vector; advanced by atomic maximum on
    /// every commit so concurrent updates and read-tagging never queue
    /// on a lock.
    latest: AtomicVersionVector,
    slave_loads: RwLock<HashMap<NodeId, Arc<SlaveLoad>>>,
    cfg: SchedulerConfig,
    net: DynTransport<Msg>,
    /// Aggregate transaction statistics for this scheduler.
    pub stats: Arc<TxnStats>,
    read_counter: AtomicU64,
    query_log: Mutex<Vec<Vec<Query>>>,
    backend_tx: Mutex<Option<crossbeam::channel::Sender<Vec<Query>>>>,
    feed_thread: Mutex<Option<dmv_check::thread::JoinHandle<()>>>,
    alive: AtomicBool,
    backends: Vec<Arc<DiskDb>>,
    /// Optional history tap (deterministic simulation testing).
    tap: RwLock<Option<SharedTap>>,
    /// Cluster epoch manager: every tagged read pins its snapshot
    /// epoch for its whole execution, holding the reclamation
    /// watermark at or below its tag. `None` disables pinning
    /// (standalone schedulers; reclamation is then not in play).
    epoch: RwLock<Option<Arc<EpochManager>>>,
}

impl Scheduler {
    /// Creates a scheduler over `topo`, feeding `backends` asynchronously.
    pub fn new(
        id: NodeId,
        n_tables: usize,
        topo: Topology,
        backends: Vec<Arc<DiskDb>>,
        net: DynTransport<Msg>,
        cfg: SchedulerConfig,
    ) -> Arc<Self> {
        let sched = Arc::new(Scheduler {
            id,
            topo: RwLock::new(topo),
            latest: AtomicVersionVector::new(n_tables),
            slave_loads: RwLock::new(HashMap::new()),
            cfg,
            net,
            stats: Arc::new(TxnStats::new()),
            read_counter: AtomicU64::new(0),
            query_log: Mutex::new(Vec::new()),
            backend_tx: Mutex::new(None),
            feed_thread: Mutex::new(None),
            alive: AtomicBool::new(true),
            backends: backends.clone(),
            tap: RwLock::new(None),
            epoch: RwLock::new(None),
        });
        dmv_check::race::label(&sched.topo, "topo");
        dmv_check::race::label(&sched.slave_loads, "slave_loads");
        if !backends.is_empty() {
            let (tx, rx) = crossbeam::channel::unbounded::<Vec<Query>>();
            *sched.backend_tx.lock() = Some(tx);
            let handle = dmv_check::thread::Builder::new()
                .name(format!("sched-{id}-feed"))
                .spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        for b in &backends {
                            // Retry transient aborts; the log is replayed
                            // in order so this must eventually apply.
                            for _ in 0..10 {
                                match b.execute_txn(&batch) {
                                    Ok(_) => break,
                                    Err(e) if e.is_retryable() => continue,
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                })
                .expect("spawn backend feed"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
            *sched.feed_thread.lock() = Some(handle);
        }
        sched
    }

    /// The scheduler's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// True until killed.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Fail-stop kill (for scheduler fail-over experiments).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// The latest merged version vector.
    pub fn latest(&self) -> VersionVector {
        self.latest.snapshot()
    }

    /// Installs a history tap; events fire on the threads documented in
    /// [`crate::trace`].
    pub fn set_trace_tap(&self, tap: SharedTap) {
        *self.tap.write() = Some(tap);
    }

    /// Installs the cluster's epoch manager; tagged reads pin their
    /// epoch in it for the duration of their execution.
    pub fn set_epoch_manager(&self, epoch: Arc<EpochManager>) {
        *self.epoch.write() = Some(epoch);
    }

    fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(tap) = self.tap.read().as_ref() {
            tap.record(f());
        }
    }

    /// Snapshot of the topology.
    pub fn topology(&self) -> Topology {
        self.topo.read().clone()
    }

    /// Replaces the topology (reconfiguration).
    pub fn set_topology(&self, topo: Topology) {
        *self.topo.write() = topo;
    }

    /// The persisted query log (for recovery tests).
    pub fn query_log_len(&self) -> usize {
        self.query_log.lock().len()
    }

    fn charge_hop(&self, bytes: usize) {
        let t = self.cfg.net.transfer_time(bytes);
        if !t.is_zero() {
            self.cfg.clock.sleep_paper(t);
        }
    }

    fn master_for_tables(&self, tables: &[TableId]) -> DmvResult<Arc<ReplicaNode>> {
        let topo = self.topo.read();
        if topo.masters.is_empty() {
            return Err(DmvError::NoReplicaAvailable);
        }
        let idx =
            topo.classes.iter().position(|c| tables.iter().all(|t| c.contains(t))).unwrap_or(0);
        let master = Arc::clone(&topo.masters[idx.min(topo.masters.len() - 1)]);
        if !master.is_alive() {
            return Err(DmvError::NodeFailed(master.id()));
        }
        Ok(master)
    }

    /// Runs an update transaction driven by a statement closure. The
    /// scheduler is pre-configured with the tables each transaction type
    /// accesses (`tables`, the paper's conflict-class information);
    /// committed write statements are recorded for the persistence log.
    ///
    /// # Errors
    ///
    /// Propagates master-side errors (retryable: deadlocks, node death).
    pub fn run_update_with(
        &self,
        tables: &[TableId],
        f: &mut dyn FnMut(&mut dyn StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<()> {
        let master = self.master_for_tables(tables)?;
        self.charge_hop(256); // client → scheduler → master request hop
        let mut writes: Vec<Query> = Vec::new();
        let res = master.execute_update_with(&mut |r| {
            let mut rec = RecordingRunner::new(r);
            let out = f(&mut rec);
            writes.append(&mut rec.writes);
            out
        });
        match res {
            Ok(version) => {
                self.latest.merge(&version);
                self.emit(|| TraceEvent::UpdateCommitted {
                    scheduler: self.id,
                    version: version.clone(),
                });
                // §4.6: log, then return; backends apply asynchronously.
                if !self.cfg.log_latency.is_zero() {
                    self.cfg.clock.sleep_paper(self.cfg.log_latency);
                }
                if !writes.is_empty() {
                    self.query_log.lock().push(writes.clone());
                    if let Some(tx) = self.backend_tx.lock().as_ref() {
                        let _ = tx.send(writes);
                    }
                }
                self.charge_hop(128); // reply hop
                self.stats.commits.inc();
                self.stats.updates.inc();
                Ok(())
            }
            Err(e) => {
                self.count_abort(&e);
                self.emit(|| TraceEvent::UpdateAborted {
                    scheduler: self.id,
                    reason: e.to_string(),
                });
                Err(e)
            }
        }
    }

    /// Batch form of [`Scheduler::run_update_with`].
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::run_update_with`].
    pub fn run_update(&self, queries: &[Query]) -> DmvResult<Vec<ResultSet>> {
        let mut tables: Vec<TableId> =
            queries.iter().filter(|q| q.is_write()).flat_map(|q| q.tables()).collect();
        tables.sort();
        tables.dedup();
        let mut results = Vec::with_capacity(queries.len());
        self.run_update_with(&tables, &mut |r| {
            for q in queries {
                results.push(r.run(q)?);
            }
            Ok(())
        })?;
        Ok(results)
    }

    fn count_abort(&self, e: &DmvError) {
        match e {
            DmvError::VersionConflict { .. } => {
                self.stats.version_aborts.inc();
            }
            DmvError::Deadlock(_) => {
                self.stats.deadlock_aborts.inc();
            }
            DmvError::NodeFailed(_) | DmvError::NoSuchNode(_) => {
                self.stats.failure_aborts.inc();
            }
            _ => {}
        }
    }

    /// Picks the slave for a read tagged `tag`: same-version replicas
    /// first, least-loaded as tie-break and fallback; occasionally a
    /// spare, per the warmup strategy.
    fn pick_slave(&self, tag: &VersionVector) -> DmvResult<Arc<ReplicaNode>> {
        let topo = self.topo.read();
        // Warmup strategy A: a trickle of real reads keeps a spare warm.
        if let WarmupStrategy::QueryFraction(f) = self.cfg.warmup {
            if f > 0.0 && !topo.spares.is_empty() {
                let period = (1.0 / f).round().max(1.0) as u64;
                // relaxed-ok: warmup pacing heuristic; exact interleaving immaterial
                if self.read_counter.load(Ordering::Relaxed) % period == period - 1 {
                    if let Some(spare) = topo.spares.iter().find(|s| s.is_alive()) {
                        return Ok(Arc::clone(spare));
                    }
                }
            }
        }
        let alive: Vec<&Arc<ReplicaNode>> = topo.slaves.iter().filter(|s| s.is_alive()).collect();
        if alive.is_empty() {
            return Err(DmvError::NoReplicaAvailable);
        }
        // Shared read lock on the load map; the counters themselves are
        // read with relaxed atomic loads. Concurrent admits may race a
        // decision by one in-flight read — acceptable slack for load
        // balancing, and it keeps routing off every mutex.
        let loads = self.slave_loads.read();
        let tag_total = tag.total();
        let inflight_of = |s: &Arc<ReplicaNode>| {
            // relaxed-ok: load-balancing hint; staleness skews routing, never correctness
            loads.get(&s.id()).map(|l| l.inflight.load(Ordering::Relaxed)).unwrap_or(0)
        };
        let least_loaded = alive.iter().copied().min_by_key(|s| inflight_of(s)).expect("nonempty"); // unwrap-ok: pick_slave already returned NoReplicaAvailable when alive is empty
        let best = if self.cfg.same_version_routing {
            // Prefer a replica already serving this version, unless it is
            // badly overloaded relative to the least-loaded one — the
            // preference must not collapse the read set onto one node.
            alive
                .iter()
                .copied()
                .filter(|s| {
                    loads
                        .get(&s.id())
                        .map(|l| l.last_tag_total.load(Ordering::Relaxed) == tag_total) // relaxed-ok: load-balancing hint; staleness skews routing, never correctness
                        .unwrap_or(false)
                })
                .min_by_key(|s| inflight_of(s))
                .filter(|s| inflight_of(s) <= inflight_of(least_loaded) + 2)
                .unwrap_or(least_loaded)
        } else {
            least_loaded
        };
        Ok(Arc::clone(best))
    }

    /// The load record of one slave, created on first use. The `Arc`
    /// stays valid across concurrent membership changes, so a completing
    /// read always decrements the counter it incremented.
    fn load_of(&self, id: NodeId) -> Arc<SlaveLoad> {
        if let Some(l) = self.slave_loads.read().get(&id) {
            return Arc::clone(l);
        }
        Arc::clone(self.slave_loads.write().entry(id).or_default())
    }

    /// Runs a read-only transaction driven by a statement closure: tags
    /// it with the latest version vector and routes it to a slave.
    ///
    /// # Errors
    ///
    /// `VersionConflict` (retryable) or slave-failure errors.
    pub fn run_read_with(
        &self,
        f: &mut dyn FnMut(&mut dyn StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<()> {
        let tag = self.latest();
        // Pin the read's epoch before routing: from here until the
        // guard drops (end of this call), the reclamation watermark
        // cannot pass `tag`, so eager GC application can never upgrade
        // a page past what this read may still materialize.
        let _epoch_guard = self.epoch.read().clone().map(|e| e.pin(&tag));
        let slave = self.pick_slave(&tag)?;
        let n = self.read_counter.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: warmup pacing heuristic; exact interleaving immaterial
                                                                       // Warmup strategy B: periodic page-id transfer to spares.
        if let WarmupStrategy::PageIdTransfer { every_reads } = self.cfg.warmup {
            if every_reads > 0 && n.is_multiple_of(every_reads) {
                self.send_pageid_hints();
            }
        }
        let load = self.load_of(slave.id());
        load.inflight.fetch_add(1, Ordering::Relaxed); // relaxed-ok: load-balancing hint; staleness skews routing, never correctness
        load.last_tag_total.store(tag.total(), Ordering::Relaxed); // relaxed-ok: load-balancing hint; staleness skews routing, never correctness
        self.emit(|| TraceEvent::ReadRouted {
            scheduler: self.id,
            slave: slave.id(),
            tag: tag.clone(),
        });
        self.charge_hop(256);
        let res = slave.execute_read_with(&tag, f);
        load.inflight.fetch_sub(1, Ordering::Relaxed); // relaxed-ok: load-balancing hint; staleness skews routing, never correctness
        match res {
            Ok(()) => {
                self.charge_hop(512);
                self.stats.commits.inc();
                self.stats.reads.inc();
                self.emit(|| TraceEvent::ReadCommitted { scheduler: self.id, slave: slave.id() });
                Ok(())
            }
            Err(e) => {
                self.count_abort(&e);
                self.emit(|| TraceEvent::ReadAborted {
                    scheduler: self.id,
                    slave: slave.id(),
                    reason: e.to_string(),
                });
                Err(e)
            }
        }
    }

    /// Batch form of [`Scheduler::run_read_with`].
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::run_read_with`].
    pub fn run_read(&self, queries: &[Query]) -> DmvResult<Vec<ResultSet>> {
        let mut results = Vec::with_capacity(queries.len());
        self.run_read_with(&mut |r| {
            for q in queries {
                results.push(r.run(q)?);
            }
            Ok(())
        })?;
        Ok(results)
    }

    fn send_pageid_hints(&self) {
        let topo = self.topo.read();
        let Some(active) = topo.slaves.iter().find(|s| s.is_alive()) else { return };
        let pages = active.hot_pages();
        if pages.is_empty() {
            return;
        }
        for spare in topo.spares.iter().filter(|s| s.is_alive()) {
            let msg = Msg::PageIdHint { pages: pages.clone() };
            let size = msg.encoded_len();
            let _ = self.net.send_from(active.id(), spare.id(), msg, size);
        }
    }

    /// Master-failure reconfiguration (§4.2): discard partially
    /// propagated records beyond the last acknowledged version, promote a
    /// slave (or designated `replacement`) to master, and rewire
    /// replication. Returns the new master.
    ///
    /// # Errors
    ///
    /// `NoReplicaAvailable` if no slave can be promoted.
    pub fn handle_master_failure(
        &self,
        failed: NodeId,
        replacement: Option<Arc<ReplicaNode>>,
    ) -> DmvResult<Arc<ReplicaNode>> {
        let latest = self.latest();
        let mut topo = self.topo.write();
        // Tell every surviving replica to discard records the failed
        // master never confirmed.
        for r in topo.all() {
            if r.is_alive() {
                r.applier().discard_above(&latest);
            }
        }
        let new_master = match replacement {
            Some(r) => r,
            None => topo
                .slaves
                .iter()
                .find(|s| s.is_alive())
                .cloned()
                .ok_or(DmvError::NoReplicaAvailable)?,
        };
        new_master.promote_to_master(&latest);
        topo.slaves.retain(|s| s.id() != new_master.id());
        topo.spares.retain(|s| s.id() != new_master.id());
        if let Some(slot) = topo.masters.iter_mut().find(|m| m.id() == failed) {
            *slot = Arc::clone(&new_master);
        } else {
            topo.masters.push(Arc::clone(&new_master));
        }
        // The dead master must not linger anywhere: every surviving
        // master drops it from its replication targets and ack state,
        // and the shared epoch manager forgets it in both roles — a dead
        // observer's floor registrations would otherwise cap the
        // reclamation watermark forever.
        for m in &topo.masters {
            if m.id() != failed {
                m.unsubscribe(failed);
            }
        }
        // New replication targets: every other live replica.
        let targets: Vec<NodeId> = topo
            .all()
            .iter()
            .filter(|r| r.is_alive() && r.id() != new_master.id())
            .map(|r| r.id())
            .collect();
        new_master.set_targets(targets);
        self.slave_loads.write().remove(&new_master.id());
        Ok(new_master)
    }

    /// Slave-failure reconfiguration (§4.3): drop it from the tables and
    /// from the masters' replication lists.
    pub fn handle_slave_failure(&self, failed: NodeId) {
        let mut topo = self.topo.write();
        topo.slaves.retain(|s| s.id() != failed);
        topo.spares.retain(|s| s.id() != failed);
        for m in &topo.masters {
            m.unsubscribe(failed);
        }
        self.slave_loads.write().remove(&failed);
    }

    /// Activates a spare as a read-serving slave (fail-over target).
    pub fn activate_spare(&self, id: NodeId) -> bool {
        let mut topo = self.topo.write();
        if let Some(pos) = topo.spares.iter().position(|s| s.id() == id && s.is_alive()) {
            let spare = topo.spares.remove(pos);
            spare.set_role(dmv_common::ids::ReplicaRole::Slave);
            topo.slaves.push(spare);
            true
        } else {
            false
        }
    }

    /// Adds a (re)integrated node as a slave (§4.4: "new replicas are
    /// always integrated as slave nodes ... regardless of their rank
    /// prior to failure").
    pub fn add_slave(&self, node: Arc<ReplicaNode>) {
        node.set_role(dmv_common::ids::ReplicaRole::Slave);
        self.topo.write().slaves.push(node);
    }

    /// Adds a node as a spare backup.
    pub fn add_spare(&self, node: Arc<ReplicaNode>) {
        node.set_role(dmv_common::ids::ReplicaRole::SpareBackup);
        self.topo.write().spares.push(node);
    }

    /// Scheduler takeover (§4.1): a peer scheduler rebuilds its version
    /// vector from the masters' highest produced versions.
    pub fn recover_from_masters(&self) {
        let topo = self.topo.read();
        for m in topo.masters.iter().filter(|m| m.is_alive()) {
            self.latest.merge(&m.dbversion());
        }
    }

    /// The on-disk backends this scheduler feeds.
    pub fn backends(&self) -> &[Arc<DiskDb>] {
        &self.backends
    }

    /// Stops the backend feed thread after draining queued batches.
    pub fn shutdown(&self) {
        *self.backend_tx.lock() = None; // close channel; feed drains and exits
        if let Some(h) = self.feed_thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("id", &self.id)
            .field("latest", &format!("{}", self.latest()))
            .field("topology", &*self.topo.read())
            .finish()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}
