//! History tap points for deterministic simulation testing.
//!
//! The fault-schedule explorer (`dmv-dst`) needs to observe what the
//! cluster *did* — which version each commit produced, which slave a
//! tagged read was routed to, what was discarded during fail-over —
//! without the observation changing the behaviour under test. These
//! taps are that observation channel: a [`TraceTap`] installed via
//! [`crate::cluster::DmvCluster::set_trace_tap`] receives a
//! [`TraceEvent`] at each of the protocol's decision points.
//!
//! Emission sites and threading:
//!
//! * scheduler events ([`TraceEvent::UpdateCommitted`],
//!   [`TraceEvent::UpdateAborted`], [`TraceEvent::ReadRouted`],
//!   [`TraceEvent::ReadCommitted`], [`TraceEvent::ReadAborted`]) fire
//!   **synchronously on the calling client thread**, so a single-driver
//!   harness can attribute them to the operation it just issued;
//! * replica promotion ([`TraceEvent::Promoted`]) and queue cleanup
//!   ([`TraceEvent::DiscardedAbove`]) fire on whichever thread runs
//!   reconfiguration — the harness's own thread when it calls
//!   `detect_and_reconfigure` directly;
//! * [`TraceEvent::WriteSetEnqueued`] fires on replica **receiver
//!   threads** and is therefore not ordered with respect to client
//!   operations; deterministic consumers must treat it as an unordered
//!   side log.
//!
//! When no tap is installed the cost is one shared-lock read per
//! operation; the hot replication path (enqueue) checks an `Option`
//! under a read lock and skips everything else.

use dmv_common::ids::{NodeId, TxnId};
use dmv_common::version::VersionVector;
use std::sync::Arc;

/// One observed protocol event.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// An update transaction committed through a scheduler, producing
    /// `version` (the master's post-bump vector for its conflict class).
    UpdateCommitted {
        /// Scheduler that ran the update.
        scheduler: NodeId,
        /// Version vector returned by the master's commit.
        version: VersionVector,
    },
    /// An update transaction aborted.
    UpdateAborted {
        /// Scheduler that ran the update.
        scheduler: NodeId,
        /// Display form of the abort error.
        reason: String,
    },
    /// A read-only transaction was tagged and routed to a slave.
    ReadRouted {
        /// Scheduler that routed the read.
        scheduler: NodeId,
        /// Chosen slave.
        slave: NodeId,
        /// The version tag assigned to the read.
        tag: VersionVector,
    },
    /// A routed read completed successfully.
    ReadCommitted {
        /// Scheduler that routed the read.
        scheduler: NodeId,
        /// Slave that served it.
        slave: NodeId,
    },
    /// A routed read aborted (version conflict, timeout, node failure).
    ReadAborted {
        /// Scheduler that routed the read.
        scheduler: NodeId,
        /// Slave it was routed to.
        slave: NodeId,
        /// Display form of the abort error.
        reason: String,
    },
    /// A replica's applier enqueued a replicated write-set (receiver
    /// thread; unordered with respect to client operations).
    WriteSetEnqueued {
        /// Receiving replica.
        node: NodeId,
        /// Transaction the write-set belongs to.
        txn: TxnId,
        /// Versions the write-set carries.
        versions: VersionVector,
    },
    /// A replica discarded queued records above `keep` (master-failure
    /// cleanup, §4.2).
    DiscardedAbove {
        /// Replica whose queues were trimmed.
        node: NodeId,
        /// Highest versions kept.
        keep: VersionVector,
    },
    /// A replica ran an epoch reclamation pass: queued diffs at or
    /// below `watermark` were eagerly applied and `reaped` drained page
    /// queues left the shard maps.
    Reclaimed {
        /// Replica that reclaimed.
        node: NodeId,
        /// The reclamation watermark applied up to.
        watermark: VersionVector,
        /// Page-queue map entries reaped.
        reaped: usize,
    },
    /// A slave was promoted to master, continuing from `from`.
    Promoted {
        /// The promoted replica.
        node: NodeId,
        /// The scheduler-acknowledged vector it resumes from.
        from: VersionVector,
    },
}

/// Receiver of trace events. Implementations must be cheap and must not
/// call back into the cluster (they run inside commit/read paths).
pub trait TraceTap: Send + Sync {
    /// Records one event.
    fn record(&self, ev: TraceEvent);
}

/// The shared form taps are installed as.
pub type SharedTap = Arc<dyn TraceTap>;
