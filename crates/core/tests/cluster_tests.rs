//! End-to-end tests of the DMV middleware: replication consistency,
//! version tagging, master/slave/scheduler fail-over, stale-node
//! reintegration, spare warmup and the persistence tier.

use dmv_common::error::DmvError;
use dmv_common::ids::TableId;
use dmv_core::cluster::{ClusterSpec, DmvCluster};
use dmv_core::scheduler::WarmupStrategy;
use dmv_sql::query::{Access, Expr, Query, Select, SetExpr};
use dmv_sql::schema::{ColType, Column, IndexDef, Schema, TableSchema};
use dmv_sql::value::Value;
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(vec![
        TableSchema::new(
            TableId(0),
            "accounts",
            vec![
                Column::new("id", ColType::Int),
                Column::new("owner", ColType::Str),
                Column::new("balance", ColType::Int),
            ],
            vec![IndexDef::unique("pk", vec![0]), IndexDef::non_unique("by_owner", vec![1])],
        ),
        TableSchema::new(
            TableId(1),
            "audit",
            vec![Column::new("seq", ColType::Int), Column::new("note", ColType::Str)],
            vec![IndexDef::unique("pk", vec![0])],
        ),
    ])
}

fn start_cluster(n_slaves: usize, n_spares: usize) -> Arc<DmvCluster> {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = n_slaves;
    spec.n_spares = n_spares;
    let cluster = DmvCluster::start(spec);
    let rows: Vec<Vec<Value>> =
        (0..100).map(|i| vec![i.into(), format!("owner{}", i % 10).into(), 1000.into()]).collect();
    cluster.load_rows(TableId(0), rows).unwrap();
    cluster.finish_load();
    cluster
}

fn insert_account(id: i64) -> Query {
    Query::Insert {
        table: TableId(0),
        rows: vec![vec![id.into(), format!("owner{}", id % 10).into(), 1000.into()]],
    }
}

fn deposit(id: i64, amount: i64) -> Query {
    Query::Update {
        table: TableId(0),
        access: Access::Auto,
        filter: Some(Expr::eq(0, id)),
        set: vec![(2, SetExpr::AddInt(amount))],
    }
}

fn read_balance(id: i64) -> Query {
    Query::Select(Select::by_pk(TableId(0), vec![id.into()]).project(vec![2]))
}

fn scan_all() -> Query {
    Query::Select(Select::scan(TableId(0)))
}

#[test]
fn loaded_data_visible_on_all_slaves() {
    let cluster = start_cluster(3, 0);
    let session = cluster.session();
    // Reads rotate across slaves; every one must see the initial load.
    for _ in 0..9 {
        let rs = session.read(&[scan_all()]).unwrap();
        assert_eq!(rs[0].rows.len(), 100);
    }
    cluster.shutdown();
}

#[test]
fn update_visible_to_subsequent_reads() {
    let cluster = start_cluster(2, 0);
    let session = cluster.session();
    session.update(&[deposit(7, 500)]).unwrap();
    // The read is tagged with the commit's version: it must see it, on
    // whichever slave it lands.
    for _ in 0..4 {
        let rs = session.read_retry(&[read_balance(7)], 5).unwrap();
        assert_eq!(rs[0].rows[0][0], Value::Int(1500));
    }
    cluster.shutdown();
}

#[test]
fn monotone_reads_under_concurrent_writers() {
    let cluster = start_cluster(2, 0);
    let writer = cluster.session();
    let w = std::thread::spawn(move || {
        for _ in 0..50 {
            writer.update_retry(&[deposit(1, 1)], 10).unwrap();
        }
    });
    let reader = cluster.session();
    let mut last = 1000i64;
    let mut observed = 0;
    for _ in 0..200 {
        if let Ok(rs) = reader.read_retry(&[read_balance(1)], 10) {
            let v = rs[0].rows[0][0].as_int().unwrap();
            assert!(v >= last, "balance went backwards: {v} < {last}");
            last = v;
            observed += 1;
        }
    }
    w.join().unwrap();
    assert!(observed > 0);
    let final_balance = reader.read_retry(&[read_balance(1)], 10).unwrap()[0].rows[0][0].clone();
    assert_eq!(final_balance, Value::Int(1050));
    cluster.shutdown();
}

#[test]
fn replicas_converge_bitwise_after_quiescence() {
    let cluster = start_cluster(3, 0);
    let session = cluster.session();
    for i in 0..30 {
        session.update(&[insert_account(1000 + i)]).unwrap();
        session.update(&[deposit(1000 + i, i)]).unwrap();
    }
    // Force full application everywhere.
    let master = cluster.master(0);
    let topo_slaves = cluster.slave_ids();
    for id in topo_slaves {
        let slave = cluster.replica(id).unwrap();
        slave.applier().apply_all();
        let ms = master.db().store();
        let ss = slave.db().store();
        let mut ids = ms.page_ids();
        ids.sort();
        assert!(!ids.is_empty());
        for pid in ids {
            let mp = ms.get(pid).unwrap();
            let sp = ss.get(pid).unwrap_or_else(|| panic!("{id} missing page {pid}"));
            assert_eq!(
                mp.latch.read().data(),
                sp.latch.read().data(),
                "page {pid} diverged on {id}"
            );
        }
    }
    cluster.shutdown();
}

#[test]
fn slave_failure_reconfigures_and_service_continues() {
    let cluster = start_cluster(2, 0);
    let session = cluster.session();
    session.update(&[deposit(1, 1)]).unwrap();
    let victim = cluster.slave_ids()[0];
    cluster.kill_replica(victim);
    cluster.detect_and_reconfigure();
    assert_eq!(cluster.slave_ids().len(), 1);
    // Reads keep working (maybe with a retry around the kill window).
    let rs = session.read_retry(&[read_balance(1)], 10).unwrap();
    assert_eq!(rs[0].rows[0][0], Value::Int(1001));
    cluster.shutdown();
}

#[test]
fn master_failure_promotes_slave_and_updates_continue() {
    let cluster = start_cluster(3, 0);
    let session = cluster.session();
    for i in 0..10 {
        session.update(&[deposit(i, 10)]).unwrap();
    }
    let old_master = cluster.master(0).id();
    cluster.kill_replica(old_master);
    cluster.detect_and_reconfigure();
    let new_master = cluster.master(0);
    assert_ne!(new_master.id(), old_master, "a slave must be promoted");
    assert_eq!(cluster.slave_ids().len(), 2, "promoted slave leaves the read set");
    // Updates and reads continue, with retries over the failure window.
    session.update_retry(&[deposit(1, 5)], 10).unwrap();
    let rs = session.read_retry(&[read_balance(1)], 10).unwrap();
    assert_eq!(rs[0].rows[0][0], Value::Int(1015));
    cluster.shutdown();
}

#[test]
fn writes_after_promotion_reach_remaining_slaves() {
    let cluster = start_cluster(3, 0);
    let session = cluster.session();
    session.update(&[deposit(2, 100)]).unwrap();
    cluster.kill_replica(cluster.master(0).id());
    cluster.detect_and_reconfigure();
    for _ in 0..5 {
        session.update_retry(&[deposit(2, 100)], 10).unwrap();
    }
    // Both remaining slaves serve the newest value.
    for _ in 0..4 {
        let rs = session.read_retry(&[read_balance(2)], 10).unwrap();
        assert_eq!(rs[0].rows[0][0], Value::Int(1600));
    }
    cluster.shutdown();
}

#[test]
fn spare_auto_activates_on_slave_failure() {
    let cluster = start_cluster(2, 1);
    let session = cluster.session();
    assert_eq!(cluster.spare_ids().len(), 1);
    let victim = cluster.slave_ids()[0];
    cluster.kill_replica(victim);
    cluster.detect_and_reconfigure();
    assert_eq!(cluster.slave_ids().len(), 2, "spare replaces the failed slave");
    assert_eq!(cluster.spare_ids().len(), 0);
    let rs = session.read_retry(&[scan_all()], 10).unwrap();
    assert_eq!(rs[0].rows.len(), 100);
    cluster.shutdown();
}

#[test]
fn reintegration_catches_up_and_serves() {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 2;
    spec.checkpoint_period = Some(Duration::from_secs(3600)); // manual checkpoints only
    let cluster = DmvCluster::start(spec);
    cluster
        .load_rows(TableId(0), (0..50).map(|i| vec![i.into(), "o".into(), 1000.into()]).collect())
        .unwrap();
    cluster.finish_load();
    let session = cluster.session();

    let victim = cluster.slave_ids()[0];
    cluster.kill_replica(victim);
    cluster.detect_and_reconfigure();

    // Commit plenty while the node is down.
    for i in 0..25 {
        session.update_retry(&[deposit(i, 7)], 10).unwrap();
    }

    let report = cluster.reintegrate(victim).unwrap();
    assert!(report.pages > 0, "changed pages must be transferred");
    assert_eq!(cluster.slave_ids().len(), 2);

    // The rejoined node can serve current data. Route directly to it.
    let node = cluster.replica(victim).unwrap();
    let tag = cluster.master(0).dbversion();
    let rs = node.execute_read(&[read_balance(10)], &tag).unwrap();
    assert_eq!(rs[0].rows[0][0], Value::Int(1007));
    cluster.shutdown();
}

#[test]
fn reintegration_transfers_only_changed_pages() {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 2;
    let cluster = DmvCluster::start(spec);
    cluster
        .load_rows(TableId(0), (0..2000).map(|i| vec![i.into(), "o".into(), 1000.into()]).collect())
        .unwrap();
    cluster.finish_load();
    let session = cluster.session();
    let victim = cluster.slave_ids()[0];
    // Fresh checkpoint right before the failure: only post-failure
    // changes should move.
    cluster.replica(victim).unwrap().take_checkpoint();
    let total_pages = cluster.master(0).db().store().len();
    cluster.kill_replica(victim);
    cluster.detect_and_reconfigure();
    session.update_retry(&[deposit(1, 7)], 10).unwrap();
    let report = cluster.reintegrate(victim).unwrap();
    assert!(
        report.pages < total_pages / 2,
        "selective transfer moved {}/{} pages",
        report.pages,
        total_pages
    );
    cluster.shutdown();
}

#[test]
fn fresh_node_integration_transfers_everything() {
    let cluster = start_cluster(1, 0);
    let (id, report) = cluster.integrate_fresh_node().unwrap();
    let total_pages = cluster.master(0).db().store().len();
    assert_eq!(report.pages, total_pages, "fresh node needs every page");
    assert!(cluster.slave_ids().contains(&id));
    cluster.shutdown();
}

/// Regression (found by the dmv-dst fault-schedule explorer, seed 2,
/// shrunk to a single `integrate-fresh` event): a node integrated right
/// after the initial load — before any update bumped page versions —
/// must actually serve the loaded rows. The page-batch apply used to
/// drop images whose version was not strictly newer than the joiner's,
/// and a just-created page is at version 0, exactly like an untouched
/// loaded page; every migrated page was silently discarded and the
/// fresh node served empty scans.
#[test]
fn fresh_node_integrated_before_any_update_serves_loaded_rows() {
    let cluster = start_cluster(1, 0);
    let (id, report) = cluster.integrate_fresh_node().unwrap();
    assert!(report.pages > 0, "the whole database migrates");
    let fresh = cluster.replica(id).unwrap();
    let rs = fresh.execute_read(&[scan_all()], &cluster.latest_version()).unwrap();
    assert_eq!(rs[0].rows.len(), 100, "fresh node must serve the initial load");
    cluster.shutdown();
}

#[test]
fn scheduler_failover_preserves_versions() {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 2;
    spec.n_schedulers = 2;
    let cluster = DmvCluster::start(spec);
    cluster
        .load_rows(TableId(0), (0..20).map(|i| vec![i.into(), "o".into(), 0.into()]).collect())
        .unwrap();
    cluster.finish_load();
    let session = cluster.session();
    for _ in 0..5 {
        session.update(&[deposit(3, 1)]).unwrap();
    }
    cluster.kill_scheduler(0);
    // The peer scheduler recovered the latest version from the master:
    // a read through it must see all five deposits.
    let rs = session.read_retry(&[read_balance(3)], 10).unwrap();
    assert_eq!(rs[0].rows[0][0], Value::Int(5));
    cluster.shutdown();
}

#[test]
fn persistence_backend_receives_updates() {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 1;
    spec.n_backends = 1;
    let cluster = DmvCluster::start(spec);
    cluster
        .load_rows(TableId(0), (0..10).map(|i| vec![i.into(), "o".into(), 0.into()]).collect())
        .unwrap();
    cluster.finish_load();
    let session = cluster.session();
    // NOTE: the backend starts empty; it receives the update stream.
    for i in 0..10 {
        session.update(&[insert_account(100 + i)]).unwrap();
    }
    cluster.shutdown(); // drains the async feed
    let backend = &cluster.backends()[0];
    let rs = backend.execute_txn(&[scan_all()]).unwrap();
    assert_eq!(rs[0].rows.len(), 10, "all async-fed inserts applied");
    cluster.shutdown();
}

#[test]
fn total_memory_tier_loss_recovers_from_backend() {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 2;
    spec.n_backends = 1;
    let cluster = DmvCluster::start(spec);
    cluster.finish_load();
    let session = cluster.session();
    for i in 0..30 {
        session.update(&[insert_account(i)]).unwrap();
        session.update(&[deposit(i, i)]).unwrap();
    }
    cluster.shutdown(); // drain feed
                        // Catastrophe: every in-memory node dies. Rebuild a new cluster from
                        // the on-disk backend.
    let backend = Arc::clone(&cluster.backends()[0]);
    let dump = backend.execute_txn(&[scan_all()]).unwrap();
    let mut spec2 = ClusterSpec::fast_test(schema());
    spec2.n_slaves = 1;
    let cluster2 = DmvCluster::start(spec2);
    cluster2.load_rows(TableId(0), dump[0].rows.clone()).unwrap();
    cluster2.finish_load();
    let s2 = cluster2.session();
    let rs = s2.read(&[read_balance(29)]).unwrap();
    assert_eq!(rs[0].rows[0][0], Value::Int(1029));
    cluster2.shutdown();
}

#[test]
fn conflict_class_masters_run_disjoint_updates() {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 2;
    spec.conflict_classes = Some(vec![vec![TableId(0)], vec![TableId(1)]]);
    let cluster = DmvCluster::start(spec);
    cluster
        .load_rows(TableId(0), (0..10).map(|i| vec![i.into(), "o".into(), 0.into()]).collect())
        .unwrap();
    cluster.finish_load();
    let session = cluster.session();
    // Class 0: accounts. Class 1: audit. Updates go to different masters.
    session.update(&[deposit(1, 5)]).unwrap();
    session
        .update(&[Query::Insert { table: TableId(1), rows: vec![vec![1.into(), "note".into()]] }])
        .unwrap();
    let m0 = cluster.master(0);
    let m1 = cluster.master(1);
    assert_ne!(m0.id(), m1.id());
    // relaxed-ok: commit counted once despite broadcast fan-out
    assert_eq!(m0.stats.commits.load(std::sync::atomic::Ordering::Relaxed), 1);
    // relaxed-ok: commit counted once despite broadcast fan-out
    assert_eq!(m1.stats.commits.load(std::sync::atomic::Ordering::Relaxed), 1);
    // A read joining both tables sees both effects.
    let rs = session.read_retry(&[read_balance(1)], 5).unwrap();
    assert_eq!(rs[0].rows[0][0], Value::Int(5));
    let rs = session.read_retry(&[Query::Select(Select::scan(TableId(1)))], 5).unwrap();
    assert_eq!(rs[0].rows.len(), 1);
    cluster.shutdown();
}

#[test]
fn warmup_query_fraction_touches_spare() {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 1;
    spec.n_spares = 1;
    spec.warmup = WarmupStrategy::QueryFraction(0.25);
    let cluster = DmvCluster::start(spec);
    cluster
        .load_rows(TableId(0), (0..50).map(|i| vec![i.into(), "o".into(), 0.into()]).collect())
        .unwrap();
    cluster.finish_load();
    let spare_id = cluster.spare_ids()[0];
    let spare = cluster.replica(spare_id).unwrap();
    spare.evict_all();
    let session = cluster.session();
    for _ in 0..40 {
        session.read_retry(&[scan_all()], 5).unwrap();
    }
    // relaxed-ok: read served; counter read after requests completed
    let served = spare.stats.reads.load(std::sync::atomic::Ordering::Relaxed);
    assert!(served >= 5, "spare should serve ~25% of reads, served {served}");
    assert!(spare.resident_pages() > 0, "warmup must touch the spare's cache");
    cluster.shutdown();
}

#[test]
fn warmup_pageid_transfer_keeps_spare_resident() {
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 1;
    spec.n_spares = 1;
    spec.warmup = WarmupStrategy::PageIdTransfer { every_reads: 5 };
    let cluster = DmvCluster::start(spec);
    cluster
        .load_rows(TableId(0), (0..50).map(|i| vec![i.into(), "o".into(), 0.into()]).collect())
        .unwrap();
    cluster.finish_load();
    let spare_id = cluster.spare_ids()[0];
    let spare = cluster.replica(spare_id).unwrap();
    spare.evict_all();
    assert_eq!(spare.resident_pages(), 0);
    let session = cluster.session();
    for _ in 0..25 {
        session.read_retry(&[scan_all()], 5).unwrap();
    }
    // Hints travel the simulated network; give the receiver a beat.
    std::thread::sleep(Duration::from_millis(100));
    assert!(spare.resident_pages() > 0, "page-id transfer must fault hinted pages in");
    assert_eq!(
        // relaxed-ok: read served; counter read after requests completed
        spare.stats.reads.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "strategy B serves no reads on the spare"
    );
    cluster.shutdown();
}

#[test]
fn version_conflict_surfaces_as_retryable() {
    let cluster = start_cluster(1, 0);
    let session = cluster.session();
    // Single slave + interleaved writes: force a reader with an old tag
    // to land on pages upgraded by a reader with a newer tag.
    let c2 = Arc::clone(&cluster);
    let w = std::thread::spawn(move || {
        let s = c2.session();
        for _ in 0..30 {
            s.update_retry(&[deposit(1, 1)], 10).unwrap();
        }
    });
    let mut conflicts = 0;
    for _ in 0..100 {
        match session.read(&[read_balance(1)]) {
            Ok(_) => {}
            Err(e @ DmvError::VersionConflict { .. }) => {
                assert!(e.is_retryable());
                conflicts += 1;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    w.join().unwrap();
    // Conflicts may or may not occur (timing), but the accounting must
    // be consistent with the scheduler's counters.
    let stats = &cluster.stats()[0];
    assert_eq!(stats.version_aborts.get(), conflicts);
    cluster.shutdown();
}

#[test]
fn abort_rate_stays_low_with_enough_slaves() {
    let cluster = start_cluster(3, 0);
    let c2 = Arc::clone(&cluster);
    let w = std::thread::spawn(move || {
        let s = c2.session();
        for i in 0..60 {
            s.update_retry(&[deposit(i % 10, 1)], 10).unwrap();
        }
    });
    let mut readers = Vec::new();
    for _ in 0..3 {
        let c = Arc::clone(&cluster);
        readers.push(std::thread::spawn(move || {
            let s = c.session();
            for i in 0..100 {
                let _ = s.read_retry(&[read_balance(i % 10)], 10);
            }
        }));
    }
    w.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    let rate = cluster.version_abort_rate();
    assert!(rate < 0.05, "abort rate {rate} should stay low (paper: < 2.5%)");
    cluster.shutdown();
}

#[test]
fn slave_death_mid_ack_wait_does_not_stall_commit() {
    // Regression test for the ack-state leak on membership change: a
    // commit whose broadcast target dies between the send and its ack
    // must complete as soon as the death is noticed — not sit out the
    // full ack timeout. The timeout here is deliberately huge so a
    // regression shows up as a glaring stall, and `hold_flush` pins the
    // kill deterministically inside the broadcast→ack window.
    let mut spec = ClusterSpec::fast_test(schema());
    spec.n_slaves = 1;
    spec.ack_timeout = Duration::from_secs(30);
    let cluster = DmvCluster::start(spec);
    let rows: Vec<Vec<Value>> =
        (0..100).map(|i| vec![i.into(), format!("owner{}", i % 10).into(), 1000.into()]).collect();
    cluster.load_rows(TableId(0), rows).unwrap();
    cluster.finish_load();

    let master = cluster.master(0);
    let victim = cluster.slave_ids()[0];
    master.hold_flush();
    let c2 = Arc::clone(&cluster);
    let h = std::thread::spawn(move || {
        let start = dmv_common::clock::wall_now();
        c2.session().update(&[deposit(1, 1)]).unwrap();
        start.elapsed()
    });
    // Wait until the commit is parked in the coalescer queue.
    while master.pending_flush_count() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    // The only ack source dies; the broadcast then goes nowhere.
    cluster.kill_replica(victim);
    master.release_flush();
    cluster.detect_and_reconfigure();
    let elapsed = h.join().unwrap();
    assert!(
        elapsed < Duration::from_secs(10),
        "commit stalled {elapsed:?} waiting on a dead target's acks"
    );
    cluster.shutdown();
}

#[test]
fn concurrent_commits_coalesce_and_all_replicate() {
    // Group-commit smoke: many writers commit concurrently, every
    // update must survive batching (no write-set lost or reordered in
    // the coalescer) and reach every slave.
    let cluster = start_cluster(2, 0);
    let mut writers = Vec::new();
    for t in 0..8i64 {
        let c = Arc::clone(&cluster);
        writers.push(std::thread::spawn(move || {
            let s = c.session();
            for _ in 0..10 {
                s.update_retry(&[deposit(t, 1)], 10).unwrap();
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    let session = cluster.session();
    for t in 0..8i64 {
        let rs = session.read_retry(&[read_balance(t)], 10).unwrap();
        assert_eq!(rs[0].rows[0][0], Value::Int(1010), "account {t}");
    }
    cluster.shutdown();
}
