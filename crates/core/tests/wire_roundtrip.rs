//! Codec robustness properties (wire tier): every wire type round-trips
//! through encode/decode, `encoded_len` is exact byte-for-byte, and the
//! decoder is total — random bytes, truncations and trailing garbage
//! all surface as `DmvError::Codec`, never a panic.

use dmv_common::ids::{NodeId, PageId, PageSpace, TableId, TxnId};
use dmv_common::version::VersionVector;
use dmv_common::wire::{decode_exact, Wire};
use dmv_core::messages::{Msg, PageBatch, WriteSet, WriteSetBatch};
use dmv_pagestore::diff::{DiffRun, PageDiff};
use dmv_pagestore::PAGE_SIZE;
use proptest::prelude::*;
use std::sync::Arc;

/// Encode → decode must reproduce the value, and the byte count must
/// match `encoded_len` exactly (the simnet charge and the TCP frame
/// payload are the same bytes).
fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.encode();
    assert_eq!(bytes.len(), v.encoded_len(), "encoded_len drift for {v:?}");
    assert_eq!(&decode_exact::<T>(&bytes).unwrap(), v);
    // One trailing byte must be rejected, not silently ignored.
    let mut longer = bytes;
    longer.push(0);
    assert!(decode_exact::<T>(&longer).is_err(), "trailing byte accepted for {v:?}");
}

fn arb_space() -> impl Strategy<Value = PageSpace> {
    prop_oneof![Just(PageSpace::Heap), any::<u8>().prop_map(PageSpace::Index)]
}

fn arb_page_id() -> impl Strategy<Value = PageId> {
    (any::<u16>(), arb_space(), any::<u32>()).prop_map(|(t, space, page_no)| PageId {
        table: TableId(t),
        space,
        page_no,
    })
}

fn arb_txn_id() -> impl Strategy<Value = TxnId> {
    (any::<u32>(), any::<u64>()).prop_map(|(node, seq)| TxnId::new(NodeId(node), seq))
}

fn arb_version_vector() -> impl Strategy<Value = VersionVector> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(VersionVector::from_entries)
}

fn arb_diff() -> impl Strategy<Value = PageDiff> {
    proptest::collection::vec((0usize..PAGE_SIZE, 1usize..32, any::<u8>()), 0..6).prop_map(|runs| {
        let runs = runs
            .into_iter()
            .map(|(offset, len, fill)| DiffRun {
                offset: offset as u16,
                bytes: vec![fill; len.min(PAGE_SIZE - offset)],
            })
            .collect();
        PageDiff::from_runs(runs).expect("runs clamped to page bounds")
    })
}

fn arb_write_set() -> impl Strategy<Value = WriteSet> {
    (
        arb_txn_id(),
        any::<u64>(),
        arb_version_vector(),
        proptest::collection::vec((arb_page_id(), arb_diff()), 0..4),
    )
        .prop_map(|(txn, seq, versions, pages)| WriteSet { txn, seq, versions, pages })
}

fn arb_write_set_batch() -> impl Strategy<Value = WriteSetBatch> {
    proptest::collection::vec(arb_write_set().prop_map(Arc::new), 0..4)
        .prop_map(|sets| WriteSetBatch { sets })
}

fn arb_image() -> impl Strategy<Value = Vec<u8>> {
    (any::<u8>(), any::<u8>()).prop_map(|(fill, first)| {
        let mut img = vec![fill; PAGE_SIZE];
        img[0] = first;
        img
    })
}

fn arb_page_batch() -> impl Strategy<Value = PageBatch> {
    (proptest::collection::vec((arb_page_id(), any::<u64>(), arb_image()), 0..3), any::<bool>())
        .prop_map(|(pages, done)| PageBatch { pages, done })
}

/// Every [`Msg`] variant, with arbitrary contents.
fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        arb_write_set().prop_map(|ws| Msg::WriteSet(Arc::new(ws))),
        arb_write_set_batch().prop_map(|b| Msg::WriteSetBatch(Arc::new(b))),
        any::<u64>().prop_map(|seq| Msg::CumAck { seq }),
        arb_page_batch().prop_map(Msg::PageBatch),
        proptest::collection::vec(arb_page_id(), 0..8).prop_map(|pages| Msg::PageIdHint { pages }),
        arb_version_vector().prop_map(|versions| Msg::DiscardAbove { versions }),
        (any::<u32>(), proptest::collection::vec(any::<u32>(), 0..8)).prop_map(
            |(master, replicas)| Msg::Topology {
                master: NodeId(master),
                replicas: replicas.into_iter().map(NodeId).collect(),
            }
        ),
        arb_version_vector().prop_map(|versions| Msg::Watermark { versions }),
    ]
}

/// Two version vectors over the same table set (merge/compare are only
/// defined for equal lengths).
fn arb_vv_pair() -> impl Strategy<Value = (VersionVector, VersionVector)> {
    (0usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u64>(), n).prop_map(VersionVector::from_entries),
            proptest::collection::vec(any::<u64>(), n).prop_map(VersionVector::from_entries),
        )
    })
}

fn arb_vv_triple() -> impl Strategy<Value = (VersionVector, VersionVector, VersionVector)> {
    (0usize..6).prop_flat_map(|n| {
        let vv =
            || proptest::collection::vec(any::<u64>(), n).prop_map(VersionVector::from_entries);
        (vv(), vv(), vv())
    })
}

proptest! {
    #[test]
    fn msg_roundtrips_with_exact_len(msg in arb_msg()) {
        roundtrip(&msg);
    }

    // The version-vector lattice properties every consistency argument
    // rests on: the scheduler's "latest" is a running merge of commit
    // vectors, and read tags compare via `dominates`. Merge must be a
    // commutative, monotone least upper bound or tagged reads could be
    // routed to slaves that miss some of the commits the tag implies.

    #[test]
    fn vv_merge_is_commutative_and_dominates_both((a, b) in arb_vv_pair()) {
        let m = a.merged(&b);
        prop_assert_eq!(&m, &b.merged(&a));
        prop_assert!(m.dominates(&a) && m.dominates(&b));
        // Least upper bound: nothing strictly smaller also dominates both.
        prop_assert_eq!(&a.merged(&a), &a, "merge is idempotent");
    }

    #[test]
    fn vv_merge_is_monotone_and_associative((a, b, c) in arb_vv_triple()) {
        prop_assert_eq!(&a.merged(&b).merged(&c), &a.merged(&b.merged(&c)));
        if a.dominates(&b) {
            prop_assert!(
                a.merged(&c).dominates(&b.merged(&c)),
                "merging the same vector must preserve dominance"
            );
        }
        // Least-upper-bound minimality: any common upper bound of a and
        // b dominates their merge.
        let ub = a.merged(&b).merged(&c);
        prop_assert!(ub.dominates(&a.merged(&b)));
    }

    #[test]
    fn vv_dominance_is_a_partial_order((a, b) in arb_vv_pair()) {
        prop_assert!(a.dominates(&a), "reflexive");
        if a.dominates(&b) && b.dominates(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
        if a.strictly_dominates(&b) {
            prop_assert!(a.dominates(&b) && a != b);
        }
    }

    #[test]
    fn component_types_roundtrip(
        ws in arb_write_set(),
        wsb in arb_write_set_batch(),
        batch in arb_page_batch(),
        diff in arb_diff(),
        vv in arb_version_vector(),
        (page, txn) in (arb_page_id(), arb_txn_id()),
    ) {
        roundtrip(&ws);
        roundtrip(&wsb);
        roundtrip(&batch);
        roundtrip(&diff);
        roundtrip(&vv);
        roundtrip(&page);
        roundtrip(&txn);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_exact::<Msg>(&bytes);
        let _ = decode_exact::<WriteSet>(&bytes);
        let _ = decode_exact::<WriteSetBatch>(&bytes);
        let _ = decode_exact::<PageBatch>(&bytes);
        let _ = decode_exact::<VersionVector>(&bytes);
        let _ = decode_exact::<PageDiff>(&bytes);
    }

    #[test]
    fn truncation_is_always_an_error(msg in arb_msg(), cut in any::<usize>()) {
        let full = msg.encode();
        // A strict prefix can never be a complete message: all sequence
        // lengths are declared up front, so a missing tail is detected.
        let cut = cut % full.len();
        prop_assert!(decode_exact::<Msg>(&full[..cut]).is_err(), "cut at {}", cut);
    }

    #[test]
    fn corrupted_tag_never_decodes_to_the_original(msg in arb_msg(), flip in any::<u8>()) {
        let mut bytes = msg.encode();
        let flip = flip | 0x80; // tags are < 16, so this always changes the tag
        bytes[0] ^= flip;
        match decode_exact::<Msg>(&bytes) {
            // Unknown tag: rejected.
            Err(_) => {}
            // A different known tag may parse by coincidence, but must
            // not reproduce the original message.
            Ok(other) => prop_assert!(other != msg, "corrupt tag decoded to the original"),
        }
    }
}
