//! The schedule driver: runs one [`Schedule`] against a full
//! [`DmvCluster`] on the simulated network with fault injection, checks
//! the oracles inline and at the end, and produces a byte-stable trace.
//!
//! Determinism comes from three choices:
//!
//! 1. every client operation runs to completion on this thread before
//!    the next event starts (the schedule is the interleaving);
//! 2. the failure monitor is effectively disabled
//!    (`detect_interval = 1h`); detection happens only at explicit
//!    `detect` events, on this thread;
//! 3. the trace contains only synchronous facts (committed versions,
//!    routed tags, outcomes) — never timings, and never the
//!    asynchronous write-set stream.
//!
//! Masters synchronize with their replication targets before returning
//! (acks, bounded by `ack_timeout`), so the cluster state is settled at
//! every event boundary and quantities like migration page counts are
//! schedule-determined.

use crate::history::History;
use crate::oracle::{err_label, fmt_vv, rows_to_map, BankModel, Table};
use crate::schedule::{Event, Schedule, Workload};
use dmv_common::clock::{SimClock, TimeScale};
use dmv_common::config::NetProfile;
use dmv_common::error::DmvError;
use dmv_common::ids::{NodeId, TableId};
use dmv_common::version::VersionVector;
use dmv_core::cluster::{ClusterSpec, DmvCluster, Session};
use dmv_core::{Msg, SharedTap, TraceEvent};
use dmv_epoch::EpochGuard;
use dmv_net::{DynTransport, FaultTransport, SimnetTransport, Transport};
use dmv_ondisk::rows_digest;
use dmv_sql::{
    Access, ColType, Column, Expr, IndexDef, Query, Schema, Select, SetExpr, TableSchema,
};
use dmv_tpcw::backend::{load_cluster, load_diskdb};
use dmv_tpcw::interactions::IdAllocator;
use dmv_tpcw::populate::generate;
use dmv_tpcw::schema::tpcw_schema;
use dmv_tpcw::{Backend, Mix, StepDriver, TpcwScale};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Accounts table (conflict class 0).
pub const T_ACCT: TableId = TableId(0);
/// Counters table (conflict class 1 when split).
pub const T_CTR: TableId = TableId(1);

/// Outcome of one schedule run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The schedule seed.
    pub seed: u64,
    /// One line per event (plus the drain line): the canonical trace.
    pub trace: Vec<String>,
    /// Oracle violations; empty means the run passed.
    pub failures: Vec<String>,
    /// Committed update transactions observed.
    pub commits: u64,
    /// Committed read transactions observed.
    pub reads: u64,
    /// Aborted operations observed (retryable aborts are legal outcomes).
    pub aborts: u64,
}

impl RunReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The trace as one newline-joined string.
    pub fn trace_text(&self) -> String {
        self.trace.join("\n")
    }

    /// FNV-1a digest of the trace text: equal digests ⇔ byte-identical
    /// traces (determinism check).
    pub fn trace_digest(&self) -> u64 {
        fnv1a(self.trace_text().as_bytes())
    }
}

/// FNV-1a over raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bank_schema() -> Schema {
    Schema::new(vec![
        TableSchema::new(
            T_ACCT,
            "acct",
            vec![Column::new("id", ColType::Int), Column::new("bal", ColType::Int)],
            vec![IndexDef::unique("pk", vec![0])],
        ),
        TableSchema::new(
            T_CTR,
            "ctr",
            vec![Column::new("id", ColType::Int), Column::new("n", ColType::Int)],
            vec![IndexDef::unique("pk", vec![0])],
        ),
    ])
}

fn add_int(table: TableId, id: i64, delta: i64) -> Query {
    Query::Update {
        table,
        access: Access::Auto,
        filter: Some(Expr::eq(0, id)),
        set: vec![(1, SetExpr::AddInt(delta))],
    }
}

fn bank_scans() -> Vec<Query> {
    vec![Query::Select(Select::scan(T_ACCT)), Query::Select(Select::scan(T_CTR))]
}

struct Harness<'a> {
    s: &'a Schedule,
    schema: Schema,
    cluster: Arc<DmvCluster>,
    session: Session,
    sim: SimnetTransport<Msg>,
    fault: Arc<FaultTransport<Msg>>,
    history: Arc<History>,
    /// Nodes crashed by an armed trigger (filled by the transport
    /// callback, on this thread — triggers fire during driver sends).
    killed: Arc<Mutex<Vec<NodeId>>>,
    /// Bank model; `None` for the TPC-W workload.
    model: Option<BankModel>,
    /// Per-client last observed read tag (monotonicity oracle).
    last_tags: HashMap<u64, VersionVector>,
    /// Killed but not yet detected.
    pending_dead: Vec<NodeId>,
    /// Detected-dead nodes available for reintegration.
    dead_pool: Vec<NodeId>,
    /// Open partitions (master, slave).
    partitions: Vec<(NodeId, NodeId)>,
    /// TPC-W per-client step drivers, lazily created.
    drivers: HashMap<u64, StepDriver>,
    tpcw: Option<(Backend, Arc<IdAllocator>, TpcwScale)>,
    /// Active buffer budget in pages (set by `mem-pressure`, persists).
    budget_pages: Option<u32>,
    /// Per-client pinned snapshots: each client's last successful read
    /// tag plus the live epoch guard holding it pinned. The GC-safety
    /// oracle recomputes the pin floor from *this* map — the harness's
    /// own bookkeeping — so a broken epoch manager cannot vouch for
    /// itself.
    pins: HashMap<u64, (VersionVector, EpochGuard)>,
    failures: Vec<String>,
    commits: u64,
    reads: u64,
    aborts: u64,
}

/// Runs `s` to completion and evaluates every oracle.
pub fn run_schedule(s: &Schedule) -> RunReport {
    run_schedule_inner(s, false)
}

/// Deliberate-mutation entry point: runs `s` with the epoch manager's
/// `set_ignore_pins_for_test` hook armed, so the reclamation watermark
/// runs straight past pinned readers. The GC-safety oracle MUST fail on
/// any schedule that pins a tag and then commits past it — a passing
/// run here means the oracle has lost its teeth.
pub fn run_schedule_with_gc_mutation(s: &Schedule) -> RunReport {
    run_schedule_inner(s, true)
}

fn run_schedule_inner(s: &Schedule, mutate_gc: bool) -> RunReport {
    let cfg = &s.config;
    let schema = match cfg.workload {
        Workload::Bank => bank_schema(),
        Workload::Tpcw => tpcw_schema(),
    };
    let mut spec = ClusterSpec::fast_test(schema.clone());
    spec.n_slaves = cfg.n_slaves;
    spec.n_spares = cfg.n_spares;
    spec.n_backends = cfg.n_backends;
    // Detection happens only at explicit `detect` events; park the
    // monitor far beyond any run.
    spec.detect_interval = Duration::from_secs(3600);
    spec.ack_timeout = Duration::from_millis(120);
    spec.lock_timeout = Duration::from_millis(150);
    if cfg.workload == Workload::Bank && cfg.n_classes >= 2 {
        spec.conflict_classes = Some(vec![vec![T_ACCT], vec![T_CTR]]);
    }
    let sim = SimnetTransport::<Msg>::new(NetProfile::zero(), SimClock::new(TimeScale::realtime()));
    let fault = Arc::new(FaultTransport::new(Arc::new(sim.clone()) as Arc<dyn Transport<Msg>>));
    let net: DynTransport<Msg> = Arc::clone(&fault) as DynTransport<Msg>;
    let cluster = DmvCluster::start_with_transport(spec, net);

    let mut model = None;
    let mut tpcw = None;
    match cfg.workload {
        Workload::Bank => {
            let acct: Vec<Vec<dmv_sql::Value>> =
                (0..cfg.n_accounts).map(|i| vec![i.into(), 100i64.into()]).collect();
            let ctr: Vec<Vec<dmv_sql::Value>> =
                (0..cfg.n_counters).map(|i| vec![i.into(), 0i64.into()]).collect();
            cluster.load_rows(T_ACCT, acct.clone()).expect("load accounts");
            cluster.load_rows(T_CTR, ctr.clone()).expect("load counters");
            for b in cluster.backends() {
                b.bulk_load(T_ACCT, &acct).expect("load backend accounts");
                b.bulk_load(T_CTR, &ctr).expect("load backend counters");
            }
            model = Some(BankModel::new(cfg.n_accounts, cfg.n_counters));
        }
        Workload::Tpcw => {
            let scale = TpcwScale::tiny();
            let pop = generate(scale, s.seed);
            load_cluster(&cluster, &pop).expect("load tpcw cluster");
            for b in cluster.backends() {
                load_diskdb(b, &pop).expect("load tpcw backend");
            }
            let ids = Arc::new(IdAllocator::from_population(scale, &pop));
            tpcw = Some((Backend::Dmv(cluster.session()), ids, scale));
        }
    }
    cluster.finish_load();
    if mutate_gc {
        cluster.epoch().set_ignore_pins_for_test(true);
    }

    let history = Arc::new(History::new());
    cluster.set_trace_tap(Arc::clone(&history) as SharedTap);
    let killed: Arc<Mutex<Vec<NodeId>>> = Arc::new(Mutex::new(Vec::new()));
    {
        // Weak: the callback lives inside the transport, which the
        // cluster owns — an Arc here would leak the whole cluster.
        let weak = Arc::downgrade(&cluster);
        let killed = Arc::clone(&killed);
        fault.set_on_kill(Box::new(move |n| {
            killed.lock().push(n);
            if let Some(c) = weak.upgrade() {
                c.kill_replica(n);
            }
        }));
    }

    let session = cluster.session();
    let mut h = Harness {
        s,
        schema,
        cluster,
        session,
        sim,
        fault,
        history,
        killed,
        model,
        last_tags: HashMap::new(),
        pending_dead: Vec::new(),
        dead_pool: Vec::new(),
        partitions: Vec::new(),
        drivers: HashMap::new(),
        tpcw,
        budget_pages: None,
        pins: HashMap::new(),
        failures: Vec::new(),
        commits: 0,
        reads: 0,
        aborts: 0,
    };

    let mut trace = Vec::with_capacity(s.events.len() + 2);
    for (idx, ev) in s.events.iter().enumerate() {
        let outcome = h.step(ev);
        trace.push(format!("{idx:03} {ev} | {outcome}"));
        // Once a budget is active, reclamation runs continuously: a GC
        // sweep plus the bounded-memory and GC-safety oracles after
        // every event. Oracle verdicts go to `failures`, not the trace
        // — the trace stays a function of the schedule alone.
        if h.budget_pages.is_some() {
            h.gc_check();
        }
    }
    trace.push(format!("end drain | {}", h.drain()));
    trace.push(format!("end oracle | {}", h.final_oracles()));

    RunReport {
        seed: s.seed,
        trace,
        failures: h.failures,
        commits: h.commits,
        reads: h.reads,
        aborts: h.aborts,
    }
}

impl Harness<'_> {
    fn fail(&mut self, msg: String) {
        self.failures.push(msg);
    }

    fn drain_ops(&self) -> Vec<TraceEvent> {
        self.history.drain_ops()
    }

    /// First alive slave ids, in topology order.
    fn alive_slaves(&self) -> Vec<NodeId> {
        self.cluster
            .slave_ids()
            .into_iter()
            .filter(|id| self.cluster.replica(*id).is_some_and(|r| r.is_alive()))
            .collect()
    }

    fn master_id(&self, class: usize) -> NodeId {
        let n = self.s.config.n_classes.max(1);
        self.cluster.master(class % n).id()
    }

    fn step(&mut self, ev: &Event) -> String {
        match ev {
            Event::Transfer { from, to, amount, .. } => {
                let (from, to, amount) = (*from, *to, *amount);
                let res = self
                    .session
                    .update(&[add_int(T_ACCT, from, -amount), add_int(T_ACCT, to, amount)]);
                self.bank_commit(res.map(|_| ()), T_ACCT, move |t| {
                    *t.entry(from).or_insert(0) -= amount;
                    *t.entry(to).or_insert(0) += amount;
                })
            }
            Event::Deposit { acct, amount, .. } => {
                let (acct, amount) = (*acct, *amount);
                let res = self.session.update(&[add_int(T_ACCT, acct, amount)]);
                self.bank_commit(res.map(|_| ()), T_ACCT, move |t| {
                    *t.entry(acct).or_insert(0) += amount;
                })
            }
            Event::Bump { ctr, .. } => {
                let ctr = *ctr;
                let res = self.session.update(&[add_int(T_CTR, ctr, 1)]);
                self.bank_commit(res.map(|_| ()), T_CTR, move |t| {
                    *t.entry(ctr).or_insert(0) += 1;
                })
            }
            Event::Read { client } => self.tagged_read(*client),
            Event::StaleRead { client, back } => self.stale_read(*client, *back),
            Event::Tpcw { client } => self.tpcw_step(*client),
            Event::KillSlave { nth } => {
                let alive = self.alive_slaves();
                if alive.is_empty() {
                    return "none".to_string();
                }
                let id = alive[nth % alive.len()];
                self.cluster.kill_replica(id);
                self.pending_dead.push(id);
                format!("killed={id:?}")
            }
            Event::KillMaster { class } => {
                let id = self.master_id(*class);
                self.cluster.kill_replica(id);
                self.pending_dead.push(id);
                format!("killed={id:?}")
            }
            Event::KillMasterMid { class, sends } => self.kill_master_mid(*class, *sends),
            Event::KillMasterMidBatch { class, sends } => {
                self.kill_master_mid_batch(*class, *sends)
            }
            Event::Detect => self.detect(),
            Event::Reintegrate => match self.dead_pool.first().copied() {
                None => "none".to_string(),
                Some(id) => {
                    self.dead_pool.remove(0);
                    match self.cluster.reintegrate(id) {
                        Ok(rep) => format!("node={id:?} pages={}", rep.pages),
                        Err(e) => {
                            // Infeasible (e.g. no support slave) is an
                            // outcome, not an oracle violation; data
                            // oracles still run afterwards.
                            self.dead_pool.insert(0, id);
                            format!("err={}", err_label(&e))
                        }
                    }
                }
            },
            Event::IntegrateFresh => match self.cluster.integrate_fresh_node() {
                Ok((id, rep)) => format!("node={id:?} pages={}", rep.pages),
                Err(e) => format!("err={}", err_label(&e)),
            },
            Event::Partition { class, nth } => {
                let m = self.master_id(*class);
                let alive: Vec<NodeId> =
                    self.alive_slaves().into_iter().filter(|id| *id != m).collect();
                if alive.is_empty() {
                    return "none".to_string();
                }
                let sid = alive[nth % alive.len()];
                self.fault.partition(m, sid);
                self.partitions.push((m, sid));
                format!("cut={m:?}-{sid:?}")
            }
            Event::HealAll => self.heal_all(),
            Event::LatencySpike { micros } => {
                self.sim.network().set_extra_delay(Duration::from_micros(*micros));
                "-".to_string()
            }
            Event::LatencyNormal => {
                self.sim.network().set_extra_delay(Duration::ZERO);
                "-".to_string()
            }
            Event::BackendStall => {
                for b in self.cluster.backends() {
                    b.set_stalled(true);
                }
                "-".to_string()
            }
            Event::BackendResume => {
                for b in self.cluster.backends() {
                    b.set_stalled(false);
                }
                "-".to_string()
            }
            Event::MemPressure { pages } => {
                self.budget_pages = Some(*pages);
                let clamped = self.apply_budgets();
                format!("budget_pages={pages} clamped={clamped}")
            }
        }
    }

    /// Live replica ids (slaves and masters), sorted and deduped.
    fn live_replica_ids(&self) -> Vec<NodeId> {
        let mut ids = self.alive_slaves();
        for class in 0..self.s.config.n_classes.max(1) {
            ids.push(self.master_id(class));
        }
        ids.sort_unstable();
        ids.dedup();
        ids.retain(|id| self.cluster.replica(*id).is_some_and(|r| r.is_alive()));
        ids
    }

    /// (Re)applies the active buffer budget to every live replica's
    /// page store. Idempotent, and re-run before every GC check so
    /// nodes that joined after the `mem-pressure` event (reintegration,
    /// fresh integration) are clamped too.
    fn apply_budgets(&self) -> usize {
        let Some(pages) = self.budget_pages else { return 0 };
        let bytes = u64::from(pages) * dmv_pagestore::PAGE_SIZE as u64;
        let ids = self.live_replica_ids();
        for id in &ids {
            if let Some(r) = self.cluster.replica(*id) {
                r.db().store().set_budget_bytes(bytes);
            }
        }
        ids.len()
    }

    /// One reclamation round plus the two epoch oracles.
    ///
    /// * **GC-safety**: the sweep's watermark never exceeds the latest
    ///   committed vector, nor any tag in the harness's own pin map —
    ///   so no pinned reader can have had a version it may still ask
    ///   for reclaimed out from under it. (The read-path oracles keep
    ///   proving the stronger data-level claim: a pinned-tag read
    ///   returns exactly its snapshot or aborts with `VersionConflict`.)
    /// * **Bounded-memory**: after the sweep, every live replica's
    ///   pending diff bytes plus resident page bytes fit in the budget
    ///   plus a fixed slack (dirty pages the evictor must skip, plus a
    ///   few pages of in-flight diffs the watermark has not covered).
    fn gc_check(&mut self) {
        self.apply_budgets();
        let wm = self.cluster.gc_sweep();
        let latest = self.cluster.epoch().latest();
        let mut problems = Vec::new();
        if !latest.dominates(&wm) {
            problems.push(format!(
                "GC safety violated: watermark {} exceeds committed latest {}",
                fmt_vv(&wm),
                fmt_vv(&latest)
            ));
        }
        for (client, (tag, _guard)) in &self.pins {
            if !tag.dominates(&wm) {
                problems.push(format!(
                    "GC safety violated: watermark {} overtook client {client}'s pinned tag {}",
                    fmt_vv(&wm),
                    fmt_vv(tag)
                ));
            }
        }
        let budget = u64::from(self.budget_pages.expect("gc_check runs only under a budget"))
            * dmv_pagestore::PAGE_SIZE as u64;
        let slack = 4 * dmv_pagestore::PAGE_SIZE as u64;
        for id in self.live_replica_ids() {
            let Some(r) = self.cluster.replica(id) else { continue };
            let store = r.db().store();
            store.enforce_budget();
            let dirty: u64 = store
                .page_ids()
                .iter()
                .filter(|p| store.get(**p).is_some_and(|c| c.is_dirty()))
                .count() as u64
                * dmv_pagestore::PAGE_SIZE as u64;
            let resident = store.resident_bytes();
            let pending = r.pending_bytes();
            if pending + resident > budget + dirty + slack {
                problems.push(format!(
                    "bounded-memory violated on node {id:?}: pending {pending}B + \
                     resident {resident}B > budget {budget}B + dirty {dirty}B + slack {slack}B"
                ));
            }
        }
        for p in problems {
            self.fail(p);
        }
    }

    /// Common tail of every bank update: attribute the drained trace
    /// events, advance the model on commit, record aborts.
    fn bank_commit(
        &mut self,
        res: Result<(), DmvError>,
        table: TableId,
        f: impl FnOnce(&mut Table),
    ) -> String {
        let drained = self.drain_ops();
        match res {
            Ok(()) => {
                let Some(v) = drained.iter().find_map(|e| match e {
                    TraceEvent::UpdateCommitted { version, .. } => Some(version.get(table)),
                    _ => None,
                }) else {
                    self.fail("committed update produced no UpdateCommitted event".to_string());
                    return "commit v=?".to_string();
                };
                self.commits += 1;
                let model = self.model.as_mut().expect("bank events imply bank model");
                let out = if table == T_ACCT {
                    model.commit_accounts(v, f)
                } else {
                    model.commit_counters(v, f)
                };
                if let Err(msg) = out {
                    self.fail(msg);
                }
                format!("commit v{}={v}", table.0)
            }
            Err(e) => {
                self.aborts += 1;
                format!("abort={}", err_label(&e))
            }
        }
    }

    /// A scheduler-routed read of both bank tables, checked against the
    /// model snapshot at exactly the assigned tag.
    fn tagged_read(&mut self, client: u64) -> String {
        let res = self.session.read(&bank_scans());
        let drained = self.drain_ops();
        let routed = drained.iter().find_map(|e| match e {
            TraceEvent::ReadRouted { slave, tag, .. } => Some((*slave, tag.clone())),
            _ => None,
        });
        if let Some((_, tag)) = &routed {
            self.check_monotone(client, tag);
        }
        match res {
            Ok(rs) => {
                let Some((slave, tag)) = routed else {
                    self.fail("committed read produced no ReadRouted event".to_string());
                    return "ok tag=?".to_string();
                };
                self.reads += 1;
                self.check_bank_snapshot(&tag, &rs[0].rows, &rs[1].rows, "read");
                // The client keeps its snapshot pinned until its next
                // read (a long-running reader from the epoch manager's
                // point of view); the old guard drops on replace.
                let guard = self.cluster.epoch().pin(&tag);
                self.pins.insert(client, (tag.clone(), guard));
                format!("slave={slave:?} tag={} ok", fmt_vv(&tag))
            }
            Err(e) => {
                self.aborts += 1;
                format!("abort={}", err_label(&e))
            }
        }
    }

    /// Direct slave read at a back-dated tag: must return exactly the
    /// old snapshot, or abort — never future data.
    fn stale_read(&mut self, _client: u64, back: u64) -> String {
        let model = self.model.as_ref().expect("stale reads imply bank model");
        let v0 = model.accounts_version_back(back);
        let v1 = model.counters_version_back(back);
        let mut tag = VersionVector::new(self.schema.len());
        tag.set(T_ACCT, v0);
        tag.set(T_CTR, v1);
        let Some(sid) = self.alive_slaves().first().copied() else {
            return "no-slave".to_string();
        };
        let slave = self.cluster.replica(sid).expect("alive slave listed in topology");
        match slave.execute_read(&bank_scans(), &tag) {
            Ok(rs) => {
                self.reads += 1;
                self.check_bank_snapshot(&tag, &rs[0].rows, &rs[1].rows, "stale-read");
                format!("slave={sid:?} tag={} ok", fmt_vv(&tag))
            }
            // A page already materialized past the tag must abort the
            // reader (paper §2.2) — that is the oracle passing.
            Err(DmvError::VersionConflict { .. }) => {
                self.aborts += 1;
                "abort=VersionConflict".to_string()
            }
            Err(DmvError::NodeFailed(_)) => {
                self.aborts += 1;
                "abort=NodeFailed".to_string()
            }
            Err(e) => {
                self.fail(format!("stale read failed unexpectedly: {}", err_label(&e)));
                format!("abort={}", err_label(&e))
            }
        }
    }

    fn check_bank_snapshot(
        &mut self,
        tag: &VersionVector,
        acct_rows: &[dmv_sql::row::Row],
        ctr_rows: &[dmv_sql::row::Row],
        what: &str,
    ) {
        let model = self.model.as_ref().expect("bank snapshot checks imply bank model");
        let mut problems = Vec::new();
        match (rows_to_map(acct_rows), model.accounts_at(tag.get(T_ACCT))) {
            (Ok(got), Some(want)) => {
                if got != *want {
                    problems.push(format!(
                        "{what} at tag {} returned accounts {got:?}, expected {want:?}",
                        fmt_vv(tag)
                    ));
                }
            }
            (Err(e), _) => problems.push(format!("{what}: bad accounts rows: {e}")),
            (_, None) => problems.push(format!(
                "{what} tagged accounts version {} which was never committed",
                tag.get(T_ACCT)
            )),
        }
        match (rows_to_map(ctr_rows), model.counters_at(tag.get(T_CTR))) {
            (Ok(got), Some(want)) => {
                if got != *want {
                    problems.push(format!(
                        "{what} at tag {} returned counters {got:?}, expected {want:?}",
                        fmt_vv(tag)
                    ));
                }
            }
            (Err(e), _) => problems.push(format!("{what}: bad counters rows: {e}")),
            (_, None) => problems.push(format!(
                "{what} tagged counters version {} which was never committed",
                tag.get(T_CTR)
            )),
        }
        for p in problems {
            self.fail(p);
        }
    }

    /// Per-client read tags must never move backwards.
    fn check_monotone(&mut self, client: u64, tag: &VersionVector) {
        if let Some(prev) = self.last_tags.get(&client) {
            if !tag.dominates(prev) {
                self.fail(format!(
                    "client {client} read tag moved backwards: {} after {}",
                    fmt_vv(tag),
                    fmt_vv(prev)
                ));
            }
        }
        self.last_tags.insert(client, tag.clone());
    }

    fn tpcw_step(&mut self, client: u64) -> String {
        let (backend, ids, scale) = self.tpcw.as_ref().expect("tpcw events imply tpcw workload");
        let (backend, ids, scale) = (backend.clone(), Arc::clone(ids), *scale);
        let seed = self.s.seed;
        let drv = self
            .drivers
            .entry(client)
            .or_insert_with(|| StepDriver::new(seed, client, ids, scale, Mix::Shopping));
        let (kind, res) = drv.step(&backend, 3);
        let drained = self.drain_ops();
        let tags: Vec<VersionVector> = drained
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ReadRouted { tag, .. } => Some(tag.clone()),
                _ => None,
            })
            .collect();
        for tag in &tags {
            self.check_monotone(client, tag);
        }
        if let Some(tag) = tags.last() {
            let guard = self.cluster.epoch().pin(tag);
            self.pins.insert(client, (tag.clone(), guard));
        }
        for e in &drained {
            match e {
                TraceEvent::UpdateCommitted { .. } => self.commits += 1,
                TraceEvent::ReadCommitted { .. } => self.reads += 1,
                TraceEvent::UpdateAborted { .. } | TraceEvent::ReadAborted { .. } => {
                    self.aborts += 1;
                }
                _ => {}
            }
        }
        match res {
            Ok(()) => format!("{kind:?} ok"),
            Err(e) => format!("{kind:?} abort={}", err_label(&e)),
        }
    }

    /// Arms the crash trigger on the class master and issues updates
    /// until it fires (bank: one targeted write suffices; TPC-W: step
    /// client 0 a few times, since some interactions are read-only).
    fn kill_master_mid(&mut self, class: usize, sends: u32) -> String {
        let m = self.master_id(class);
        self.fault.kill_after_sends(m, sends);
        let mut probe_outcomes = Vec::new();
        match self.s.config.workload {
            Workload::Bank => {
                let ev = if self.s.config.n_classes >= 2 && class % 2 == 1 {
                    Event::Bump { client: 0, ctr: 0 }
                } else {
                    Event::Transfer { client: 0, from: 0, to: 1, amount: 1 }
                };
                probe_outcomes.push(self.step(&ev));
            }
            Workload::Tpcw => {
                for _ in 0..4 {
                    probe_outcomes.push(self.step(&Event::Tpcw { client: 0 }));
                    if self.killed.lock().contains(&m) {
                        break;
                    }
                }
            }
        }
        let fired = self.killed.lock().contains(&m);
        if fired {
            self.pending_dead.push(m);
        } else {
            self.fault.clear_triggers();
        }
        format!("target={m:?} fired={fired} probes=[{}]", probe_outcomes.join("; "))
    }

    /// Crashes the class master in the middle of a *batched* broadcast:
    /// the flusher is held while two committers on disjoint tables park
    /// in their ack waits, so both write-sets coalesce into one
    /// `WriteSetBatch` frame; releasing the flusher with the trigger
    /// armed kills the master partway through the frame's target list.
    /// Both commits then abort (`NodeFailed` — the master died before
    /// acking), so the scheduler's committed watermark never advances
    /// and fail-over must discard the whole batch on every survivor.
    fn kill_master_mid_batch(&mut self, class: usize, sends: u32) -> String {
        // Both probe tables must hash to the same master; generated
        // schedules guarantee this, hand-written ones get a guard.
        if self.s.config.workload != Workload::Bank || self.s.config.n_classes != 1 {
            return "skipped (needs single-class bank)".to_string();
        }
        let m = self.master_id(class);
        let Some(node) = self.cluster.replica(m) else {
            return "none".to_string();
        };
        node.hold_flush();
        let (s1, s2) = (self.cluster.session(), self.cluster.session());
        // Disjoint tables: the page-level 2PL locks never conflict, so
        // both threads reach their ack waits with write-sets queued.
        let t1 = std::thread::spawn(move || s1.update(&[add_int(T_ACCT, 0, 1)]).map(|_| ()));
        let t2 = std::thread::spawn(move || s2.update(&[add_int(T_CTR, 0, 1)]).map(|_| ()));
        while node.pending_flush_count() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.fault.kill_after_sends(m, sends);
        // The flush (and therefore the crash trigger) runs on this
        // thread: the kill lands deterministically mid-broadcast.
        node.release_flush();
        let results = [
            (T_ACCT, t1.join().expect("committer thread panicked")),
            (T_CTR, t2.join().expect("committer thread panicked")),
        ];
        let drained = self.drain_ops();
        let fired = self.killed.lock().contains(&m);
        let mut outcomes = Vec::new();
        for (table, res) in results {
            match res {
                Ok(()) => {
                    // Trigger did not fire (oversized `sends`): the
                    // commit is real, so the model must follow it.
                    let v = drained
                        .iter()
                        .filter_map(|e| match e {
                            TraceEvent::UpdateCommitted { version, .. } => Some(version.get(table)),
                            _ => None,
                        })
                        .max();
                    let Some(v) = v else {
                        self.fail("committed update produced no UpdateCommitted event".into());
                        continue;
                    };
                    self.commits += 1;
                    let model = self.model.as_mut().expect("bank events imply bank model");
                    let out = if table == T_ACCT {
                        model.commit_accounts(v, |t| *t.entry(0).or_insert(0) += 1)
                    } else {
                        model.commit_counters(v, |t| *t.entry(0).or_insert(0) += 1)
                    };
                    if let Err(msg) = out {
                        self.fail(msg);
                    }
                    outcomes.push(format!("commit v{}={v}", table.0));
                }
                Err(e) => {
                    self.aborts += 1;
                    outcomes.push(format!("abort={}", err_label(&e)));
                }
            }
        }
        if fired {
            self.pending_dead.push(m);
        } else {
            self.fault.clear_triggers();
        }
        format!("target={m:?} fired={fired} outcomes=[{}]", outcomes.join("; "))
    }

    fn detect(&mut self) -> String {
        self.cluster.detect_and_reconfigure();
        let drained = self.drain_ops();
        let pending: Vec<NodeId> = self.pending_dead.drain(..).collect();
        self.dead_pool.extend(pending);
        let mut notes = Vec::new();
        for e in &drained {
            match e {
                TraceEvent::Promoted { node, from } => {
                    notes.push(format!("promoted={node:?} from={}", fmt_vv(from)));
                }
                TraceEvent::DiscardedAbove { node, keep } => {
                    notes.push(format!("discarded node={node:?} keep={}", fmt_vv(keep)));
                }
                _ => {}
            }
        }
        if drained.iter().any(|e| matches!(e, TraceEvent::Promoted { .. })) {
            self.check_no_partial_batch_survived();
        }
        if notes.is_empty() {
            "-".to_string()
        } else {
            notes.join(" ")
        }
    }

    /// §4.2 all-or-nothing oracle, checked after every fail-over: a
    /// write-set (or any prefix of a batch) that was broadcast but
    /// never acknowledged must not survive the discard on any live
    /// replica. The harness is quiescent at `detect` boundaries, so
    /// every live replica's received-version watermark must sit at or
    /// below the scheduler's committed watermark — anything above it is
    /// a partially replicated batch leaking through fail-over.
    fn check_no_partial_batch_survived(&mut self) {
        let latest = self.cluster.latest_version();
        let mut ids = self.alive_slaves();
        for class in 0..self.s.config.n_classes.max(1) {
            ids.push(self.master_id(class));
        }
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let Some(r) = self.cluster.replica(id) else { continue };
            if !r.is_alive() {
                continue;
            }
            let received = r.applier().received();
            if !latest.dominates(&received) {
                self.fail(format!(
                    "partially replicated batch survived fail-over: node {id:?} \
                     received {} but the committed watermark is {}",
                    fmt_vv(&received),
                    fmt_vv(&latest)
                ));
            }
        }
    }

    /// Heals every open partition. A healed slave that missed
    /// write-sets can never catch up from the stream (dropped diffs are
    /// not redelivered), so it is killed and reintegrated — the §4.4
    /// migration is the catch-up path.
    fn heal_all(&mut self) -> String {
        let cuts: Vec<(NodeId, NodeId)> = self.partitions.drain(..).collect();
        if cuts.is_empty() {
            return "-".to_string();
        }
        let mut notes = Vec::new();
        for (m, sid) in &cuts {
            self.fault.heal(*m, *sid);
            notes.push(format!("healed={m:?}-{sid:?}"));
        }
        let latest = self.cluster.latest_version();
        for (_, sid) in &cuts {
            let Some(r) = self.cluster.replica(*sid) else { continue };
            if r.is_alive() && !r.applier().received().dominates(&latest) {
                self.cluster.kill_replica(*sid);
                self.cluster.detect_and_reconfigure();
                match self.cluster.reintegrate(*sid) {
                    Ok(rep) => notes.push(format!("resync={sid:?} pages={}", rep.pages)),
                    Err(e) => notes.push(format!("resync-err={}", err_label(&e))),
                }
            }
        }
        let _ = self.drain_ops(); // reconfiguration events are summarized above
        notes.join(" ")
    }

    /// End-of-run repair: disarm triggers, restore the network, resume
    /// backends, detect everything — the cluster must now converge.
    fn drain(&mut self) -> String {
        self.fault.clear_triggers();
        self.sim.network().set_extra_delay(Duration::ZERO);
        for b in self.cluster.backends() {
            b.set_stalled(false);
        }
        let healed = self.heal_all();
        let detected = self.detect();
        // With every reader gone the watermark reaches the committed
        // latest, so a final sweep must drain every pending queue: a
        // diff still queued now is a leak the reclamation missed.
        self.pins.clear();
        if self.budget_pages.is_some() {
            self.gc_check();
            let wm = self.cluster.epoch().published();
            for id in self.live_replica_ids() {
                let Some(r) = self.cluster.replica(id) else { continue };
                let pending = r.pending_bytes();
                if pending > 0 {
                    self.fail(format!(
                        "reclamation leak: node {id:?} still holds {pending} pending \
                         diff bytes after the unpinned final sweep (watermark {}, \
                         latest {}, node received {}, floors {:?})",
                        fmt_vv(&wm),
                        fmt_vv(&self.cluster.epoch().latest()),
                        fmt_vv(&r.applier().received()),
                        self.cluster.epoch().floor_entries()
                    ));
                }
            }
        }
        format!("heal:{healed} detect:{detected}")
    }

    /// Post-drain oracles: convergence of every live slave at the
    /// latest tag, agreement of the on-disk tier, digest equality.
    fn final_oracles(&mut self) -> String {
        match self.s.config.workload {
            Workload::Bank => self.final_bank(),
            Workload::Tpcw => self.final_tpcw(),
        }
    }

    fn final_bank(&mut self) -> String {
        let tag = self.cluster.latest_version();
        let model = self.model.as_ref().expect("bank run has a model");
        let version_msg = (tag.get(T_ACCT) != model.accounts_version()
            || tag.get(T_CTR) != model.counters_version())
        .then(|| {
            format!(
                "scheduler latest {} disagrees with model versions [{},{}]",
                fmt_vv(&tag),
                model.accounts_version(),
                model.counters_version()
            )
        });
        let want_acct = model.final_accounts().clone();
        let want_ctr = model.final_counters().clone();
        if let Some(msg) = version_msg {
            self.fail(msg);
        }
        let slaves = self.alive_slaves();
        if slaves.is_empty() {
            self.fail("no live slave survived to the end of the run".to_string());
        }
        let mut mem_digest = None;
        for sid in &slaves {
            let slave = self.cluster.replica(*sid).expect("alive slave listed in topology");
            match slave.execute_read(&bank_scans(), &tag) {
                Ok(rs) => {
                    match rows_to_map(&rs[0].rows) {
                        Ok(got) if got == want_acct => {}
                        Ok(got) => self.fail(format!(
                            "slave {sid:?} final accounts {got:?} != model {want_acct:?}"
                        )),
                        Err(e) => self.fail(format!("slave {sid:?} final accounts: {e}")),
                    }
                    match rows_to_map(&rs[1].rows) {
                        Ok(got) if got == want_ctr => {}
                        Ok(got) => self.fail(format!(
                            "slave {sid:?} final counters {got:?} != model {want_ctr:?}"
                        )),
                        Err(e) => self.fail(format!("slave {sid:?} final counters: {e}")),
                    }
                    mem_digest = Some(rows_digest([
                        (T_ACCT.0, rs[0].rows.as_slice()),
                        (T_CTR.0, rs[1].rows.as_slice()),
                    ]));
                }
                Err(e) => self.fail(format!(
                    "slave {sid:?} cannot serve the final tag {}: {e}",
                    fmt_vv(&tag),
                )),
            }
        }
        // Backends replay the committed write stream; after the drain
        // they must equal the in-memory state exactly.
        self.cluster.shutdown();
        let backends: Vec<_> = self.cluster.backends().to_vec();
        let mut disk_digests = Vec::new();
        for (i, b) in backends.iter().enumerate() {
            match b.execute_txn(&bank_scans()) {
                Ok(rs) => {
                    match rows_to_map(&rs[0].rows) {
                        Ok(got) if got == want_acct => {}
                        Ok(got) => self.fail(format!(
                            "backend {i} replayed accounts {got:?} != model {want_acct:?}"
                        )),
                        Err(e) => self.fail(format!("backend {i} accounts: {e}")),
                    }
                    match rows_to_map(&rs[1].rows) {
                        Ok(got) if got == want_ctr => {}
                        Ok(got) => self.fail(format!(
                            "backend {i} replayed counters {got:?} != model {want_ctr:?}"
                        )),
                        Err(e) => self.fail(format!("backend {i} counters: {e}")),
                    }
                }
                Err(e) => self.fail(format!("backend {i} scan failed: {e}")),
            }
            match b.state_digest() {
                Ok(d) => disk_digests.push(d),
                Err(e) => self.fail(format!("backend {i} digest failed: {e}")),
            }
        }
        if let (Some(mem), Some(first)) = (mem_digest, disk_digests.first()) {
            if disk_digests.iter().any(|d| d != first) {
                self.fail(format!("backend digests diverge: {disk_digests:?}"));
            }
            if mem != *first {
                self.fail(format!("on-disk tier digest {first:#x} != in-memory digest {mem:#x}"));
            }
        }
        format!("tag={} slaves={} backends={}", fmt_vv(&tag), slaves.len(), backends.len())
    }

    fn final_tpcw(&mut self) -> String {
        let tag = self.cluster.latest_version();
        let scans: Vec<Query> =
            self.schema.tables().map(|t| Query::Select(Select::scan(t.id))).collect();
        let ids: Vec<u16> = self.schema.tables().map(|t| t.id.0).collect();
        let slaves = self.alive_slaves();
        if slaves.is_empty() {
            self.fail("no live slave survived to the end of the run".to_string());
        }
        let mut mem_digests = Vec::new();
        for sid in &slaves {
            let slave = self.cluster.replica(*sid).expect("alive slave listed in topology");
            match slave.execute_read(&scans, &tag) {
                Ok(rs) => {
                    let d =
                        rows_digest(ids.iter().copied().zip(rs.iter().map(|r| r.rows.as_slice())));
                    mem_digests.push((*sid, d));
                }
                Err(e) => self.fail(format!(
                    "slave {sid:?} cannot serve the final tag {}: {e}",
                    fmt_vv(&tag),
                )),
            }
        }
        if let Some((_, first)) = mem_digests.first() {
            if mem_digests.iter().any(|(_, d)| d != first) {
                self.fail(format!("slave digests diverge at the final tag: {mem_digests:?}"));
            }
        }
        self.cluster.shutdown();
        let backends: Vec<_> = self.cluster.backends().to_vec();
        for (i, b) in backends.iter().enumerate() {
            match b.state_digest() {
                Ok(d) => {
                    if let Some((_, mem)) = mem_digests.first() {
                        if d != *mem {
                            self.fail(format!(
                                "backend {i} digest {d:#x} != in-memory digest {mem:#x}"
                            ));
                        }
                    }
                }
                Err(e) => self.fail(format!("backend {i} digest failed: {e}")),
            }
        }
        format!("tag={} slaves={} backends={}", fmt_vv(&tag), slaves.len(), backends.len())
    }
}
