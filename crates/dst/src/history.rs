//! History recorder: a [`TraceTap`] splitting trace events into the
//! deterministic and the asynchronous.
//!
//! Scheduler events (commit/abort/route) and reconfiguration events
//! (promotion, discard) fire synchronously on the driver thread, so
//! between two schedule events the `ops` bucket holds exactly the
//! events of the last operation — [`History::drain_ops`] attributes
//! them. `WriteSetEnqueued` fires on replica receiver threads in
//! arbitrary order; it lands in the `stream` bucket, which oracles may
//! inspect but the canonical trace excludes.

use dmv_core::{TraceEvent, TraceTap};
use parking_lot::Mutex;

/// The recorder installed via [`dmv_core::DmvCluster::set_trace_tap`].
#[derive(Debug, Default)]
pub struct History {
    ops: Mutex<Vec<TraceEvent>>,
    stream: Mutex<Vec<TraceEvent>>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes every synchronous event recorded since the last drain.
    pub fn drain_ops(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.ops.lock())
    }

    /// Takes the asynchronous write-set stream events.
    pub fn drain_stream(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.stream.lock())
    }
}

impl TraceTap for History {
    fn record(&self, ev: TraceEvent) {
        match ev {
            TraceEvent::WriteSetEnqueued { .. } => self.stream.lock().push(ev),
            _ => self.ops.lock().push(ev),
        }
    }
}
