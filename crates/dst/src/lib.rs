//! # dmv-dst — deterministic fault-schedule explorer
//!
//! Simulation testing for the DMV cluster: seeded schedules interleave
//! workload operations with fault events (kill master/slave, crash
//! mid-broadcast, partition/heal, latency spikes, backend stalls) and
//! run against a real [`dmv_core::DmvCluster`] on the simulated network
//! with fault injection at the transport boundary. The same seed always
//! produces the same schedule, the same execution, and the same
//! byte-identical trace.
//!
//! * [`schedule`] — the event grammar and the seeded generator;
//! * [`harness`] — the single-threaded driver, trace recorder and the
//!   consistency oracles (exact-prefix reads, gapless commits,
//!   monotone per-client tags, heal+drain convergence, on-disk replay
//!   equality, stale readers abort rather than see the future);
//! * [`history`] — the [`dmv_core::TraceTap`] recorder;
//! * [`oracle`] — the exact bank model with per-version snapshots;
//! * [`shrink`] — greedy delta-debugging by event deletion;
//! * [`repro`] — the text format for persisted failing schedules,
//!   loadable via `cargo xtask dst --repro <file>`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod harness;
pub mod history;
pub mod oracle;
pub mod repro;
pub mod schedule;
pub mod shrink;

pub use harness::{run_schedule, run_schedule_with_gc_mutation, RunReport};
pub use history::History;
pub use oracle::BankModel;
pub use repro::{from_repro, to_repro};
pub use schedule::{for_seed, Event, Schedule, ScheduleConfig, Workload};
pub use shrink::{shrink, shrink_with};
