//! `dmv-dst` CLI: explore random fault schedules, replay repro files,
//! shrink failures.
//!
//! ```text
//! dmv-dst --seed 42            # one verbose run (full trace printed)
//! dmv-dst --seeds 100          # explore seeds 0..100, each run twice
//! dmv-dst --seeds 20 --base 7  # explore seeds 7..27
//! dmv-dst --repro f.repro      # replay a persisted failing schedule
//! dmv-dst --repro f.repro --shrink   # minimize it further
//! ```
//!
//! Every seed runs **twice**; differing trace digests mean the run was
//! not deterministic, which is itself a failure. On an oracle failure
//! the schedule is shrunk (bounded run budget) and written to
//! `target/dst/failure-<seed>.repro`; the exit code is 1.

use dmv_dst::harness::run_schedule;
use dmv_dst::repro::{from_repro, to_repro};
use dmv_dst::schedule::for_seed;
use dmv_dst::shrink::shrink;
use std::process::ExitCode;

const SHRINK_BUDGET: usize = 200;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = None;
    let mut seeds = None;
    let mut base = 0u64;
    let mut repro = None;
    let mut do_shrink = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = Some(parse_u64(it.next(), "--seed")),
            "--seeds" => seeds = Some(parse_u64(it.next(), "--seeds")),
            "--base" => base = parse_u64(it.next(), "--base"),
            "--repro" => repro = it.next().cloned().or_else(|| die("--repro needs a file")),
            "--shrink" => do_shrink = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: dmv-dst --seed S | --seeds N [--base B] | --repro FILE [--shrink]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = repro {
        return run_repro(&path, do_shrink);
    }
    if let Some(s) = seed {
        return run_one_verbose(s);
    }
    let n = seeds.unwrap_or_else(|| {
        eprintln!("usage: dmv-dst --seed S | --seeds N [--base B] | --repro FILE [--shrink]");
        std::process::exit(2)
    });
    explore(base, n)
}

fn parse_u64(v: Option<&String>, flag: &str) -> u64 {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("{flag} needs an unsigned integer");
            std::process::exit(2)
        }
    }
}

fn die(msg: &str) -> Option<String> {
    eprintln!("{msg}");
    std::process::exit(2)
}

fn run_one_verbose(seed: u64) -> ExitCode {
    let s = for_seed(seed);
    println!("schedule seed={seed} workload={} events={}", s.config.workload, s.events.len());
    let r = run_schedule(&s);
    for line in &r.trace {
        println!("  {line}");
    }
    println!(
        "trace digest {:#018x}  commits={} reads={} aborts={}",
        r.trace_digest(),
        r.commits,
        r.reads,
        r.aborts
    );
    report_failures(&s, &r.failures)
}

fn explore(base: u64, n: u64) -> ExitCode {
    let mut ok = 0u64;
    for seed in base..base + n {
        let s = for_seed(seed);
        let r1 = run_schedule(&s);
        let r2 = run_schedule(&s);
        if r1.trace_digest() != r2.trace_digest() {
            println!(
                "seed {seed}: NONDETERMINISTIC ({:#018x} vs {:#018x})",
                r1.trace_digest(),
                r2.trace_digest()
            );
            print_diff(&r1.trace, &r2.trace);
            persist(&s, seed);
            return ExitCode::FAILURE;
        }
        if !r1.passed() {
            println!("seed {seed}: FAILED");
            for f in &r1.failures {
                println!("  oracle: {f}");
            }
            let (min, runs) = shrink(&s, SHRINK_BUDGET);
            println!("shrunk {} -> {} events in {runs} runs", s.events.len(), min.events.len());
            let path = persist(&min, seed);
            println!("repro written to {path}");
            println!("replay: cargo xtask dst --repro {path}");
            return ExitCode::FAILURE;
        }
        ok += 1;
        println!(
            "seed {seed}: ok {} events={} commits={} reads={} aborts={} digest={:#018x}",
            s.config.workload,
            s.events.len(),
            r1.commits,
            r1.reads,
            r1.aborts,
            r1.trace_digest()
        );
    }
    println!("{ok}/{n} seeds passed (base {base})");
    ExitCode::SUCCESS
}

fn run_repro(path: &str, do_shrink: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s = match from_repro(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad repro file {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("repro seed={} workload={} events={}", s.seed, s.config.workload, s.events.len());
    let r = run_schedule(&s);
    for line in &r.trace {
        println!("  {line}");
    }
    if do_shrink && !r.passed() {
        let (min, runs) = shrink(&s, SHRINK_BUDGET);
        println!("shrunk {} -> {} events in {runs} runs", s.events.len(), min.events.len());
        let out = format!("{path}.min");
        if let Err(e) = std::fs::write(&out, to_repro(&min)) {
            eprintln!("cannot write {out}: {e}");
        } else {
            println!("minimized repro written to {out}");
        }
        let rm = run_schedule(&min);
        return report_failures(&min, &rm.failures);
    }
    report_failures(&s, &r.failures)
}

fn report_failures(_s: &dmv_dst::schedule::Schedule, failures: &[String]) -> ExitCode {
    if failures.is_empty() {
        println!("all oracles passed");
        ExitCode::SUCCESS
    } else {
        for f in failures {
            println!("oracle: {f}");
        }
        ExitCode::FAILURE
    }
}

fn persist(s: &dmv_dst::schedule::Schedule, seed: u64) -> String {
    let dir = std::path::Path::new("target/dst");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("failure-{seed}.repro"));
    let _ = std::fs::write(&path, to_repro(s));
    path.display().to_string()
}

fn print_diff(a: &[String], b: &[String]) {
    for i in 0..a.len().max(b.len()) {
        let la = a.get(i).map(String::as_str).unwrap_or("<missing>");
        let lb = b.get(i).map(String::as_str).unwrap_or("<missing>");
        if la != lb {
            println!("  first divergence at line {i}:");
            println!("    run1: {la}");
            println!("    run2: {lb}");
            break;
        }
    }
}
