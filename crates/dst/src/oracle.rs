//! Consistency oracles: the exact bank model with per-version
//! snapshots, and small helpers shared by the harness.
//!
//! The bank model mirrors what the cluster *should* contain after every
//! client-visible commit. Because the driver serializes operations, the
//! scheduler's version components are the model's snapshot keys:
//!
//! * **gapless commits** — each committed update bumps the written
//!   table's version by exactly one. A gap means an unacknowledged
//!   commit survived fail-over (the promoted master must discard
//!   partially-propagated write-sets), a repeat means a lost one.
//! * **exact prefix reads** — a read tagged `v` observes exactly the
//!   snapshot keyed `v`: no torn pages, no future data, no lost writes.
//! * **convergence** — after heal + drain, every live slave at the
//!   latest tag and every on-disk backend equals the model's final
//!   state.

use dmv_common::error::DmvError;
use dmv_common::version::VersionVector;
use dmv_sql::row::Row;
use dmv_sql::Value;
use std::collections::BTreeMap;

/// Account/counter state keyed by id.
pub type Table = BTreeMap<i64, i64>;

/// The serialized-execution bank model.
#[derive(Debug)]
pub struct BankModel {
    /// Snapshots of the accounts table, one per committed version of
    /// it, starting with version 0 (the initial load).
    acct_snaps: Vec<(u64, Table)>,
    /// Snapshots of the counters table.
    ctr_snaps: Vec<(u64, Table)>,
}

impl BankModel {
    /// The initial state: `n_accounts` accounts at balance 100,
    /// `n_counters` counters at 0, both at version 0.
    pub fn new(n_accounts: i64, n_counters: i64) -> Self {
        BankModel {
            acct_snaps: vec![(0, (0..n_accounts).map(|i| (i, 100)).collect())],
            ctr_snaps: vec![(0, (0..n_counters).map(|i| (i, 0)).collect())],
        }
    }

    /// Applies a committed accounts-table update observed at version
    /// `v`, recording the new snapshot.
    ///
    /// # Errors
    ///
    /// The gapless-commit violation, if `v` is not exactly one past the
    /// last committed accounts version.
    pub fn commit_accounts(&mut self, v: u64, f: impl FnOnce(&mut Table)) -> Result<(), String> {
        Self::commit(&mut self.acct_snaps, "accounts", v, f)
    }

    /// Applies a committed counters-table update observed at version `v`.
    ///
    /// # Errors
    ///
    /// The gapless-commit violation, as for
    /// [`BankModel::commit_accounts`].
    pub fn commit_counters(&mut self, v: u64, f: impl FnOnce(&mut Table)) -> Result<(), String> {
        Self::commit(&mut self.ctr_snaps, "counters", v, f)
    }

    fn commit(
        snaps: &mut Vec<(u64, Table)>,
        what: &str,
        v: u64,
        f: impl FnOnce(&mut Table),
    ) -> Result<(), String> {
        let (last_v, last) = snaps.last().expect("baseline snapshot always present");
        if v != last_v + 1 {
            return Err(format!(
                "gapless-commit violation: {what} committed at version {v} after {last_v}"
            ));
        }
        let mut next = last.clone();
        f(&mut next);
        snaps.push((v, next));
        Ok(())
    }

    /// The accounts snapshot at exactly version `v`.
    pub fn accounts_at(&self, v: u64) -> Option<&Table> {
        self.acct_snaps.iter().find(|(sv, _)| *sv == v).map(|(_, t)| t)
    }

    /// The counters snapshot at exactly version `v`.
    pub fn counters_at(&self, v: u64) -> Option<&Table> {
        self.ctr_snaps.iter().find(|(sv, _)| *sv == v).map(|(_, t)| t)
    }

    /// The accounts version `back` commits behind the newest.
    pub fn accounts_version_back(&self, back: u64) -> u64 {
        let idx = self.acct_snaps.len().saturating_sub(1 + back as usize);
        self.acct_snaps[idx].0
    }

    /// The counters version `back` commits behind the newest.
    pub fn counters_version_back(&self, back: u64) -> u64 {
        let idx = self.ctr_snaps.len().saturating_sub(1 + back as usize);
        self.ctr_snaps[idx].0
    }

    /// The final (latest) accounts state.
    pub fn final_accounts(&self) -> &Table {
        &self.acct_snaps.last().expect("baseline snapshot always present").1
    }

    /// The final (latest) counters state.
    pub fn final_counters(&self) -> &Table {
        &self.ctr_snaps.last().expect("baseline snapshot always present").1
    }

    /// Latest committed accounts version.
    pub fn accounts_version(&self) -> u64 {
        self.acct_snaps.last().expect("baseline snapshot always present").0
    }

    /// Latest committed counters version.
    pub fn counters_version(&self) -> u64 {
        self.ctr_snaps.last().expect("baseline snapshot always present").0
    }
}

/// Converts `(id, value)` scan rows into a comparable map.
pub fn rows_to_map(rows: &[Row]) -> Result<Table, String> {
    let mut out = Table::new();
    for r in rows {
        let id = int_at(r, 0)?;
        let val = int_at(r, 1)?;
        if out.insert(id, val).is_some() {
            return Err(format!("duplicate id {id} in scan"));
        }
    }
    Ok(out)
}

fn int_at(r: &Row, i: usize) -> Result<i64, String> {
    match r.get(i) {
        Some(Value::Int(v)) => Ok(*v),
        other => Err(format!("expected int at column {i}, got {other:?}")),
    }
}

/// Renders a version vector as `[a,b,...]` (stable trace format).
pub fn fmt_vv(v: &VersionVector) -> String {
    let parts: Vec<String> = v.iter().map(|(_, x)| x.to_string()).collect();
    format!("[{}]", parts.join(","))
}

/// A short, payload-free, deterministic label for an error (trace
/// lines must be byte-identical across runs).
pub fn err_label(e: &DmvError) -> &'static str {
    match e {
        DmvError::VersionConflict { .. } => "VersionConflict",
        DmvError::Deadlock(_) => "Deadlock",
        DmvError::NodeFailed(_) => "NodeFailed",
        DmvError::NoSuchNode(_) => "NoSuchNode",
        DmvError::NoReplicaAvailable => "NoReplicaAvailable",
        DmvError::Schema(_) => "Schema",
        DmvError::Query(_) => "Query",
        DmvError::NotFound(_) => "NotFound",
        DmvError::DuplicateKey(_) => "DuplicateKey",
        DmvError::Storage(_) => "Storage",
        _ => "Other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_versions_and_detects_gaps() {
        let mut m = BankModel::new(3, 1);
        m.commit_accounts(1, |t| *t.get_mut(&0).unwrap() += 5).unwrap();
        m.commit_accounts(2, |t| *t.get_mut(&1).unwrap() -= 5).unwrap();
        assert_eq!(m.accounts_at(1).unwrap()[&0], 105);
        assert_eq!(m.accounts_at(2).unwrap()[&1], 95);
        assert_eq!(m.accounts_version(), 2);
        assert_eq!(m.accounts_version_back(1), 1);
        assert!(m.commit_accounts(4, |_| ()).unwrap_err().contains("gapless"));
        assert!(m.commit_counters(2, |_| ()).unwrap_err().contains("gapless"));
    }
}
