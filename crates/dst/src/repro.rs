//! Repro files: a failing schedule persisted as text.
//!
//! The format is deliberately line-oriented and human-editable — a
//! header of `key = value` pairs (seed and cluster shape), a `--`
//! separator, then one [`Event`] display line per event. Hand-deleting
//! event lines is a manual shrink step; `Event::parse` accepts exactly
//! what `Display` prints, so the round-trip is lossless.
//!
//! ```text
//! # dmv-dst repro v1
//! seed = 42
//! workload = bank
//! ...
//! --
//! transfer client=0 from=3 to=7 amount=4
//! kill-master class=0
//! detect
//! ```

use crate::schedule::{Event, Schedule, ScheduleConfig, Workload};

/// Serializes a schedule as a repro file.
pub fn to_repro(s: &Schedule) -> String {
    let c = &s.config;
    let mut out = String::new();
    out.push_str("# dmv-dst repro v1\n");
    out.push_str(&format!("seed = {}\n", s.seed));
    out.push_str(&format!("workload = {}\n", c.workload));
    out.push_str(&format!("slaves = {}\n", c.n_slaves));
    out.push_str(&format!("spares = {}\n", c.n_spares));
    out.push_str(&format!("backends = {}\n", c.n_backends));
    out.push_str(&format!("classes = {}\n", c.n_classes));
    out.push_str(&format!("accounts = {}\n", c.n_accounts));
    out.push_str(&format!("counters = {}\n", c.n_counters));
    out.push_str(&format!("clients = {}\n", c.n_clients));
    out.push_str("--\n");
    for e in &s.events {
        out.push_str(&format!("{e}\n"));
    }
    out
}

/// Parses a repro file back into a schedule.
///
/// # Errors
///
/// A description of the first malformed line or missing header key.
pub fn from_repro(text: &str) -> Result<Schedule, String> {
    let mut seed = None;
    let mut cfg = ScheduleConfig::bank();
    let mut events = Vec::new();
    let mut in_events = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "--" {
            in_events = true;
            continue;
        }
        if in_events {
            events.push(Event::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("line {}: expected `key = value`, got {line:?}", ln + 1))?;
        let int =
            |v: &str| v.parse::<i64>().map_err(|_| format!("line {}: bad number {v:?}", ln + 1));
        match key {
            "seed" => seed = Some(int(val)? as u64),
            "workload" => {
                cfg.workload = match val {
                    "bank" => Workload::Bank,
                    "tpcw" => Workload::Tpcw,
                    other => return Err(format!("line {}: unknown workload {other:?}", ln + 1)),
                }
            }
            "slaves" => cfg.n_slaves = int(val)? as usize,
            "spares" => cfg.n_spares = int(val)? as usize,
            "backends" => cfg.n_backends = int(val)? as usize,
            "classes" => cfg.n_classes = int(val)? as usize,
            "accounts" => cfg.n_accounts = int(val)?,
            "counters" => cfg.n_counters = int(val)?,
            "clients" => cfg.n_clients = int(val)? as u64,
            other => return Err(format!("line {}: unknown key {other:?}", ln + 1)),
        }
    }
    let seed = seed.ok_or_else(|| "missing `seed = N` header".to_string())?;
    Ok(Schedule { seed, config: cfg, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::for_seed;

    #[test]
    fn round_trips_generated_schedules() {
        for seed in [0u64, 3, 17, 42] {
            let s = for_seed(seed);
            let text = to_repro(&s);
            let back = from_repro(&text).unwrap();
            assert_eq!(back.seed, s.seed);
            assert_eq!(back.config, s.config);
            assert_eq!(back.events, s.events);
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(from_repro("seed = x\n--\n").is_err());
        assert!(from_repro("--\n").is_err(), "seed is required");
        assert!(from_repro("seed = 1\nworkload = other\n--\n").is_err());
        assert!(from_repro("seed = 1\n--\nnot-an-event\n").is_err());
    }
}
