//! Schedule grammar and the seeded schedule generator.
//!
//! A schedule is a cluster shape plus a linear list of [`Event`]s. The
//! driver executes events one at a time on a single thread, so the
//! schedule *is* the interleaving: the same schedule always produces
//! the same trace. Events are either workload operations (bank
//! transfers/reads or TPC-W interactions) or fault actions (kill a
//! node, crash a master mid-broadcast, partition, latency spike,
//! backend stall, reintegration).
//!
//! The generator draws from three [`dmv_common::rng::derive`] streams
//! (shape, workload, faults) and tracks feasibility: kills are followed
//! by a forced `detect` within two events, partitions are healed within
//! three, and the cluster always keeps at least one live slave so reads
//! and reintegration have somewhere to go.

use dmv_common::rng::derive;
use rand::Rng;
use std::fmt;

/// Which workload the schedule interleaves with faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Two-table bank (transfers + counters) checked against an exact
    /// model with per-version snapshots.
    Bank,
    /// TPC-W interactions via [`dmv_tpcw::StepDriver`], checked with
    /// convergence/digest oracles.
    Tpcw,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::Bank => write!(f, "bank"),
            Workload::Tpcw => write!(f, "tpcw"),
        }
    }
}

/// Cluster shape and workload sizing for one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Workload kind.
    pub workload: Workload,
    /// Active slaves at start.
    pub n_slaves: usize,
    /// Spare backups at start.
    pub n_spares: usize,
    /// On-disk persistence backends.
    pub n_backends: usize,
    /// Conflict classes (1 = single master, 2 = accounts/counters split).
    pub n_classes: usize,
    /// Bank accounts.
    pub n_accounts: i64,
    /// Bank counters.
    pub n_counters: i64,
    /// Emulated clients (rng streams / TPC-W browsers).
    pub n_clients: u64,
}

impl ScheduleConfig {
    /// The default bank shape used by hand-written schedules.
    pub fn bank() -> Self {
        ScheduleConfig {
            workload: Workload::Bank,
            n_slaves: 2,
            n_spares: 0,
            n_backends: 1,
            n_classes: 2,
            n_accounts: 10,
            n_counters: 4,
            n_clients: 2,
        }
    }
}

/// One schedule step. Workload events carry the acting client so each
/// client keeps its own deterministic rng stream and tag history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Move `amount` between two accounts (writes the accounts table).
    Transfer { client: u64, from: i64, to: i64, amount: i64 },
    /// Add `amount` to one account.
    Deposit { client: u64, acct: i64, amount: i64 },
    /// Increment one counter (writes the counters table — the second
    /// conflict class when `n_classes == 2`).
    Bump { client: u64, ctr: i64 },
    /// Read-only scan of both tables, checked against the model at the
    /// scheduler-assigned tag.
    Read { client: u64 },
    /// Read at a tag `back` committed versions behind the latest,
    /// directly against a slave: must return exactly the old snapshot
    /// or abort with a version conflict — never future data.
    StaleRead { client: u64, back: u64 },
    /// One TPC-W interaction from this client's step driver.
    Tpcw { client: u64 },
    /// Fail-stop the `nth` live slave.
    KillSlave { nth: usize },
    /// Fail-stop the master of conflict class `class`.
    KillMaster { class: usize },
    /// Arm a crash on the class master's `sends`-th outbound message,
    /// then issue one update so it fires mid-broadcast: some replicas
    /// receive the write-set, the rest never do, and the commit is
    /// never acknowledged.
    KillMasterMid { class: usize, sends: u32 },
    /// Like `KillMasterMid`, but the crash lands inside a *batched*
    /// broadcast: the group-commit flusher is held while two concurrent
    /// updates (accounts + counters, so their page locks never
    /// conflict) coalesce into one `WriteSetBatch` frame, then released
    /// with the crash armed on the `sends`-th outbound send. Some
    /// replicas enqueue the whole batch, the rest none of it, and
    /// neither commit is acknowledged — fail-over must discard the
    /// partial batch on every survivor (all-or-nothing). Only generated
    /// for single-class bank schedules (both probe tables share one
    /// master).
    KillMasterMidBatch { class: usize, sends: u32 },
    /// Run one failure-detector sweep (promotion, spare activation).
    Detect,
    /// Reintegrate the oldest detected-dead node via page migration.
    Reintegrate,
    /// Integrate a brand-new node (full-state migration).
    IntegrateFresh,
    /// Partition the class master from its `nth` live slave.
    Partition { class: usize, nth: usize },
    /// Heal all partitions; stale slaves that missed write-sets are
    /// killed and reintegrated (dropped diffs are never redelivered).
    HealAll,
    /// Network-wide latency spike (paper-time micros).
    LatencySpike { micros: u64 },
    /// End the latency spike.
    LatencyNormal,
    /// Stall every on-disk backend (the async feed must absorb it).
    BackendStall,
    /// Resume the backends.
    BackendResume,
    /// Clamp every live replica's buffer budget to `pages` resident
    /// pages and keep it clamped for the rest of the run. From this
    /// event on the harness runs a GC sweep plus the bounded-memory and
    /// GC-safety oracles after every event.
    MemPressure { pages: u32 },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Transfer { client, from, to, amount } => {
                write!(f, "transfer client={client} from={from} to={to} amount={amount}")
            }
            Event::Deposit { client, acct, amount } => {
                write!(f, "deposit client={client} acct={acct} amount={amount}")
            }
            Event::Bump { client, ctr } => write!(f, "bump client={client} ctr={ctr}"),
            Event::Read { client } => write!(f, "read client={client}"),
            Event::StaleRead { client, back } => {
                write!(f, "stale-read client={client} back={back}")
            }
            Event::Tpcw { client } => write!(f, "tpcw client={client}"),
            Event::KillSlave { nth } => write!(f, "kill-slave nth={nth}"),
            Event::KillMaster { class } => write!(f, "kill-master class={class}"),
            Event::KillMasterMid { class, sends } => {
                write!(f, "kill-master-mid class={class} sends={sends}")
            }
            Event::KillMasterMidBatch { class, sends } => {
                write!(f, "kill-master-mid-batch class={class} sends={sends}")
            }
            Event::Detect => write!(f, "detect"),
            Event::Reintegrate => write!(f, "reintegrate"),
            Event::IntegrateFresh => write!(f, "integrate-fresh"),
            Event::Partition { class, nth } => write!(f, "partition class={class} nth={nth}"),
            Event::HealAll => write!(f, "heal-all"),
            Event::LatencySpike { micros } => write!(f, "latency-spike micros={micros}"),
            Event::LatencyNormal => write!(f, "latency-normal"),
            Event::BackendStall => write!(f, "backend-stall"),
            Event::BackendResume => write!(f, "backend-resume"),
            Event::MemPressure { pages } => write!(f, "mem-pressure pages={pages}"),
        }
    }
}

impl Event {
    /// Parses the `Display` form back (repro files).
    ///
    /// # Errors
    ///
    /// A description of the malformed line.
    pub fn parse(line: &str) -> Result<Event, String> {
        let mut words = line.split_whitespace();
        let head = words.next().ok_or_else(|| "empty event line".to_string())?;
        let mut kv = std::collections::HashMap::new();
        for w in words {
            let (k, v) = w.split_once('=').ok_or_else(|| format!("bad field `{w}`"))?;
            kv.insert(k.to_string(), v.to_string());
        }
        let get = |k: &str| -> Result<i64, String> {
            kv.get(k)
                .ok_or_else(|| format!("`{head}` missing field `{k}`"))?
                .parse::<i64>()
                .map_err(|e| format!("`{head}` field `{k}`: {e}"))
        };
        Ok(match head {
            "transfer" => Event::Transfer {
                client: get("client")? as u64,
                from: get("from")?,
                to: get("to")?,
                amount: get("amount")?,
            },
            "deposit" => Event::Deposit {
                client: get("client")? as u64,
                acct: get("acct")?,
                amount: get("amount")?,
            },
            "bump" => Event::Bump { client: get("client")? as u64, ctr: get("ctr")? },
            "read" => Event::Read { client: get("client")? as u64 },
            "stale-read" => {
                Event::StaleRead { client: get("client")? as u64, back: get("back")? as u64 }
            }
            "tpcw" => Event::Tpcw { client: get("client")? as u64 },
            "kill-slave" => Event::KillSlave { nth: get("nth")? as usize },
            "kill-master" => Event::KillMaster { class: get("class")? as usize },
            "kill-master-mid" => {
                Event::KillMasterMid { class: get("class")? as usize, sends: get("sends")? as u32 }
            }
            "kill-master-mid-batch" => Event::KillMasterMidBatch {
                class: get("class")? as usize,
                sends: get("sends")? as u32,
            },
            "detect" => Event::Detect,
            "reintegrate" => Event::Reintegrate,
            "integrate-fresh" => Event::IntegrateFresh,
            "partition" => {
                Event::Partition { class: get("class")? as usize, nth: get("nth")? as usize }
            }
            "heal-all" => Event::HealAll,
            "latency-spike" => Event::LatencySpike { micros: get("micros")? as u64 },
            "latency-normal" => Event::LatencyNormal,
            "backend-stall" => Event::BackendStall,
            "backend-resume" => Event::BackendResume,
            "mem-pressure" => Event::MemPressure { pages: get("pages")? as u32 },
            other => return Err(format!("unknown event `{other}`")),
        })
    }
}

/// A complete, runnable schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Generator seed (also seeds the per-client workload streams).
    pub seed: u64,
    /// Cluster shape.
    pub config: ScheduleConfig,
    /// The event list, executed in order.
    pub events: Vec<Event>,
}

/// Generator feasibility state: what faults are currently legal.
struct GenState {
    alive_slaves: usize,
    spares: usize,
    dead_pool: usize,
    /// Events since an undetected kill (forces `detect` promptly).
    kill_age: Option<usize>,
    partitions: usize,
    /// Events since the oldest open partition.
    partition_age: usize,
    spiking: bool,
    stalled: bool,
    /// A mem-pressure budget is already active (it persists, so one per
    /// schedule is enough to put the whole tail under pressure).
    pressured: bool,
}

/// Generates the schedule for `seed`: cluster shape, then an event list
/// in which roughly a quarter of the events are faults.
pub fn for_seed(seed: u64) -> Schedule {
    let mut shape = derive(seed, 0xD5);
    let workload = if shape.gen_range(0..5) == 0 { Workload::Tpcw } else { Workload::Bank };
    let config = match workload {
        Workload::Bank => ScheduleConfig {
            workload,
            n_slaves: shape.gen_range(2..=3),
            n_spares: shape.gen_range(0..=1),
            n_backends: if shape.gen_range(0..4) == 0 { 2 } else { 1 },
            n_classes: shape.gen_range(1..=2),
            n_accounts: shape.gen_range(6..=14),
            n_counters: shape.gen_range(2..=5),
            n_clients: shape.gen_range(2..=4),
        },
        Workload::Tpcw => ScheduleConfig {
            workload,
            n_slaves: 2,
            n_spares: shape.gen_range(0..=1),
            n_backends: 1,
            n_classes: 1,
            n_accounts: 0,
            n_counters: 0,
            n_clients: shape.gen_range(2..=3),
        },
    };
    let n_events = match workload {
        Workload::Bank => shape.gen_range(36..=48),
        Workload::Tpcw => shape.gen_range(20..=26),
    };
    let mut ops = derive(seed, 0xA1);
    let mut faults = derive(seed, 0xF7);
    let mut st = GenState {
        alive_slaves: config.n_slaves,
        spares: config.n_spares,
        dead_pool: 0,
        kill_age: None,
        partitions: 0,
        partition_age: 0,
        spiking: false,
        stalled: false,
        pressured: false,
    };
    let mut events = Vec::with_capacity(n_events);
    while events.len() < n_events {
        // Forced repairs keep every generated schedule feasible.
        if st.kill_age.is_some_and(|a| a >= 2) {
            events.push(detect(&mut st));
            continue;
        }
        if st.partitions > 0 && st.partition_age >= 3 {
            events.push(heal_all(&mut st));
            continue;
        }
        if let Some(a) = st.kill_age.as_mut() {
            *a += 1;
        }
        if st.partitions > 0 {
            st.partition_age += 1;
        }
        let fault_roll = faults.gen_range(0..100);
        if fault_roll < 28 {
            if let Some(ev) = gen_fault(&config, &mut st, &mut faults) {
                events.push(ev);
                continue;
            }
        }
        events.push(gen_op(&config, &mut ops));
    }
    // Leave the cluster repaired: pending kills detected, partitions
    // healed, spike/stall cleared (the harness drains again anyway).
    if st.kill_age.is_some() {
        events.push(detect(&mut st));
    }
    if st.partitions > 0 {
        events.push(heal_all(&mut st));
    }
    if st.spiking {
        events.push(Event::LatencyNormal);
    }
    if st.stalled {
        events.push(Event::BackendResume);
    }
    Schedule { seed, config, events }
}

fn detect(st: &mut GenState) -> Event {
    st.kill_age = None;
    Event::Detect
}

fn heal_all(st: &mut GenState) -> Event {
    // Healed-but-stale slaves get killed and reintegrated by the
    // harness, so they come back as live slaves.
    st.partitions = 0;
    st.partition_age = 0;
    Event::HealAll
}

fn gen_op(config: &ScheduleConfig, rng: &mut rand::rngs::SmallRng) -> Event {
    let client = rng.gen_range(0..config.n_clients);
    if config.workload == Workload::Tpcw {
        return Event::Tpcw { client };
    }
    match rng.gen_range(0..10) {
        0..=2 => {
            let from = rng.gen_range(0..config.n_accounts);
            let to = (from + rng.gen_range(1..config.n_accounts)) % config.n_accounts;
            Event::Transfer { client, from, to, amount: rng.gen_range(1..=9) }
        }
        3..=4 => Event::Deposit {
            client,
            acct: rng.gen_range(0..config.n_accounts),
            amount: rng.gen_range(1..=20),
        },
        5..=6 => Event::Bump { client, ctr: rng.gen_range(0..config.n_counters) },
        7..=8 => Event::Read { client },
        _ => Event::StaleRead { client, back: rng.gen_range(1..=3) },
    }
}

/// Picks a feasible fault, or `None` when none is currently legal.
fn gen_fault(
    config: &ScheduleConfig,
    st: &mut GenState,
    rng: &mut rand::rngs::SmallRng,
) -> Option<Event> {
    // The kill budget: a promotion consumes a slave (minus any spare
    // that auto-activates), and reads/reintegration need one live slave
    // at all times.
    for _ in 0..8 {
        match rng.gen_range(0..8) {
            0 if st.alive_slaves >= 2 && st.kill_age.is_none() && st.partitions == 0 => {
                let nth = rng.gen_range(0..st.alive_slaves);
                if st.spares > 0 {
                    st.spares -= 1;
                } else {
                    st.alive_slaves -= 1;
                }
                st.dead_pool += 1;
                st.kill_age = Some(0);
                return Some(Event::KillSlave { nth });
            }
            1 if st.alive_slaves >= 2 && st.kill_age.is_none() && st.partitions == 0 => {
                // A kill is always detected before the next kill, and
                // detection promotes a slave, so the class master is
                // back before this arm can fire again.
                let class = rng.gen_range(0..config.n_classes);
                if st.spares > 0 {
                    st.spares -= 1;
                } else {
                    st.alive_slaves -= 1;
                }
                st.dead_pool += 1;
                st.kill_age = Some(0);
                let mid = rng.gen_range(0..2) == 0;
                return Some(if mid {
                    // The batched variant needs both probe tables on one
                    // master, so it is only legal for single-class bank
                    // shapes. With ≥2 live targets a one-frame batch
                    // broadcast makes ≥2 sends, so sends ∈ 1..=2 always
                    // fires mid-broadcast.
                    if config.workload == Workload::Bank
                        && config.n_classes == 1
                        && rng.gen_range(0..2) == 0
                    {
                        Event::KillMasterMidBatch { class, sends: rng.gen_range(1..=2) }
                    } else {
                        Event::KillMasterMid { class, sends: rng.gen_range(1..=3) }
                    }
                } else {
                    Event::KillMaster { class }
                });
            }
            2 if st.dead_pool > 0 && st.alive_slaves >= 1 && st.kill_age.is_none() => {
                st.dead_pool -= 1;
                st.alive_slaves += 1;
                return Some(Event::Reintegrate);
            }
            3 if st.alive_slaves >= 1 && st.kill_age.is_none() && rng.gen_range(0..3) == 0 => {
                st.alive_slaves += 1;
                return Some(Event::IntegrateFresh);
            }
            4 if st.alive_slaves >= 2 && st.partitions == 0 && st.kill_age.is_none() => {
                st.partitions += 1;
                st.partition_age = 0;
                return Some(Event::Partition {
                    class: rng.gen_range(0..config.n_classes),
                    nth: rng.gen_range(0..st.alive_slaves),
                });
            }
            5 => {
                return Some(if st.spiking {
                    st.spiking = false;
                    Event::LatencyNormal
                } else {
                    st.spiking = true;
                    Event::LatencySpike { micros: [2_000u64, 5_000][rng.gen_range(0..2)] }
                });
            }
            6 if config.n_backends > 0 => {
                return Some(if st.stalled {
                    st.stalled = false;
                    Event::BackendResume
                } else {
                    st.stalled = true;
                    Event::BackendStall
                });
            }
            7 if !st.pressured => {
                st.pressured = true;
                return Some(Event::MemPressure { pages: rng.gen_range(3..=8) });
            }
            _ => continue,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(for_seed(seed), for_seed(seed), "seed {seed}");
        }
    }

    #[test]
    fn events_round_trip_through_display() {
        for seed in 0..50 {
            for ev in for_seed(seed).events {
                let line = ev.to_string();
                assert_eq!(Event::parse(&line), Ok(ev), "line `{line}`");
            }
        }
    }

    #[test]
    fn generator_emits_batched_mid_kill() {
        let found = (0..200).any(|seed| {
            let s = for_seed(seed);
            s.events.iter().any(|e| matches!(e, Event::KillMasterMidBatch { .. }))
        });
        assert!(found, "no seed in 0..200 generates kill-master-mid-batch");
    }

    #[test]
    fn batched_mid_kill_only_targets_single_class_bank_shapes() {
        for seed in 0..200 {
            let s = for_seed(seed);
            if s.events.iter().any(|e| matches!(e, Event::KillMasterMidBatch { .. })) {
                assert_eq!(s.config.workload, Workload::Bank, "seed {seed}");
                assert_eq!(s.config.n_classes, 1, "seed {seed}");
            }
        }
    }

    #[test]
    fn generator_emits_mem_pressure() {
        let found = (0..200).any(|seed| {
            let s = for_seed(seed);
            s.events.iter().any(|e| matches!(e, Event::MemPressure { .. }))
        });
        assert!(found, "no seed in 0..200 generates mem-pressure");
    }

    #[test]
    fn mem_pressure_parses_from_its_display_form() {
        let ev = Event::MemPressure { pages: 5 };
        assert_eq!(Event::parse(&ev.to_string()), Ok(ev));
    }

    #[test]
    fn kills_are_detected_within_two_events() {
        for seed in 0..50 {
            let s = for_seed(seed);
            let mut age: Option<usize> = None;
            for ev in &s.events {
                match ev {
                    Event::KillSlave { .. }
                    | Event::KillMaster { .. }
                    | Event::KillMasterMid { .. }
                    | Event::KillMasterMidBatch { .. } => age = Some(0),
                    Event::Detect => age = None,
                    _ => {
                        if let Some(a) = age.as_mut() {
                            *a += 1;
                            assert!(*a <= 3, "seed {seed}: undetected kill lingered");
                        }
                    }
                }
            }
            assert_eq!(age, None, "seed {seed}: schedule ends with an undetected kill");
        }
    }
}
