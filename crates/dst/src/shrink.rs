//! Greedy schedule minimization (delta-debugging by event deletion).
//!
//! Given a failing schedule, repeatedly try deleting chunks of events
//! and keep any deletion after which the schedule *still fails*. Chunks
//! start at half the schedule and halve down to single events; the
//! sweep repeats at chunk size 1 until a full pass removes nothing (a
//! local minimum: every remaining event is necessary) or the run budget
//! is exhausted. Every candidate is one full deterministic run, so the
//! result is reproducible.
//!
//! Deleting events can change cluster evolution arbitrarily (a deleted
//! `detect` leaves a dead master in place), so the predicate is simply
//! "some oracle still fails" — the minimized schedule demonstrates *a*
//! failure, which is what a repro needs.

use crate::harness::run_schedule;
use crate::schedule::Schedule;

/// Minimizes `s` under an arbitrary failure predicate. Returns the
/// minimized schedule and the number of candidate runs spent. `s`
/// itself is assumed to satisfy the predicate (it is returned unchanged
/// if no deletion preserves failure).
pub fn shrink_with(
    s: &Schedule,
    fails: &dyn Fn(&Schedule) -> bool,
    max_runs: usize,
) -> (Schedule, usize) {
    let mut cur = s.clone();
    let mut runs = 0usize;
    let mut chunk = (cur.events.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.events.len() && runs < max_runs {
            let mut cand = cur.clone();
            let end = (i + chunk).min(cand.events.len());
            cand.events.drain(i..end);
            runs += 1;
            if fails(&cand) {
                cur = cand;
                progressed = true;
                // retry the same position: the next chunk slid into it
            } else {
                i = end;
            }
        }
        if runs >= max_runs || (chunk == 1 && !progressed) {
            break;
        }
        if chunk > 1 {
            chunk = (chunk / 2).max(1);
        }
    }
    (cur, runs)
}

/// Minimizes a schedule that fails the oracles, re-running the harness
/// as the predicate.
pub fn shrink(s: &Schedule, max_runs: usize) -> (Schedule, usize) {
    shrink_with(s, &|c| !run_schedule(c).passed(), max_runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Event, Schedule, ScheduleConfig};

    fn sched(events: Vec<Event>) -> Schedule {
        Schedule { seed: 1, config: ScheduleConfig::bank(), events }
    }

    #[test]
    fn shrinks_to_the_necessary_pair() {
        // Synthetic predicate: fails iff the schedule still contains a
        // Detect and a HealAll (in any positions).
        let fails = |s: &Schedule| {
            s.events.iter().any(|e| matches!(e, Event::Detect))
                && s.events.iter().any(|e| matches!(e, Event::HealAll))
        };
        let mut events = Vec::new();
        for i in 0..20 {
            events.push(Event::Deposit { client: 0, acct: i % 5, amount: 1 });
            if i == 7 {
                events.push(Event::Detect);
            }
            if i == 13 {
                events.push(Event::HealAll);
            }
        }
        let s = sched(events);
        let (min, runs) = shrink_with(&s, &fails, 10_000);
        assert_eq!(min.events.len(), 2, "only the two necessary events remain: {:?}", min.events);
        assert!(fails(&min));
        assert!(runs > 0);
    }

    #[test]
    fn returns_input_when_nothing_can_go() {
        let fails = |s: &Schedule| s.events.len() >= 3;
        let s = sched(vec![Event::Detect, Event::HealAll, Event::Read { client: 0 }]);
        let (min, _) = shrink_with(&s, &fails, 1000);
        assert_eq!(min.events.len(), 3);
    }
}
