//! # dmv-epoch — epoch-based reclamation for the DMV cluster
//!
//! The multiversion tier accumulates state with every commit: per-page
//! pending-diff queues on the slaves, retained `Arc<WriteSet>`
//! allocations on the master, superseded page versions everywhere. The
//! paper's §4.2 `discard_above` only reclaims on *fail-over*; for
//! days-of-uptime operation something must reclaim continuously — and
//! it must never reclaim a version a reader may still ask for.
//!
//! This crate provides the coordination point, in the style of
//! Larson-era oldest-active-transaction GC:
//!
//! * **Reader pins.** Before a tagged read starts, the scheduler pins
//!   its snapshot version vector ([`EpochManager::pin`]); the returned
//!   [`EpochGuard`] unpins on drop (RAII), so a pin can never leak past
//!   the read that took it.
//! * **Peer floors.** Each live slave's replication progress — the
//!   cumulative-ack watermark translated back to a version vector —
//!   is registered via [`EpochManager::set_peer_floor`]. A slave that
//!   has not yet acknowledged a write-set still needs its pre-images.
//! * **The watermark.** [`EpochManager::watermark`] is the
//!   component-wise *meet* (minimum) of the latest committed vector,
//!   every pinned reader tag, and every live peer floor. The published
//!   value is additionally forced monotone: once a version is declared
//!   reclaimable it stays reclaimable, so consumers can act on a stale
//!   watermark without re-checking (acting on `low` is always a subset
//!   of acting on the current watermark).
//!
//! The lattice argument for safety: every pinned tag dominates the
//! watermark (it participates in the meet), so state below the
//! watermark is invisible to every active reader; every peer floor
//! dominates it, so no slave is asked to discard diffs it has not yet
//! durably received. Reclaimers may therefore eagerly apply pending
//! diffs up to the watermark, reap emptied queues and drop superseded
//! versions — a reader pinned at tag `T ≥ watermark` still materializes
//! `T` exactly, and anything racing *below* a pin is a bug this
//! crate's model tests (and the DST GC-safety oracle) exist to catch.
//!
//! Built on the `dmv_check` shims, so the whole manager runs under the
//! loom-style model checker (`--cfg dmv_check`) and the vector-clock
//! race detector (`--cfg dmv_race`) unchanged.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use dmv_check::sync::atomic::{AtomicBool, Ordering};
use dmv_check::sync::{Mutex, RwLock};
use dmv_common::ids::NodeId;
use dmv_common::version::{AtomicVersionVector, VersionVector};
use std::collections::HashMap;
use std::sync::Arc;

/// Active reader pins: monotonically-assigned ids mapping to the tag
/// each reader snapshotted at.
struct PinTable {
    next_id: u64,
    tags: HashMap<u64, VersionVector>,
}

/// The global epoch manager. One per cluster; shared by the scheduler
/// (pins + latest), the masters (peer floors from cumulative acks) and
/// the GC sweep (watermark).
pub struct EpochManager {
    n_tables: usize,
    pins: Mutex<PinTable>,
    /// Floor registrations keyed `(observer, peer)`: what `observer`
    /// (a master, about its own replication stream) vouches `peer` has
    /// durably acknowledged. Keying by observer keeps each master's
    /// registration independent — a master only knows its own stream,
    /// so it marks tables it does not replicate as `u64::MAX` (no
    /// constraint) and the meet combines streams across observers.
    floors: RwLock<HashMap<(NodeId, NodeId), VersionVector>>,
    /// Running merge of committed vectors — the watermark's ceiling.
    latest: AtomicVersionVector,
    /// The published watermark; only ever advances (see module docs).
    low: Mutex<VersionVector>,
    /// Fault-injection hook: when set, [`watermark`](Self::watermark)
    /// ignores pins and floors and returns `latest` — the exact bug
    /// (reclaiming under an active reader) the DST GC-safety oracle
    /// must catch. Never set outside deliberate-mutation tests.
    ignore_pins: AtomicBool,
}

impl EpochManager {
    /// A fresh manager for a database of `n_tables` tables, with zero
    /// pins, no peers and an all-zero watermark.
    pub fn new(n_tables: usize) -> Arc<EpochManager> {
        let mgr = Arc::new(EpochManager {
            n_tables,
            pins: Mutex::new(PinTable { next_id: 0, tags: HashMap::new() }),
            floors: RwLock::new(HashMap::new()),
            latest: AtomicVersionVector::new(n_tables),
            low: Mutex::new(VersionVector::new(n_tables)),
            ignore_pins: AtomicBool::new(false),
        });
        dmv_check::race::label(&mgr.pins, "pins");
        dmv_check::race::label(&mgr.floors, "floors");
        dmv_check::race::label(&mgr.low, "low");
        mgr
    }

    /// Number of tables the manager's vectors cover.
    pub fn n_tables(&self) -> usize {
        self.n_tables
    }

    /// Pins `tag` for the lifetime of the returned guard. While the
    /// guard lives, [`watermark`](Self::watermark) never exceeds `tag`
    /// in any component.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not cover exactly `n_tables` tables.
    pub fn pin(self: &Arc<Self>, tag: &VersionVector) -> EpochGuard {
        assert_eq!(tag.len(), self.n_tables, "pin tag length mismatch");
        let mut pins = self.pins.lock();
        let id = pins.next_id;
        pins.next_id += 1;
        pins.tags.insert(id, tag.clone());
        drop(pins);
        EpochGuard { mgr: Arc::clone(self), id }
    }

    fn unpin(&self, id: u64) {
        self.pins.lock().tags.remove(&id);
    }

    /// Number of currently pinned readers.
    pub fn pinned_count(&self) -> usize {
        self.pins.lock().tags.len()
    }

    /// Component-wise minimum over all pinned tags, or `None` with no
    /// pins. The harness-side GC-safety oracle recomputes this
    /// independently from its own guard bookkeeping.
    pub fn min_pinned(&self) -> Option<VersionVector> {
        let pins = self.pins.lock();
        let mut it = pins.tags.values();
        let mut min = it.next()?.clone();
        for tag in it {
            meet(&mut min, tag);
        }
        Some(min)
    }

    /// Registers (or advances) the floor `observer` vouches for about
    /// `peer`'s stream: the largest versions `peer` has cumulatively
    /// acknowledged *of the tables `observer` replicates to it*.
    /// Components `observer` does not replicate must be `u64::MAX` —
    /// they place no constraint on the watermark; another observer's
    /// registration (or the latest ceiling) bounds them. Floors only
    /// advance; a regressing call is ignored component-wise.
    ///
    /// # Panics
    ///
    /// Panics if `floor` does not cover exactly `n_tables` tables.
    pub fn set_peer_floor(&self, observer: NodeId, peer: NodeId, floor: VersionVector) {
        assert_eq!(floor.len(), self.n_tables, "peer floor length mismatch");
        let mut floors = self.floors.write();
        match floors.get_mut(&(observer, peer)) {
            Some(f) => f.merge(&floor),
            None => {
                floors.insert((observer, peer), floor);
            }
        }
    }

    /// Drops every floor registration involving `node`, in either role:
    /// a dead slave must stop holding the watermark back (its queues
    /// are discarded wholesale at reintegration instead), and a dead
    /// master's vouchings go with it (its successor re-registers from
    /// its own stream).
    pub fn remove_peer(&self, node: NodeId) {
        self.floors.write().retain(|(o, p), _| *o != node && *p != node);
    }

    /// Snapshot of every floor registration, sorted by key — for
    /// diagnostics and oracle failure messages.
    pub fn floor_entries(&self) -> Vec<((NodeId, NodeId), VersionVector)> {
        let floors = self.floors.read();
        let mut v: Vec<_> = floors.iter().map(|(k, f)| (*k, f.clone())).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Distinct peers with at least one floor registration.
    pub fn peer_count(&self) -> usize {
        let floors = self.floors.read();
        let mut peers: Vec<NodeId> = floors.keys().map(|(_, p)| *p).collect();
        peers.sort_unstable();
        peers.dedup();
        peers.len()
    }

    /// Merges a committed version vector into `latest` (the watermark's
    /// ceiling). Called on every commit the scheduler observes.
    pub fn advance_latest(&self, v: &VersionVector) {
        self.latest.merge(v);
    }

    /// Linearizable snapshot of the latest committed vector.
    pub fn latest(&self) -> VersionVector {
        self.latest.snapshot()
    }

    /// Computes and publishes the reclamation watermark:
    /// `meet(latest, pinned tags…, peer floors…)`, then merged into the
    /// monotone published value so it never regresses even if a pin
    /// lands between the meet and the publish.
    pub fn watermark(&self) -> VersionVector {
        let mut wm = self.latest.snapshot();
        if !self.ignore_pins.load(Ordering::SeqCst) {
            let pins = self.pins.lock();
            for tag in pins.tags.values() {
                meet(&mut wm, tag);
            }
            drop(pins);
            let floors = self.floors.read();
            for floor in floors.values() {
                meet(&mut wm, floor);
            }
            drop(floors);
        }
        let mut low = self.low.lock();
        low.merge(&wm);
        low.clone()
    }

    /// The last published watermark, without recomputing.
    pub fn published(&self) -> VersionVector {
        self.low.lock().clone()
    }

    /// Deliberate-mutation hook: make [`watermark`](Self::watermark)
    /// ignore pins and floors (see the field docs). Test-only by
    /// convention; the DST corpus asserts the GC-safety oracle catches
    /// the resulting premature reclaim.
    pub fn set_ignore_pins_for_test(&self, on: bool) {
        self.ignore_pins.store(on, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for EpochManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochManager")
            .field("n_tables", &self.n_tables)
            .field("pinned", &self.pinned_count())
            .field("peers", &self.peer_count())
            .field("published", &self.published())
            .finish()
    }
}

/// RAII pin: the tag passed to [`EpochManager::pin`] stays protected
/// until the guard drops.
#[must_use = "dropping the guard immediately unpins the epoch"]
pub struct EpochGuard {
    mgr: Arc<EpochManager>,
    id: u64,
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        self.mgr.unpin(self.id);
    }
}

impl std::fmt::Debug for EpochGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochGuard").field("id", &self.id).finish()
    }
}

/// Component-wise minimum, in place — the lattice meet dual to
/// `VersionVector::merge`.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
fn meet(acc: &mut VersionVector, other: &VersionVector) {
    assert_eq!(acc.len(), other.len(), "version vector length mismatch");
    for (t, v) in other.iter() {
        if v < acc.get(t) {
            acc.set(t, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::ids::TableId;

    fn vv(e: &[u64]) -> VersionVector {
        VersionVector::from_entries(e.to_vec())
    }

    #[test]
    fn watermark_without_pins_or_peers_is_latest() {
        let m = EpochManager::new(2);
        assert_eq!(m.watermark(), vv(&[0, 0]));
        m.advance_latest(&vv(&[3, 1]));
        assert_eq!(m.watermark(), vv(&[3, 1]));
    }

    #[test]
    fn pin_holds_the_watermark_back_until_dropped() {
        let m = EpochManager::new(2);
        m.advance_latest(&vv(&[2, 2]));
        let g = m.pin(&vv(&[1, 2]));
        assert_eq!(m.pinned_count(), 1);
        assert_eq!(m.watermark(), vv(&[1, 2]));
        m.advance_latest(&vv(&[5, 5]));
        assert_eq!(m.watermark(), vv(&[1, 2]), "pinned tag caps the watermark");
        drop(g);
        assert_eq!(m.pinned_count(), 0);
        assert_eq!(m.watermark(), vv(&[5, 5]));
    }

    #[test]
    fn min_pinned_is_the_meet_of_all_pins() {
        let m = EpochManager::new(2);
        assert_eq!(m.min_pinned(), None);
        let g1 = m.pin(&vv(&[4, 1]));
        let g2 = m.pin(&vv(&[2, 3]));
        assert_eq!(m.min_pinned(), Some(vv(&[2, 1])));
        drop(g1);
        assert_eq!(m.min_pinned(), Some(vv(&[2, 3])));
        drop(g2);
    }

    #[test]
    fn slowest_peer_floor_caps_the_watermark() {
        let m = EpochManager::new(2);
        let master = NodeId(0);
        m.advance_latest(&vv(&[9, 9]));
        m.set_peer_floor(master, NodeId(1), vv(&[9, 9]));
        m.set_peer_floor(master, NodeId(2), vv(&[4, 7]));
        assert_eq!(m.watermark(), vv(&[4, 7]));
        // Floors only advance.
        m.set_peer_floor(master, NodeId(2), vv(&[3, 8]));
        assert_eq!(m.watermark(), vv(&[4, 8]));
        m.remove_peer(NodeId(2));
        assert_eq!(m.watermark(), vv(&[9, 9]));
    }

    #[test]
    fn observers_vouch_only_for_their_own_stream() {
        // Two single-table conflict classes: master 0 owns table 0,
        // master 1 owns table 1. Each registers MAX for the table it
        // does not replicate; the meet combines the two streams, and
        // neither master's registration about the *other* master caps
        // the table that master itself owns.
        let m = EpochManager::new(2);
        m.advance_latest(&vv(&[5, 2]));
        m.set_peer_floor(NodeId(0), NodeId(10), vv(&[5, u64::MAX]));
        m.set_peer_floor(NodeId(1), NodeId(10), vv(&[u64::MAX, 2]));
        m.set_peer_floor(NodeId(0), NodeId(1), vv(&[4, u64::MAX]));
        m.set_peer_floor(NodeId(1), NodeId(0), vv(&[u64::MAX, 2]));
        assert_eq!(m.peer_count(), 3);
        assert_eq!(m.watermark(), vv(&[4, 2]), "only real stream floors constrain");
        // The dead master's vouchings go with it.
        m.remove_peer(NodeId(1));
        assert_eq!(m.peer_count(), 1);
        assert_eq!(m.watermark(), vv(&[5, 2]));
    }

    #[test]
    fn published_watermark_is_monotone() {
        let m = EpochManager::new(1);
        m.advance_latest(&vv(&[7]));
        assert_eq!(m.watermark(), vv(&[7]));
        // A pin arriving after the publish cannot drag it back down.
        let g = m.pin(&vv(&[3]));
        assert_eq!(m.watermark(), vv(&[7]), "published watermark never regresses");
        assert_eq!(m.published(), vv(&[7]));
        drop(g);
    }

    #[test]
    fn guard_drop_order_does_not_matter() {
        let m = EpochManager::new(1);
        m.advance_latest(&vv(&[10]));
        let g1 = m.pin(&vv(&[2]));
        let g2 = m.pin(&vv(&[5]));
        drop(g1);
        assert_eq!(m.watermark(), vv(&[5]));
        drop(g2);
        assert_eq!(m.watermark(), vv(&[10]));
    }

    #[test]
    fn ignore_pins_mutation_reclaims_under_a_pin() {
        // The deliberate bug the DST GC-safety oracle must catch: with
        // the hook set, the watermark runs straight past a pinned tag.
        let m = EpochManager::new(1);
        m.advance_latest(&vv(&[8]));
        let _g = m.pin(&vv(&[1]));
        assert_eq!(m.watermark(), vv(&[1]));
        m.set_ignore_pins_for_test(true);
        let wm = m.watermark();
        let pinned = m.min_pinned().expect("one pin");
        assert!(
            !pinned.dominates(&wm),
            "mutation must push the watermark past the pin (wm {wm}, pin {pinned})"
        );
    }

    #[test]
    fn meet_is_componentwise_min() {
        let mut a = vv(&[3, 1, 5]);
        meet(&mut a, &vv(&[2, 4, 5]));
        assert_eq!(a, vv(&[2, 1, 5]));
    }

    #[test]
    #[should_panic]
    fn pin_length_mismatch_panics() {
        let m = EpochManager::new(2);
        let _ = m.pin(&VersionVector::new(3));
    }

    #[test]
    fn concurrent_pins_and_advances_keep_the_lattice_invariant() {
        // Full-speed stress twin of the exhaustive model test in
        // crates/check/tests/epoch.rs: the watermark never exceeds any
        // tag pinned for the duration of the observation.
        let m = EpochManager::new(1);
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            dmv_check::thread::spawn(move || {
                let mut v = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    v += 1;
                    m.advance_latest(&VersionVector::from_entries(vec![v]));
                    m.watermark();
                }
            })
        };
        for _ in 0..2_000 {
            let tag = m.latest();
            let g = m.pin(&tag);
            let wm = m.watermark();
            assert!(tag.dominates(&wm), "watermark {wm} overtook pinned tag {tag}");
            drop(g);
        }
        stop.store(true, Ordering::SeqCst);
        writer.join().expect("join writer");
    }

    #[test]
    fn table_id_access_matches_entry_order() {
        let m = EpochManager::new(3);
        m.advance_latest(&vv(&[1, 2, 3]));
        assert_eq!(m.latest().get(TableId(2)), 3);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_vv(n: usize) -> impl Strategy<Value = VersionVector> {
        proptest::collection::vec(0u64..50, n).prop_map(VersionVector::from_entries)
    }

    proptest! {
        /// The watermark is a lower bound of everything that feeds it.
        #[test]
        fn watermark_is_dominated_by_every_input(
            latest in arb_vv(3),
            pins in proptest::collection::vec(arb_vv(3), 0..4),
            floors in proptest::collection::vec(arb_vv(3), 0..4),
        ) {
            let m = EpochManager::new(3);
            m.advance_latest(&latest);
            let guards: Vec<_> = pins.iter().map(|t| m.pin(t)).collect();
            for (i, f) in floors.iter().enumerate() {
                m.set_peer_floor(
                    dmv_common::ids::NodeId(99),
                    dmv_common::ids::NodeId(i as u32),
                    f.clone(),
                );
            }
            let wm = m.watermark();
            prop_assert!(latest.dominates(&wm));
            for t in &pins {
                prop_assert!(t.dominates(&wm), "pin {t} below watermark {wm}");
            }
            for f in &floors {
                prop_assert!(f.dominates(&wm), "floor {f} below watermark {wm}");
            }
            drop(guards);
        }

        /// Publishing is monotone under any interleaving of advances.
        #[test]
        fn published_never_regresses(vs in proptest::collection::vec(arb_vv(2), 1..8)) {
            let m = EpochManager::new(2);
            let mut prev = m.watermark();
            for v in vs {
                m.advance_latest(&v);
                let next = m.watermark();
                prop_assert!(next.dominates(&prev), "{next} regressed from {prev}");
                prev = next;
            }
        }
    }
}
