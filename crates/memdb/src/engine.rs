//! The `MemDb` engine: schema, page store, lock manager, and the
//! pluggable read gate that connects slave replicas to the replication
//! layer's lazy version materialization.

use crate::lock::LockManager;
use crate::txn::{Txn, TxnMode};
use dmv_common::clock::SimClock;
use dmv_common::config::CpuProfile;
use dmv_common::error::DmvResult;
use dmv_common::ids::{NodeId, PageId, TableId, TxnId};
use dmv_common::throttle::Throttle;
use dmv_common::version::VersionVector;
use dmv_pagestore::store::{PageCell, PageStore, Residency};
use dmv_sql::Schema;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Hook invoked before a tagged read-only transaction reads a page.
///
/// On slave replicas this is implemented by the replication layer: it
/// applies the page's pending update-log records up to the transaction's
/// version tag ("the appropriate version for each individual data item is
/// created dynamically and lazily at that slave replica"), and fails with
/// [`dmv_common::DmvError::VersionConflict`] if the page has already been
/// upgraded past the tag.
pub trait ReadGate: Send + Sync {
    /// Makes `cell` consistent for reading at `tag`.
    ///
    /// # Errors
    ///
    /// Returns a retryable error if the required version cannot be
    /// materialized (already surpassed, or the node is reconfiguring).
    fn prepare_read(&self, id: PageId, cell: &PageCell, tag: &VersionVector) -> DmvResult<()>;
}

/// Gate used by stand-alone databases: pages are always current.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopGate;

impl ReadGate for NoopGate {
    fn prepare_read(&self, _id: PageId, _cell: &PageCell, _tag: &VersionVector) -> DmvResult<()> {
        Ok(())
    }
}

/// Construction options for [`MemDb`].
#[derive(Clone)]
pub struct MemDbOptions {
    /// Node id embedded in transaction ids.
    pub node: NodeId,
    /// Page-fault model (mmap page-in cost).
    pub residency: Residency,
    /// Per-operation CPU cost model.
    pub cpu: CpuProfile,
    /// Clock used to charge modeled costs.
    pub clock: SimClock,
    /// Wall-clock lock wait timeout (deadlock resolution).
    pub lock_timeout: Duration,
    /// CPU service slots of the node (the paper's testbed machines are
    /// dual Athlons). Concurrent query CPU charges queue beyond this.
    pub cpu_permits: usize,
}

impl Default for MemDbOptions {
    fn default() -> Self {
        MemDbOptions {
            node: NodeId(0),
            residency: Residency::free(),
            cpu: CpuProfile::zero(),
            clock: SimClock::default(),
            lock_timeout: Duration::from_millis(250),
            cpu_permits: 2,
        }
    }
}

impl std::fmt::Debug for MemDbOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDbOptions")
            .field("node", &self.node)
            .field("lock_timeout", &self.lock_timeout)
            .finish()
    }
}

/// The in-memory page-based database engine.
///
/// One `MemDb` instance is one replica's database: all heap and index
/// pages of every table, a per-page 2PL lock manager (used by update
/// transactions on masters), and a [`ReadGate`] wiring tagged reads to
/// the replication layer.
pub struct MemDb {
    schema: Schema,
    store: Arc<PageStore>,
    locks: LockManager,
    gate: RwLock<Arc<dyn ReadGate>>,
    cpu: CpuProfile,
    cpu_throttle: Throttle,
    clock: SimClock,
    node: NodeId,
    next_txn: AtomicU64,
    insert_hints: Mutex<HashMap<TableId, u32>>,
}

impl MemDb {
    /// Creates an empty database for `schema`.
    pub fn new(schema: Schema, opts: MemDbOptions) -> Self {
        MemDb {
            schema,
            store: Arc::new(PageStore::new(opts.residency)),
            locks: LockManager::new(opts.lock_timeout),
            gate: RwLock::new(Arc::new(NoopGate)),
            cpu: opts.cpu,
            cpu_throttle: Throttle::new(opts.clock, opts.cpu_permits),
            clock: opts.clock,
            node: opts.node,
            next_txn: AtomicU64::new(1),
            insert_hints: Mutex::new(HashMap::new()),
        }
    }

    /// The database schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying page store (used by replication, checkpointing and
    /// migration).
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// The page lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// The engine's clock.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Installs the read gate (called by the replication layer when the
    /// replica becomes a slave).
    pub fn set_gate(&self, gate: Arc<dyn ReadGate>) {
        *self.gate.write() = gate;
    }

    pub(crate) fn gate(&self) -> Arc<dyn ReadGate> {
        self.gate.read().clone()
    }

    fn next_txn_id(&self) -> TxnId {
        TxnId::new(self.node, self.next_txn.fetch_add(1, Ordering::Relaxed)) // relaxed-ok: ID allocator; uniqueness comes from the RMW, nothing is published
    }

    /// Begins an update transaction (per-page 2PL; master side).
    pub fn begin_update(&self) -> Txn<'_> {
        Txn::new(self, self.next_txn_id(), TxnMode::Update)
    }

    /// Begins a read-only transaction reading the state tagged by the
    /// scheduler (slave side).
    pub fn begin_read_tagged(&self, tag: VersionVector) -> Txn<'_> {
        Txn::new(self, self.next_txn_id(), TxnMode::ReadTagged(tag))
    }

    /// Begins an untagged, latched read-only transaction (stand-alone
    /// single-node use; not isolated from concurrent local writers).
    pub fn begin_read_local(&self) -> Txn<'_> {
        Txn::new(self, self.next_txn_id(), TxnMode::ReadLocal)
    }

    pub(crate) fn insert_hint(&self, table: TableId) -> u32 {
        *self.insert_hints.lock().get(&table).unwrap_or(&0)
    }

    pub(crate) fn set_insert_hint(&self, table: TableId, page_no: u32) {
        self.insert_hints.lock().insert(table, page_no);
    }

    /// CPU cost of scanning `n` rows.
    pub(crate) fn cost_scan(&self, n: usize) -> Duration {
        self.cpu.per_row_scan * n as u32
    }

    /// CPU cost of one index probe.
    pub(crate) fn cost_probe(&self) -> Duration {
        self.cpu.per_index_probe
    }

    /// CPU cost of writing `n` rows.
    pub(crate) fn cost_write(&self, n: usize) -> Duration {
        self.cpu.per_row_write * n as u32
    }

    /// Pays accrued CPU cost through the node's CPU throttle.
    pub(crate) fn charge_duration(&self, d: Duration) {
        if !d.is_zero() {
            self.cpu_throttle.charge(d);
        }
    }
}

impl std::fmt::Debug for MemDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDb")
            .field("node", &self.node)
            .field("tables", &self.schema.len())
            .field("pages", &self.store.len())
            .finish()
    }
}
