//! Heap storage: rows in slotted pages.
//!
//! Rows are addressed by stable `(page, slot)` [`RowId`]s; an update that
//! no longer fits its page relocates the row (returning the new id so the
//! caller can fix the indexes).

use crate::txn::Txn;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{PageId, PageSpace, RowId, TableId};
use dmv_pagestore::slotted;
use dmv_sql::row::{decode_row, encode_row, Row};

/// Inserts `row` into the table's heap, returning its new id.
///
/// # Errors
///
/// Propagates lock and storage errors; `Storage` if the encoded row
/// exceeds a page.
pub fn insert(txn: &mut Txn<'_>, table: TableId, row: &Row) -> DmvResult<RowId> {
    let bytes = encode_row(row);
    if bytes.len() > slotted::MAX_RECORD {
        return Err(DmvError::Storage(format!("row of {} bytes exceeds page size", bytes.len())));
    }
    // Try the hint page, then every later page, then allocate. Free
    // space is *peeked* under the latch first — exclusive-locking a full
    // page just to discover it is full would hold that lock until commit
    // (2PL) and serialize every concurrent inserter behind it.
    let count = txn.heap_page_count(table);
    let hint = txn.db().insert_hint(table).min(count.saturating_sub(1));
    let mut candidates: Vec<u32> = (hint..count).collect();
    candidates.extend(0..hint);
    for page_no in candidates {
        let id = PageId::heap(table, page_no);
        let looks_roomy =
            txn.peek_page(id, |d| slotted::total_free(d) >= bytes.len() + 8).unwrap_or(false);
        if !looks_roomy {
            continue;
        }
        let slot = txn.write_page(id, |d| slotted::insert(d, &bytes))?;
        if let Some(slot) = slot {
            txn.db().set_insert_hint(table, page_no);
            return Ok(RowId::new(page_no, slot));
        }
    }
    let id = txn.allocate_page(table, PageSpace::Heap)?;
    let slot = txn.write_page(id, |d| {
        slotted::init(d);
        slotted::insert(d, &bytes)
    })?;
    let slot = slot.ok_or_else(|| DmvError::Storage("fresh page rejected insert".into()))?;
    txn.db().set_insert_hint(table, id.page_no);
    Ok(RowId::new(id.page_no, slot))
}

/// Reads the row at `rid`, or `None` if the slot is dead.
///
/// # Errors
///
/// Propagates lock/version errors and decode failures.
pub fn read(txn: &mut Txn<'_>, table: TableId, rid: RowId) -> DmvResult<Option<Row>> {
    let id = PageId::heap(table, rid.page_no);
    let bytes = txn.read_page(id, |d| slotted::read(d, rid.slot).map(<[u8]>::to_vec))?;
    match bytes {
        Some(b) => Ok(Some(decode_row(&b)?)),
        None => Ok(None),
    }
}

/// Replaces the row at `rid`, relocating it if it no longer fits its
/// page. Returns the row's (possibly new) id.
///
/// # Errors
///
/// `NotFound` if the slot is dead; propagates lock/storage errors.
pub fn update(txn: &mut Txn<'_>, table: TableId, rid: RowId, row: &Row) -> DmvResult<RowId> {
    let bytes = encode_row(row);
    let id = PageId::heap(table, rid.page_no);
    let in_place = txn.write_page(id, |d| {
        if slotted::read(d, rid.slot).is_none() {
            None
        } else {
            Some(slotted::update(d, rid.slot, &bytes))
        }
    })?;
    match in_place {
        None => Err(DmvError::NotFound(format!("row {rid}"))),
        Some(true) => Ok(rid),
        Some(false) => {
            // Relocate: delete here, insert elsewhere.
            txn.write_page(id, |d| slotted::delete(d, rid.slot))?;
            insert(txn, table, row)
        }
    }
}

/// Deletes the row at `rid`.
///
/// # Errors
///
/// `NotFound` if the slot is already dead.
pub fn delete(txn: &mut Txn<'_>, table: TableId, rid: RowId) -> DmvResult<()> {
    let id = PageId::heap(table, rid.page_no);
    let ok = txn.write_page(id, |d| slotted::delete(d, rid.slot))?;
    if ok {
        Ok(())
    } else {
        Err(DmvError::NotFound(format!("row {rid}")))
    }
}

/// All live rows of the table, page by page.
///
/// # Errors
///
/// Propagates lock/version errors and decode failures.
pub fn scan(txn: &mut Txn<'_>, table: TableId) -> DmvResult<Vec<(RowId, Row)>> {
    let count = txn.heap_page_count(table);
    let mut out = Vec::new();
    for page_no in 0..count {
        let id = PageId::heap(table, page_no);
        let recs: Vec<(u16, Vec<u8>)> = txn.read_page(id, |d| {
            slotted::live_slots(d)
                .map(|s| (s, slotted::read(d, s).expect("live slot").to_vec())) // unwrap-ok: slot ids come from live_slots over the same page bytes
                .collect()
        })?;
        for (slot, bytes) in recs {
            out.push((RowId::new(page_no, slot), decode_row(&bytes)?));
        }
    }
    Ok(out)
}
