//! Page-based B+Tree indexes.
//!
//! Index nodes are serialized into ordinary pages of the owning table's
//! index space, so **index maintenance is page modification**: splits and
//! key inserts are captured by the transaction's undo/diff machinery and
//! replicate to slaves exactly like heap data. (The paper attributes the
//! master's saturation under the ordering mix to "costly index updates
//! ... due to rebalancing for inserts" — the same effect arises here.)
//!
//! Entries are ordered by `(key, row id)`, which makes non-unique keys
//! unambiguous. Deletes do not rebalance (TPC-W's delete rate is zero);
//! empty leaves are tolerated and skipped by scans.

use crate::txn::Txn;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{PageId, PageSpace, RowId, TableId};
use dmv_pagestore::PAGE_SIZE;
use dmv_sql::row::{decode_row, encode_row, Row};
use dmv_sql::value::Value;
use std::cmp::Ordering;

const NODE_LEAF: u8 = 0;
const NODE_INTERNAL: u8 = 1;
const NODE_META: u8 = 2;

/// An index entry: full key plus the row it points at.
pub type Entry = (Row, RowId);

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Meta { root: u32 },
    Leaf { next: Option<u32>, entries: Vec<Entry> },
    Internal { keys: Vec<Entry>, children: Vec<u32> },
}

fn entry_encoded_len(e: &Entry) -> usize {
    2 + encode_row(&e.0).len() + 6
}

fn leaf_size(entries: &[Entry]) -> usize {
    7 + entries.iter().map(entry_encoded_len).sum::<usize>()
}

fn internal_size(keys: &[Entry], children: &[u32]) -> usize {
    3 + 4 * children.len() + keys.iter().map(entry_encoded_len).sum::<usize>()
}

fn put_u16(d: &mut [u8], at: usize, v: u16) {
    d[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(d: &mut [u8], at: usize, v: u32) {
    d[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u16(d: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([d[at], d[at + 1]])
}

fn get_u32(d: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([d[at], d[at + 1], d[at + 2], d[at + 3]])
}

fn write_entry(d: &mut [u8], at: &mut usize, e: &Entry) {
    let kb = encode_row(&e.0);
    put_u16(d, *at, kb.len() as u16);
    d[*at + 2..*at + 2 + kb.len()].copy_from_slice(&kb);
    *at += 2 + kb.len();
    put_u32(d, *at, e.1.page_no);
    put_u16(d, *at + 4, e.1.slot);
    *at += 6;
}

fn read_entry(d: &[u8], at: &mut usize) -> DmvResult<Entry> {
    let klen = get_u16(d, *at) as usize;
    let key = decode_row(&d[*at + 2..*at + 2 + klen])?;
    *at += 2 + klen;
    let rid = RowId::new(get_u32(d, *at), get_u16(d, *at + 4));
    *at += 6;
    Ok((key, rid))
}

fn encode_node(node: &Node, d: &mut [u8]) {
    match node {
        Node::Meta { root } => {
            d[0] = NODE_META;
            put_u32(d, 1, *root);
        }
        Node::Leaf { next, entries } => {
            debug_assert!(leaf_size(entries) <= PAGE_SIZE, "leaf overflow");
            d[0] = NODE_LEAF;
            put_u16(d, 1, entries.len() as u16);
            put_u32(d, 3, next.map_or(0, |n| n + 1));
            let mut at = 7;
            for e in entries {
                write_entry(d, &mut at, e);
            }
        }
        Node::Internal { keys, children } => {
            debug_assert!(internal_size(keys, children) <= PAGE_SIZE, "internal overflow");
            debug_assert_eq!(children.len(), keys.len() + 1);
            d[0] = NODE_INTERNAL;
            put_u16(d, 1, keys.len() as u16);
            let mut at = 3;
            for c in children {
                put_u32(d, at, *c);
                at += 4;
            }
            for k in keys {
                write_entry(d, &mut at, k);
            }
        }
    }
}

fn decode_node(d: &[u8]) -> DmvResult<Node> {
    match d[0] {
        NODE_META => Ok(Node::Meta { root: get_u32(d, 1) }),
        NODE_LEAF => {
            let n = get_u16(d, 1) as usize;
            let next_raw = get_u32(d, 3);
            let next = if next_raw == 0 { None } else { Some(next_raw - 1) };
            let mut at = 7;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(read_entry(d, &mut at)?);
            }
            Ok(Node::Leaf { next, entries })
        }
        NODE_INTERNAL => {
            let n = get_u16(d, 1) as usize;
            let mut at = 3;
            let mut children = Vec::with_capacity(n + 1);
            for _ in 0..=n {
                children.push(get_u32(d, at));
                at += 4;
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(read_entry(d, &mut at)?);
            }
            Ok(Node::Internal { keys, children })
        }
        t => Err(DmvError::Storage(format!("bad index node type {t}"))),
    }
}

/// Full-entry ordering: key, then row id.
fn cmp_entry(a: &Entry, b: &Entry) -> Ordering {
    a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1))
}

/// Compares an entry's key against a probe *prefix* (for range bounds
/// expressed on a prefix of the index columns).
fn prefix_cmp(entry_key: &[Value], probe: &[Value]) -> Ordering {
    let n = probe.len().min(entry_key.len());
    entry_key[..n].cmp(&probe[..n])
}

/// A B+Tree index handle (stateless; all state is in pages).
#[derive(Debug, Clone, Copy)]
pub struct BTreeIndex {
    table: TableId,
    index_no: u8,
}

impl BTreeIndex {
    /// Handle for index `index_no` of `table`.
    pub fn new(table: TableId, index_no: u8) -> Self {
        BTreeIndex { table, index_no }
    }

    fn space(&self) -> PageSpace {
        PageSpace::Index(self.index_no)
    }

    fn pid(&self, no: u32) -> PageId {
        PageId { table: self.table, space: self.space(), page_no: no }
    }

    fn page_count(&self, txn: &Txn<'_>) -> u32 {
        txn.db().store().allocated_count(self.table, self.space())
    }

    fn read_node(&self, txn: &mut Txn<'_>, no: u32) -> DmvResult<Node> {
        txn.read_page(self.pid(no), decode_node)?
    }

    fn write_node(&self, txn: &mut Txn<'_>, no: u32, node: &Node) -> DmvResult<()> {
        txn.write_page(self.pid(no), |d| encode_node(node, d))
    }

    /// Allocates the meta page (page 0) and an empty root leaf (page 1)
    /// on first use within an update transaction, so the initialization
    /// itself replicates.
    fn ensure_init(&self, txn: &mut Txn<'_>) -> DmvResult<()> {
        if self.page_count(txn) > 0 {
            return Ok(());
        }
        let meta = txn.allocate_page(self.table, self.space())?;
        let root = txn.allocate_page(self.table, self.space())?;
        debug_assert_eq!(meta.page_no, 0);
        self.write_node(txn, meta.page_no, &Node::Meta { root: root.page_no })?;
        self.write_node(txn, root.page_no, &Node::Leaf { next: None, entries: Vec::new() })
    }

    fn root(&self, txn: &mut Txn<'_>) -> DmvResult<u32> {
        match self.read_node(txn, 0)? {
            Node::Meta { root } => Ok(root),
            _ => Err(DmvError::Storage("index page 0 is not a meta page".into())),
        }
    }

    /// Inserts `(key, rid)`.
    ///
    /// Inserting the exact same `(key, rid)` twice is idempotent.
    /// Uniqueness is enforced by the caller (engine layer) via
    /// [`BTreeIndex::lookup_eq`] so that failed statements leave no trace.
    ///
    /// # Errors
    ///
    /// Propagates lock/storage errors; `Storage` if a single entry cannot
    /// fit in a page.
    pub fn insert(&self, txn: &mut Txn<'_>, key: &[Value], rid: RowId) -> DmvResult<()> {
        let entry: Entry = (key.to_vec(), rid);
        if entry_encoded_len(&entry) + 7 > PAGE_SIZE {
            return Err(DmvError::Storage("index key too large for a page".into()));
        }
        self.ensure_init(txn)?;
        let root = self.root(txn)?;
        if let Some((sep, new_page)) = self.insert_rec(txn, root, entry)? {
            let new_root = txn.allocate_page(self.table, self.space())?;
            self.write_node(
                txn,
                new_root.page_no,
                &Node::Internal { keys: vec![sep], children: vec![root, new_page] },
            )?;
            self.write_node(txn, 0, &Node::Meta { root: new_root.page_no })?;
        }
        Ok(())
    }

    fn insert_rec(
        &self,
        txn: &mut Txn<'_>,
        page_no: u32,
        entry: Entry,
    ) -> DmvResult<Option<(Entry, u32)>> {
        match self.read_node(txn, page_no)? {
            Node::Leaf { next, mut entries } => {
                match entries.binary_search_by(|e| cmp_entry(e, &entry)) {
                    Ok(_) => return Ok(None), // exact duplicate: idempotent
                    Err(pos) => entries.insert(pos, entry),
                }
                if leaf_size(&entries) <= PAGE_SIZE {
                    self.write_node(txn, page_no, &Node::Leaf { next, entries })?;
                    return Ok(None);
                }
                // Split.
                let mid = entries.len() / 2;
                let right: Vec<Entry> = entries.split_off(mid);
                let sep = right[0].clone();
                let new = txn.allocate_page(self.table, self.space())?;
                self.write_node(txn, new.page_no, &Node::Leaf { next, entries: right })?;
                self.write_node(txn, page_no, &Node::Leaf { next: Some(new.page_no), entries })?;
                Ok(Some((sep, new.page_no)))
            }
            Node::Internal { mut keys, mut children } => {
                let idx = keys.partition_point(|k| cmp_entry(k, &entry) != Ordering::Greater);
                let split = self.insert_rec(txn, children[idx], entry)?;
                let Some((sep, new_child)) = split else { return Ok(None) };
                keys.insert(idx, sep);
                children.insert(idx + 1, new_child);
                if internal_size(&keys, &children) <= PAGE_SIZE {
                    self.write_node(txn, page_no, &Node::Internal { keys, children })?;
                    return Ok(None);
                }
                // Split the internal node; the middle key is promoted.
                let mid = keys.len() / 2;
                let promoted = keys[mid].clone();
                let right_keys: Vec<Entry> = keys.split_off(mid + 1);
                keys.pop(); // remove the promoted key from the left node
                let right_children: Vec<u32> = children.split_off(mid + 1);
                let new = txn.allocate_page(self.table, self.space())?;
                self.write_node(
                    txn,
                    new.page_no,
                    &Node::Internal { keys: right_keys, children: right_children },
                )?;
                self.write_node(txn, page_no, &Node::Internal { keys, children })?;
                Ok(Some((promoted, new.page_no)))
            }
            Node::Meta { .. } => Err(DmvError::Storage("meta page inside tree".into())),
        }
    }

    /// Removes `(key, rid)`. Returns whether the entry existed. No
    /// rebalancing is performed (empty leaves are tolerated).
    ///
    /// # Errors
    ///
    /// Propagates lock/storage errors.
    pub fn delete(&self, txn: &mut Txn<'_>, key: &[Value], rid: RowId) -> DmvResult<bool> {
        if self.page_count(txn) == 0 {
            return Ok(false);
        }
        let probe: Entry = (key.to_vec(), rid);
        let mut no = self.root(txn)?;
        loop {
            match self.read_node(txn, no)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| cmp_entry(k, &probe) != Ordering::Greater);
                    no = children[idx];
                }
                Node::Leaf { next, mut entries } => {
                    match entries.binary_search_by(|e| cmp_entry(e, &probe)) {
                        Ok(pos) => {
                            entries.remove(pos);
                            self.write_node(txn, no, &Node::Leaf { next, entries })?;
                            return Ok(true);
                        }
                        Err(_) => return Ok(false),
                    }
                }
                Node::Meta { .. } => return Err(DmvError::Storage("meta page inside tree".into())),
            }
        }
    }

    /// Leaf where entries with prefix `>= probe` begin (or the leftmost
    /// leaf when `probe` is `None`).
    fn find_start_leaf(&self, txn: &mut Txn<'_>, probe: Option<&[Value]>) -> DmvResult<u32> {
        let mut no = self.root(txn)?;
        loop {
            match self.read_node(txn, no)? {
                Node::Internal { keys, children } => {
                    let idx = match probe {
                        Some(p) => keys.partition_point(|k| prefix_cmp(&k.0, p) == Ordering::Less),
                        None => 0,
                    };
                    no = children[idx];
                }
                Node::Leaf { .. } => return Ok(no),
                Node::Meta { .. } => return Err(DmvError::Storage("meta page inside tree".into())),
            }
        }
    }

    /// Entries with keys between the bounds (each a `(prefix, inclusive)`
    /// pair), in key order — or reverse key order when `rev` is true.
    /// `limit` bounds the number of returned entries.
    ///
    /// # Errors
    ///
    /// Propagates lock/version/storage errors.
    pub fn range(
        &self,
        txn: &mut Txn<'_>,
        lo: Option<(&[Value], bool)>,
        hi: Option<(&[Value], bool)>,
        rev: bool,
        limit: Option<usize>,
    ) -> DmvResult<Vec<Entry>> {
        if self.page_count(txn) == 0 {
            return Ok(Vec::new());
        }
        let mut out: Vec<Entry> = Vec::new();
        let mut no = self.find_start_leaf(txn, lo.map(|(k, _)| k))?;
        'walk: loop {
            let Node::Leaf { next, entries } = self.read_node(txn, no)? else {
                return Err(DmvError::Storage("expected leaf during range scan".into()));
            };
            for e in entries {
                if let Some((lo_k, inc)) = lo {
                    match prefix_cmp(&e.0, lo_k) {
                        Ordering::Less => continue,
                        Ordering::Equal if !inc => continue,
                        _ => {}
                    }
                }
                if let Some((hi_k, inc)) = hi {
                    match prefix_cmp(&e.0, hi_k) {
                        Ordering::Greater => break 'walk,
                        Ordering::Equal if !inc => break 'walk,
                        _ => {}
                    }
                }
                out.push(e);
                if !rev {
                    if let Some(n) = limit {
                        if out.len() >= n {
                            break 'walk;
                        }
                    }
                }
            }
            match next {
                Some(n) => no = n,
                None => break,
            }
        }
        if rev {
            out.reverse();
            if let Some(n) = limit {
                out.truncate(n);
            }
        }
        Ok(out)
    }

    /// Row ids of entries whose key equals `key` exactly (on the probe's
    /// prefix length).
    ///
    /// # Errors
    ///
    /// Propagates lock/version/storage errors.
    pub fn lookup_eq(&self, txn: &mut Txn<'_>, key: &[Value]) -> DmvResult<Vec<RowId>> {
        if self.page_count(txn) == 0 {
            return Ok(Vec::new());
        }
        Ok(self
            .range(txn, Some((key, true)), Some((key, true)), false, None)?
            .into_iter()
            .map(|(_, rid)| rid)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_codec_roundtrip() {
        let mut page = vec![0u8; PAGE_SIZE];
        let leaf = Node::Leaf {
            next: Some(7),
            entries: vec![
                (vec![Value::Int(1)], RowId::new(0, 0)),
                (vec![Value::from("abc")], RowId::new(3, 9)),
            ],
        };
        encode_node(&leaf, &mut page);
        assert_eq!(decode_node(&page).unwrap(), leaf);

        let internal = Node::Internal {
            keys: vec![(vec![Value::Int(5)], RowId::new(1, 1))],
            children: vec![2, 3],
        };
        encode_node(&internal, &mut page);
        assert_eq!(decode_node(&page).unwrap(), internal);

        let meta = Node::Meta { root: 42 };
        encode_node(&meta, &mut page);
        assert_eq!(decode_node(&page).unwrap(), meta);
    }

    #[test]
    fn leaf_next_none_roundtrip() {
        let mut page = vec![0u8; PAGE_SIZE];
        let leaf = Node::Leaf { next: None, entries: vec![] };
        encode_node(&leaf, &mut page);
        assert_eq!(decode_node(&page).unwrap(), leaf);
    }

    #[test]
    fn bad_node_type_errors() {
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 77;
        assert!(decode_node(&page).is_err());
    }

    #[test]
    fn entry_ordering() {
        let a: Entry = (vec![Value::Int(1)], RowId::new(0, 0));
        let b: Entry = (vec![Value::Int(1)], RowId::new(0, 1));
        let c: Entry = (vec![Value::Int(2)], RowId::new(0, 0));
        assert_eq!(cmp_entry(&a, &b), Ordering::Less);
        assert_eq!(cmp_entry(&b, &c), Ordering::Less);
        assert_eq!(cmp_entry(&a, &a), Ordering::Equal);
    }

    #[test]
    fn prefix_compare() {
        let key = vec![Value::Int(3), Value::from("x")];
        assert_eq!(prefix_cmp(&key, &[Value::Int(3)]), Ordering::Equal);
        assert_eq!(prefix_cmp(&key, &[Value::Int(2)]), Ordering::Greater);
        assert_eq!(prefix_cmp(&key, &[Value::Int(3), Value::from("y")]), Ordering::Less);
    }
}
