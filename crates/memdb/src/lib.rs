//! # dmv-memdb
//!
//! The in-memory, page-based database engine — this reproduction's
//! analogue of the paper's `REPLICATED_HEAP` storage manager (MySQL heap
//! tables made transactional with undo/redo at page granularity).
//!
//! * rows live in slotted **heap pages**; every index is a **page-based
//!   B+Tree**, so index maintenance is page modification and replicates
//!   exactly like row data ("replication is implemented at the level of
//!   physical memory modifications performed by the storage manager");
//! * update transactions use **per-page two-phase locking** with
//!   timeout-based deadlock resolution ([`lock::LockManager`]);
//! * at pre-commit a transaction produces its **write-set**: one byte
//!   diff per dirty page ([`txn::Txn::precommit`]), which the replication
//!   layer versions and broadcasts;
//! * read-only transactions carry a **version tag** and read through a
//!   pluggable [`ReadGate`] that lazily materializes the tagged version
//!   of each page (implemented by `dmv-core`'s pending-update applier).
//!
//! ```
//! use dmv_memdb::{MemDb, MemDbOptions};
//! use dmv_sql::{Schema, TableSchema, Column, ColType, IndexDef, Query, execute};
//! use dmv_common::ids::TableId;
//!
//! # fn main() -> Result<(), dmv_common::DmvError> {
//! let schema = Schema::new(vec![TableSchema::new(
//!     TableId(0), "kv",
//!     vec![Column::new("k", ColType::Int), Column::new("v", ColType::Str)],
//!     vec![IndexDef::unique("pk", vec![0])],
//! )]);
//! let db = MemDb::new(schema, MemDbOptions::default());
//! let mut txn = db.begin_update();
//! execute(&mut txn, &Query::Insert { table: TableId(0), rows: vec![vec![1.into(), "x".into()]] })?;
//! let diffs = txn.precommit();
//! assert!(!diffs.is_empty());
//! txn.commit(None);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod engine;
pub mod heap;
pub mod index;
pub mod lock;
pub mod txn;

pub use engine::{MemDb, MemDbOptions, NoopGate, ReadGate};
pub use lock::{LockManager, LockMode};
pub use txn::{Txn, TxnMode};
