//! Per-page two-phase-locking lock manager.
//!
//! The master database "decides the order of execution of write
//! transactions ... based on its internal two-phase-locking per-page
//! concurrency control" (paper §2.1). Shared/exclusive page locks are
//! held until commit; conflicts wait with a timeout, and a timed-out
//! waiter aborts with [`DmvError::Deadlock`] — the simple deadlock
//! resolution the retry-based TPC-W client tolerates well.

use dmv_common::clock::wall_deadline;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{PageId, TxnId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::Duration;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; incompatible with everything.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockEntry {
    /// Holders and their modes. Invariant: at most one exclusive holder,
    /// and an exclusive holder is the only holder.
    holders: Vec<(TxnId, LockMode)>,
}

impl LockEntry {
    fn can_grant(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => {
                self.holders.iter().all(|(t, m)| *t == txn || *m == LockMode::Shared)
            }
            LockMode::Exclusive => self.holders.iter().all(|(t, _)| *t == txn),
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        if let Some(h) = self.holders.iter_mut().find(|(t, _)| *t == txn) {
            // Upgrade (or redundant re-grant).
            if mode == LockMode::Exclusive {
                h.1 = LockMode::Exclusive;
            }
        } else {
            self.holders.push((txn, mode));
        }
    }
}

/// Table of page locks with blocking acquisition.
#[derive(Debug)]
pub struct LockManager {
    entries: Mutex<HashMap<PageId, LockEntry>>,
    released: Condvar,
    timeout: Duration,
}

impl LockManager {
    /// Creates a lock manager whose waits time out (and abort the waiter)
    /// after `timeout` of wall time.
    pub fn new(timeout: Duration) -> Self {
        LockManager { entries: Mutex::new(HashMap::new()), released: Condvar::new(), timeout }
    }

    /// Acquires (or upgrades to) `mode` on `page` for `txn`, blocking
    /// until compatible.
    ///
    /// # Errors
    ///
    /// Returns [`DmvError::Deadlock`] if the wait exceeds the configured
    /// timeout; the caller is expected to abort the transaction.
    pub fn acquire(&self, txn: TxnId, page: PageId, mode: LockMode) -> DmvResult<()> {
        let deadline = wall_deadline(self.timeout);
        let mut entries = self.entries.lock();
        loop {
            let entry = entries.entry(page).or_default();
            if entry.can_grant(txn, mode) {
                entry.grant(txn, mode);
                return Ok(());
            }
            if self.released.wait_until(&mut entries, deadline).timed_out() {
                return Err(DmvError::Deadlock(txn));
            }
        }
    }

    /// Releases every lock held by `txn` and wakes waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut entries = self.entries.lock();
        entries.retain(|_, e| {
            e.holders.retain(|(t, _)| *t != txn);
            !e.holders.is_empty()
        });
        drop(entries);
        self.released.notify_all();
    }

    /// The mode `txn` currently holds on `page`, if any.
    pub fn held(&self, txn: TxnId, page: PageId) -> Option<LockMode> {
        self.entries
            .lock()
            .get(&page)
            .and_then(|e| e.holders.iter().find(|(t, _)| *t == txn).map(|(_, m)| *m))
    }

    /// Number of pages with at least one holder (diagnostics).
    pub fn locked_pages(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::ids::{NodeId, TableId};
    use std::sync::Arc;

    fn page(n: u32) -> PageId {
        PageId::heap(TableId(0), n)
    }

    fn txn(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    fn mgr() -> LockManager {
        LockManager::new(Duration::from_millis(50))
    }

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.acquire(txn(1), page(0), LockMode::Shared).unwrap();
        m.acquire(txn(2), page(0), LockMode::Shared).unwrap();
        assert_eq!(m.held(txn(1), page(0)), Some(LockMode::Shared));
        assert_eq!(m.held(txn(2), page(0)), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_and_times_out() {
        let m = mgr();
        m.acquire(txn(1), page(0), LockMode::Exclusive).unwrap();
        let err = m.acquire(txn(2), page(0), LockMode::Shared).unwrap_err();
        assert_eq!(err, DmvError::Deadlock(txn(2)));
    }

    #[test]
    fn release_unblocks_waiter() {
        let m = Arc::new(LockManager::new(Duration::from_secs(5)));
        m.acquire(txn(1), page(0), LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.acquire(txn(2), page(0), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(20));
        m.release_all(txn(1));
        h.join().unwrap().unwrap();
        assert_eq!(m.held(txn(2), page(0)), Some(LockMode::Exclusive));
    }

    #[test]
    fn reentrant_and_upgrade() {
        let m = mgr();
        m.acquire(txn(1), page(0), LockMode::Shared).unwrap();
        m.acquire(txn(1), page(0), LockMode::Shared).unwrap();
        m.acquire(txn(1), page(0), LockMode::Exclusive).unwrap();
        assert_eq!(m.held(txn(1), page(0)), Some(LockMode::Exclusive));
        // downgrade requests are no-ops
        m.acquire(txn(1), page(0), LockMode::Shared).unwrap();
        assert_eq!(m.held(txn(1), page(0)), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let m = mgr();
        m.acquire(txn(1), page(0), LockMode::Shared).unwrap();
        m.acquire(txn(2), page(0), LockMode::Shared).unwrap();
        assert!(m.acquire(txn(1), page(0), LockMode::Exclusive).is_err());
    }

    #[test]
    fn release_all_clears_everything() {
        let m = mgr();
        m.acquire(txn(1), page(0), LockMode::Exclusive).unwrap();
        m.acquire(txn(1), page(1), LockMode::Shared).unwrap();
        assert_eq!(m.locked_pages(), 2);
        m.release_all(txn(1));
        assert_eq!(m.locked_pages(), 0);
        assert_eq!(m.held(txn(1), page(0)), None);
    }

    #[test]
    fn independent_pages_do_not_conflict() {
        let m = mgr();
        m.acquire(txn(1), page(0), LockMode::Exclusive).unwrap();
        m.acquire(txn(2), page(1), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn contention_many_threads_serialize() {
        let m = Arc::new(LockManager::new(Duration::from_secs(10)));
        let counter = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let m = Arc::clone(&m);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    m.acquire(txn(i), page(0), LockMode::Exclusive).unwrap();
                    {
                        let mut c = counter.lock();
                        *c += 1;
                    }
                    m.release_all(txn(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 160);
    }
}
