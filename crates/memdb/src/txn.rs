//! Transactions: per-page 2PL on masters, tagged lazy-version reads on
//! slaves, undo/redo at page granularity, and write-set capture.
//!
//! The commit protocol follows the paper's Figure 2:
//!
//! 1. [`Txn::precommit`] computes the write-set (per-page byte diffs of
//!    every dirty page) while all page locks are still held;
//! 2. the replication layer increments the database version vector,
//!    broadcasts the write-set and waits for acknowledgements;
//! 3. [`Txn::commit`] stamps the dirty pages with their new table
//!    versions, clears undo state and releases all locks.
//!
//! [`Txn::abort`] restores the before-image of every dirty page.

use crate::engine::MemDb;
use crate::heap;
use crate::index::BTreeIndex;
use crate::lock::LockMode;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{PageId, PageSpace, RowId, TableId, TxnId};
use dmv_common::version::VersionVector;
use dmv_pagestore::diff::PageDiff;
use dmv_sql::exec::ExecContext;
use dmv_sql::row::Row;
use dmv_sql::schema::Schema;
use dmv_sql::value::Value;
use std::collections::HashMap;

/// What kind of transaction this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnMode {
    /// Update transaction under per-page two-phase locking.
    Update,
    /// Read-only transaction reading the tagged database version through
    /// the engine's [`crate::ReadGate`].
    ReadTagged(VersionVector),
    /// Untagged latched reads (stand-alone use).
    ReadLocal,
}

/// An open transaction on a [`MemDb`].
///
/// Dropping an unfinished transaction aborts it.
pub struct Txn<'db> {
    db: &'db MemDb,
    id: TxnId,
    mode: TxnMode,
    undo: HashMap<PageId, Vec<u8>>,
    dirty_order: Vec<PageId>,
    cpu_owed: std::time::Duration,
    write_intent: bool,
    finished: bool,
}

impl<'db> Txn<'db> {
    pub(crate) fn new(db: &'db MemDb, id: TxnId, mode: TxnMode) -> Self {
        Txn {
            db,
            id,
            mode,
            undo: HashMap::new(),
            dirty_order: Vec::new(),
            cpu_owed: std::time::Duration::ZERO,
            write_intent: false,
            finished: false,
        }
    }

    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The transaction mode.
    pub fn mode(&self) -> &TxnMode {
        &self.mode
    }

    /// The engine this transaction runs on.
    pub fn db(&self) -> &'db MemDb {
        self.db
    }

    /// Reads page `id` under the mode's consistency protocol and applies
    /// `f` to its bytes.
    ///
    /// # Errors
    ///
    /// `Deadlock` on lock timeout (update mode), `VersionConflict` if the
    /// page cannot serve the transaction's tag (tagged mode), `Storage`
    /// if the page does not exist.
    pub(crate) fn read_page<R>(&mut self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> DmvResult<R> {
        match &self.mode {
            TxnMode::Update => {
                // Under declared write intent, heap/index pages are
                // locked exclusively up front: S→X upgrades between two
                // updaters of the same page would deadlock every time.
                let mode = if self.write_intent { LockMode::Exclusive } else { LockMode::Shared };
                self.db.locks().acquire(self.id, id, mode)?;
                let cell = self
                    .db
                    .store()
                    .get(id)
                    .ok_or_else(|| DmvError::Storage(format!("missing page {id}")))?;
                self.db.store().fault_in(&cell);
                let page = cell.latch.read();
                Ok(f(page.data()))
            }
            TxnMode::ReadTagged(tag) => {
                let tag = tag.clone();
                let cell = self.db.store().get_or_create(id);
                self.db.store().fault_in(&cell);
                self.db.gate().prepare_read(id, &cell, &tag)?;
                let page = cell.latch.read();
                // Re-check under the read latch: a concurrent reader with
                // a higher tag may have upgraded the page after the gate
                // returned (the paper's abort case).
                let want = tag.get(id.table);
                if page.version > want {
                    return Err(DmvError::VersionConflict {
                        page: id,
                        wanted: want,
                        found: page.version,
                    });
                }
                Ok(f(page.data()))
            }
            TxnMode::ReadLocal => {
                let cell = self
                    .db
                    .store()
                    .get(id)
                    .ok_or_else(|| DmvError::Storage(format!("missing page {id}")))?;
                self.db.store().fault_in(&cell);
                let page = cell.latch.read();
                Ok(f(page.data()))
            }
        }
    }

    /// Writes page `id` under an exclusive lock, capturing the undo image
    /// on first touch.
    ///
    /// # Errors
    ///
    /// `InvalidTxnState` outside update mode; `Deadlock` on lock timeout.
    pub(crate) fn write_page<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> DmvResult<R> {
        if self.mode != TxnMode::Update {
            return Err(DmvError::InvalidTxnState("writes require an update transaction".into()));
        }
        self.db.locks().acquire(self.id, id, LockMode::Exclusive)?;
        let cell = self
            .db
            .store()
            .get(id)
            .ok_or_else(|| DmvError::Storage(format!("missing page {id}")))?;
        self.db.store().fault_in(&cell);
        let mut page = cell.latch.write();
        if let std::collections::hash_map::Entry::Vacant(e) = self.undo.entry(id) {
            e.insert(page.data().to_vec());
            self.dirty_order.push(id);
            cell.set_dirty(true);
        }
        Ok(f(page.data_mut()))
    }

    /// Peeks at page bytes under the latch only — no 2PL lock, no
    /// version materialization. Used as a *hint* (e.g. free-space checks
    /// before choosing an insert target); any decision taken from a peek
    /// must be revalidated under a real lock.
    pub(crate) fn peek_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let cell = self.db.store().get(id)?;
        let page = cell.latch.read();
        Some(f(page.data()))
    }

    /// Allocates a fresh page (update mode only) already exclusive-locked
    /// and tracked for undo.
    pub(crate) fn allocate_page(&mut self, table: TableId, space: PageSpace) -> DmvResult<PageId> {
        if self.mode != TxnMode::Update {
            return Err(DmvError::InvalidTxnState(
                "allocation requires an update transaction".into(),
            ));
        }
        let (id, cell) = self.db.store().allocate(table, space);
        self.db.locks().acquire(self.id, id, LockMode::Exclusive)?;
        let page = cell.latch.read();
        self.undo.insert(id, page.data().to_vec());
        drop(page);
        self.dirty_order.push(id);
        cell.set_dirty(true);
        Ok(id)
    }

    /// Accrues CPU cost, to be settled in one charge at the next
    /// statement boundary (thousands of microsecond-scale charges per
    /// query would drown in OS timer overhead).
    fn owe(&mut self, d: std::time::Duration) {
        self.cpu_owed += d;
    }

    fn settle_cpu(&mut self) {
        let owed = std::mem::take(&mut self.cpu_owed);
        self.db.charge_duration(owed);
    }

    /// Number of heap pages of `table` this transaction can see.
    pub(crate) fn heap_page_count(&self, table: TableId) -> u32 {
        self.db.store().allocated_count(table, PageSpace::Heap)
    }

    /// True if the transaction has modified any page.
    pub fn has_writes(&self) -> bool {
        !self.dirty_order.is_empty()
    }

    /// Tables with at least one dirty page — the write-set's table set,
    /// whose version-vector entries the master increments at commit.
    pub fn write_tables(&self) -> Vec<TableId> {
        let mut v: Vec<TableId> = self.dirty_order.iter().map(|p| p.table).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Computes the write-set: one byte diff per dirty page, in first-
    /// write order. Locks remain held; the transaction can still abort.
    pub fn precommit(&mut self) -> Vec<(PageId, PageDiff)> {
        let mut out = Vec::with_capacity(self.dirty_order.len());
        for &id in &self.dirty_order {
            let Some(cell) = self.db.store().get(id) else { continue };
            let page = cell.latch.read();
            let diff = PageDiff::compute(&self.undo[&id], page.data());
            if !diff.is_empty() {
                out.push((id, diff));
            }
        }
        out
    }

    /// Commits: stamps dirty pages with their new table versions (when
    /// the replication layer assigned any), clears dirty flags and undo
    /// state, and releases all locks.
    pub fn commit(mut self, versions: Option<&VersionVector>) {
        self.settle_cpu();
        for &id in &self.dirty_order {
            if let Some(cell) = self.db.store().get(id) {
                if let Some(vv) = versions {
                    cell.latch.write().version = vv.get(id.table);
                }
                cell.set_dirty(false);
            }
        }
        self.undo.clear();
        self.dirty_order.clear();
        self.db.locks().release_all(self.id);
        self.finished = true;
    }

    /// Aborts: restores every dirty page's before-image and releases all
    /// locks.
    pub fn abort(mut self) {
        self.rollback_inner();
    }

    fn rollback_inner(&mut self) {
        self.settle_cpu();
        for &id in &self.dirty_order {
            if let Some(cell) = self.db.store().get(id) {
                let mut page = cell.latch.write();
                if let Some(before) = self.undo.get(&id) {
                    page.data_mut().copy_from_slice(before);
                }
                drop(page);
                cell.set_dirty(false);
            }
        }
        self.undo.clear();
        self.dirty_order.clear();
        self.db.locks().release_all(self.id);
        self.finished = true;
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback_inner();
        }
    }
}

impl std::fmt::Debug for Txn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("dirty_pages", &self.dirty_order.len())
            .finish()
    }
}

impl ExecContext for Txn<'_> {
    fn schema(&self) -> &Schema {
        self.db.schema()
    }

    fn scan(&mut self, table: TableId) -> DmvResult<Vec<(RowId, Row)>> {
        let rows = heap::scan(self, table)?;
        self.owe(self.db.cost_scan(rows.len()));
        Ok(rows)
    }

    fn index_lookup(
        &mut self,
        table: TableId,
        index_no: u8,
        key: &[Value],
    ) -> DmvResult<Vec<(RowId, Row)>> {
        self.owe(self.db.cost_probe());
        let ix = BTreeIndex::new(table, index_no);
        let rids = ix.lookup_eq(self, key)?;
        let mut out = Vec::with_capacity(rids.len());
        for rid in rids {
            if let Some(row) = heap::read(self, table, rid)? {
                out.push((rid, row));
            }
        }
        self.owe(self.db.cost_scan(out.len()));
        Ok(out)
    }

    fn index_range(
        &mut self,
        table: TableId,
        index_no: u8,
        lo: Option<(&[Value], bool)>,
        hi: Option<(&[Value], bool)>,
        rev: bool,
        limit: Option<usize>,
    ) -> DmvResult<Vec<(RowId, Row)>> {
        self.owe(self.db.cost_probe());
        let ix = BTreeIndex::new(table, index_no);
        let entries = ix.range(self, lo, hi, rev, limit)?;
        let mut out = Vec::with_capacity(entries.len());
        for (_, rid) in entries {
            if let Some(row) = heap::read(self, table, rid)? {
                out.push((rid, row));
            }
        }
        self.owe(self.db.cost_scan(out.len()));
        Ok(out)
    }

    fn insert(&mut self, table: TableId, row: Row) -> DmvResult<RowId> {
        // The whole write path (unique probes, index descents, heap
        // insert) runs under write intent: probing a leaf with S and
        // then upgrading to X deadlocks against a concurrent inserter.
        let prev = self.write_intent;
        self.write_intent = true;
        let out = self.insert_inner(table, row);
        self.write_intent = prev;
        out
    }

    fn update(&mut self, table: TableId, rid: RowId, row: Row) -> DmvResult<()> {
        let prev = self.write_intent;
        self.write_intent = true;
        let out = self.update_inner(table, rid, row);
        self.write_intent = prev;
        out
    }

    fn delete(&mut self, table: TableId, rid: RowId) -> DmvResult<()> {
        let prev = self.write_intent;
        self.write_intent = true;
        let out = self.delete_inner(table, rid);
        self.write_intent = prev;
        out
    }

    fn flush_costs(&mut self) {
        self.settle_cpu();
    }

    fn set_write_intent(&mut self, on: bool) {
        self.write_intent = on;
    }
}

impl Txn<'_> {
    fn insert_inner(&mut self, table: TableId, row: Row) -> DmvResult<RowId> {
        let ts = self.db.schema().table(table)?.clone();
        // Unique checks before any mutation, so a duplicate leaves no
        // trace even within this transaction.
        for (ix_no, ix) in ts.indexes.iter().enumerate() {
            if ix.unique {
                let key = ix.key_of(&row);
                let hits = BTreeIndex::new(table, ix_no as u8).lookup_eq(self, &key)?;
                if !hits.is_empty() {
                    return Err(DmvError::DuplicateKey(format!("{} on {}", ix.name, ts.name)));
                }
            }
        }
        let rid = heap::insert(self, table, &row)?;
        for (ix_no, ix) in ts.indexes.iter().enumerate() {
            BTreeIndex::new(table, ix_no as u8).insert(self, &ix.key_of(&row), rid)?;
        }
        self.owe(self.db.cost_write(1));
        Ok(rid)
    }

    fn update_inner(&mut self, table: TableId, rid: RowId, row: Row) -> DmvResult<()> {
        let ts = self.db.schema().table(table)?.clone();
        let old = heap::read(self, table, rid)?
            .ok_or_else(|| DmvError::NotFound(format!("row {rid} in {}", ts.name)))?;
        // Unique checks for keys that change.
        for (ix_no, ix) in ts.indexes.iter().enumerate() {
            if ix.unique {
                let new_key = ix.key_of(&row);
                if new_key != ix.key_of(&old) {
                    let hits = BTreeIndex::new(table, ix_no as u8).lookup_eq(self, &new_key)?;
                    if !hits.is_empty() {
                        return Err(DmvError::DuplicateKey(format!("{} on {}", ix.name, ts.name)));
                    }
                }
            }
        }
        let new_rid = heap::update(self, table, rid, &row)?;
        for (ix_no, ix) in ts.indexes.iter().enumerate() {
            let btree = BTreeIndex::new(table, ix_no as u8);
            let old_key = ix.key_of(&old);
            let new_key = ix.key_of(&row);
            if old_key != new_key || new_rid != rid {
                btree.delete(self, &old_key, rid)?;
                btree.insert(self, &new_key, new_rid)?;
            }
        }
        self.owe(self.db.cost_write(1));
        Ok(())
    }

    fn delete_inner(&mut self, table: TableId, rid: RowId) -> DmvResult<()> {
        let ts = self.db.schema().table(table)?.clone();
        let old = heap::read(self, table, rid)?
            .ok_or_else(|| DmvError::NotFound(format!("row {rid} in {}", ts.name)))?;
        heap::delete(self, table, rid)?;
        for (ix_no, ix) in ts.indexes.iter().enumerate() {
            BTreeIndex::new(table, ix_no as u8).delete(self, &ix.key_of(&old), rid)?;
        }
        self.owe(self.db.cost_write(1));
        Ok(())
    }
}
