//! Engine-level tests for dmv-memdb: executor integration, transaction
//! semantics (commit/abort/undo), B+Tree behaviour under load, and the
//! replica-convergence property that the replication layer relies on:
//! applying a transaction's captured write-set to a second store yields
//! bit-identical pages.

use dmv_common::error::DmvError;
use dmv_common::ids::{NodeId, TableId};
use dmv_common::version::VersionVector;
use dmv_memdb::{MemDb, MemDbOptions};
use dmv_pagestore::PageStore;
use dmv_sql::exec::{execute, ExecContext};
use dmv_sql::query::{Access, AggFn, Expr, Join, Query, Select, SetExpr};
use dmv_sql::schema::{ColType, Column, IndexDef, Schema, TableSchema};
use dmv_sql::value::Value;
use rand::prelude::*;
use std::sync::Arc;

fn kv_schema() -> Schema {
    Schema::new(vec![TableSchema::new(
        TableId(0),
        "kv",
        vec![
            Column::new("k", ColType::Int),
            Column::new("v", ColType::Str),
            Column::new("n", ColType::Int),
        ],
        vec![IndexDef::unique("pk", vec![0]), IndexDef::non_unique("by_n", vec![2])],
    )])
}

fn two_table_schema() -> Schema {
    Schema::new(vec![
        TableSchema::new(
            TableId(0),
            "item",
            vec![
                Column::new("i_id", ColType::Int),
                Column::new("i_title", ColType::Str),
                Column::new("i_a_id", ColType::Int),
            ],
            vec![IndexDef::unique("pk", vec![0]), IndexDef::non_unique("by_a", vec![2])],
        ),
        TableSchema::new(
            TableId(1),
            "author",
            vec![Column::new("a_id", ColType::Int), Column::new("a_name", ColType::Str)],
            vec![IndexDef::unique("pk", vec![0])],
        ),
    ])
}

fn insert_kv(db: &MemDb, k: i64, v: &str, n: i64) {
    let mut txn = db.begin_update();
    execute(
        &mut txn,
        &Query::Insert { table: TableId(0), rows: vec![vec![k.into(), v.into(), n.into()]] },
    )
    .unwrap();
    txn.commit(None);
}

#[test]
fn insert_commit_read_back() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    insert_kv(&db, 1, "one", 10);
    insert_kv(&db, 2, "two", 20);
    let mut r = db.begin_read_local();
    let rs = execute(&mut r, &Query::Select(Select::by_pk(TableId(0), vec![2.into()]))).unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][1], Value::from("two"));
}

#[test]
fn abort_restores_everything() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    insert_kv(&db, 1, "one", 10);
    let before: Vec<u8> = {
        let store = db.store();
        let ids = store.page_ids();
        let mut images: Vec<(String, Vec<u8>)> = ids
            .iter()
            .map(|id| (format!("{id}"), store.get(*id).unwrap().latch.read().to_image()))
            .collect();
        images.sort();
        images.into_iter().flat_map(|(_, img)| img).collect()
    };
    let mut txn = db.begin_update();
    execute(
        &mut txn,
        &Query::Insert { table: TableId(0), rows: vec![vec![9.into(), "nine".into(), 90.into()]] },
    )
    .unwrap();
    execute(
        &mut txn,
        &Query::Update {
            table: TableId(0),
            access: Access::Auto,
            filter: Some(Expr::eq(0, 1)),
            set: vec![(1, SetExpr::Value("mutated".into()))],
        },
    )
    .unwrap();
    txn.abort();
    let after: Vec<u8> = {
        let store = db.store();
        let ids = store.page_ids();
        let mut images: Vec<(String, Vec<u8>)> = ids
            .iter()
            .map(|id| (format!("{id}"), store.get(*id).unwrap().latch.read().to_image()))
            .collect();
        images.sort();
        images.into_iter().flat_map(|(_, img)| img).collect()
    };
    // Aborted allocations may leave zeroed pages behind, but all pre-
    // existing bytes must be restored. Compare the common prefix pages.
    assert!(after.len() >= before.len());
    // logical check: the data is exactly what it was
    let mut r = db.begin_read_local();
    let rs = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][1], Value::from("one"));
}

#[test]
fn drop_without_commit_aborts() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    insert_kv(&db, 1, "one", 10);
    {
        let mut txn = db.begin_update();
        execute(&mut txn, &Query::Delete { table: TableId(0), access: Access::Auto, filter: None })
            .unwrap();
        // dropped here without commit
    }
    let mut r = db.begin_read_local();
    let rs = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap();
    assert_eq!(rs.rows.len(), 1, "drop must roll back");
}

#[test]
fn duplicate_key_rejected_and_clean() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    insert_kv(&db, 1, "one", 10);
    let mut txn = db.begin_update();
    let err = execute(
        &mut txn,
        &Query::Insert { table: TableId(0), rows: vec![vec![1.into(), "dup".into(), 0.into()]] },
    )
    .unwrap_err();
    assert!(matches!(err, DmvError::DuplicateKey(_)));
    txn.abort();
    let mut r = db.begin_read_local();
    let rs = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn update_maintains_secondary_index() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    insert_kv(&db, 1, "one", 10);
    insert_kv(&db, 2, "two", 10);
    let mut txn = db.begin_update();
    execute(
        &mut txn,
        &Query::Update {
            table: TableId(0),
            access: Access::Auto,
            filter: Some(Expr::eq(0, 1)),
            set: vec![(2, SetExpr::Value(Value::Int(99)))],
        },
    )
    .unwrap();
    txn.commit(None);
    let mut r = db.begin_read_local();
    // lookup via secondary index must reflect the move
    let hits10 = r.index_lookup(TableId(0), 1, &[Value::Int(10)]).unwrap();
    let hits99 = r.index_lookup(TableId(0), 1, &[Value::Int(99)]).unwrap();
    assert_eq!(hits10.len(), 1);
    assert_eq!(hits99.len(), 1);
    assert_eq!(hits99[0].1[0], Value::Int(1));
}

#[test]
fn delete_removes_from_indexes() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    for i in 0..10 {
        insert_kv(&db, i, "x", i % 3);
    }
    let mut txn = db.begin_update();
    execute(
        &mut txn,
        &Query::Delete { table: TableId(0), access: Access::Auto, filter: Some(Expr::eq(2, 0)) },
    )
    .unwrap();
    txn.commit(None);
    let mut r = db.begin_read_local();
    assert_eq!(r.index_lookup(TableId(0), 1, &[Value::Int(0)]).unwrap().len(), 0);
    let rs = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap();
    assert_eq!(rs.rows.len(), 6);
}

#[test]
fn btree_survives_many_inserts_with_splits() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    let n = 3000i64;
    // interleave to exercise splits at both ends and middles
    let mut keys: Vec<i64> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(7);
    keys.shuffle(&mut rng);
    let mut txn = db.begin_update();
    for &k in &keys {
        txn.insert(TableId(0), vec![k.into(), format!("value-{k}").into(), (k % 17).into()])
            .unwrap();
    }
    txn.commit(None);

    let mut r = db.begin_read_local();
    // every key findable
    for k in [0i64, 1, n / 2, n - 1] {
        let hits = r.index_lookup(TableId(0), 0, &[Value::Int(k)]).unwrap();
        assert_eq!(hits.len(), 1, "key {k}");
    }
    // range scan ordered
    let rows = r
        .index_range(
            TableId(0),
            0,
            Some((&[Value::Int(100)], true)),
            Some((&[Value::Int(200)], true)),
            false,
            None,
        )
        .unwrap();
    assert_eq!(rows.len(), 101);
    let got: Vec<i64> = rows.iter().map(|(_, r)| r[0].as_int().unwrap()).collect();
    let want: Vec<i64> = (100..=200).collect();
    assert_eq!(got, want);
    // reverse with limit
    let rows = r.index_range(TableId(0), 0, None, None, true, Some(5)).unwrap();
    let got: Vec<i64> = rows.iter().map(|(_, r)| r[0].as_int().unwrap()).collect();
    assert_eq!(got, vec![n - 1, n - 2, n - 3, n - 4, n - 5]);
    // secondary index group counts
    let hits = r.index_lookup(TableId(0), 1, &[Value::Int(3)]).unwrap();
    assert_eq!(hits.len() as i64, (0..n).filter(|k| k % 17 == 3).count() as i64);
}

#[test]
fn non_unique_index_handles_duplicate_keys() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    let mut txn = db.begin_update();
    for k in 0..500i64 {
        txn.insert(TableId(0), vec![k.into(), "same".into(), 7.into()]).unwrap();
    }
    txn.commit(None);
    let mut r = db.begin_read_local();
    let hits = r.index_lookup(TableId(0), 1, &[Value::Int(7)]).unwrap();
    assert_eq!(hits.len(), 500);
}

#[test]
fn join_and_aggregate_through_engine() {
    let db = MemDb::new(two_table_schema(), MemDbOptions::default());
    let mut txn = db.begin_update();
    txn.insert(TableId(1), vec![1.into(), "Gray".into()]).unwrap();
    txn.insert(TableId(1), vec![2.into(), "Reuter".into()]).unwrap();
    for i in 0..20i64 {
        txn.insert(TableId(0), vec![i.into(), format!("book{i}").into(), (1 + i % 2).into()])
            .unwrap();
    }
    txn.commit(None);
    let mut r = db.begin_read_local();
    let q = Query::Select(
        Select::scan(TableId(0))
            .join(Join { table: TableId(1), left_col: 2, right_col: 0, right_index: Some(0) })
            .group(vec![4], vec![AggFn::Count])
            .order_by(1, true),
    );
    let rs = execute(&mut r, &q).unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][1], Value::Int(10));
}

/// The property the replication layer depends on: applying the write-set
/// diffs (in commit order) to a second page store reproduces the master's
/// pages bit for bit.
#[test]
fn write_set_application_converges_bitwise() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    let replica = PageStore::new_free();
    let mut rng = StdRng::seed_from_u64(42);
    let mut version = VersionVector::new(1);

    for round in 0..40 {
        let mut txn = db.begin_update();
        // random batch of operations
        for _ in 0..rng.gen_range(1..10) {
            let k: i64 = rng.gen_range(0..200);
            match rng.gen_range(0..3) {
                0 => {
                    let _ = txn.insert(
                        TableId(0),
                        vec![k.into(), format!("r{round}k{k}").into(), (k % 5).into()],
                    );
                }
                1 => {
                    let hit = txn.index_lookup(TableId(0), 0, &[Value::Int(k)]).unwrap();
                    if let Some((rid, mut row)) = hit.into_iter().next() {
                        row[1] = format!("upd{round}").into();
                        txn.update(TableId(0), rid, row).unwrap();
                    }
                }
                _ => {
                    let hit = txn.index_lookup(TableId(0), 0, &[Value::Int(k)]).unwrap();
                    if let Some((rid, _)) = hit.into_iter().next() {
                        txn.delete(TableId(0), rid).unwrap();
                    }
                }
            }
        }
        let diffs = txn.precommit();
        version.bump(TableId(0));
        // apply to replica in order
        for (id, diff) in &diffs {
            let cell = replica.get_or_create(*id);
            let mut page = cell.latch.write();
            diff.apply(page.data_mut());
            page.version = version.get(TableId(0));
        }
        txn.commit(Some(&version));
    }

    // compare every page
    let master_store = db.store();
    let mut ids = master_store.page_ids();
    ids.sort();
    assert!(!ids.is_empty());
    for id in ids {
        let m = master_store.get(id).unwrap();
        let r = replica.get(id).unwrap_or_else(|| panic!("replica missing page {id}"));
        let mi = m.latch.read();
        let ri = r.latch.read();
        assert_eq!(mi.data(), ri.data(), "page {id} diverged");
    }
}

#[test]
fn tagged_read_sees_exact_version_or_conflicts() {
    // Without a replication gate, a tagged read on the master's own store
    // must succeed when the tag matches and conflict when it is behind.
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    let mut v = VersionVector::new(1);
    // commit version 1
    let mut txn = db.begin_update();
    txn.insert(TableId(0), vec![1.into(), "a".into(), 0.into()]).unwrap();
    txn.precommit();
    v.bump(TableId(0));
    txn.commit(Some(&v));
    // commit version 2
    let mut txn = db.begin_update();
    txn.insert(TableId(0), vec![2.into(), "b".into(), 0.into()]).unwrap();
    txn.precommit();
    v.bump(TableId(0));
    txn.commit(Some(&v));

    // tag = current version: fine
    let mut r = db.begin_read_tagged(v.clone());
    let rs = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap();
    assert_eq!(rs.rows.len(), 2);

    // stale tag (version 1): pages are already at version 2 -> conflict
    let mut stale = VersionVector::new(1);
    stale.bump(TableId(0));
    let mut r = db.begin_read_tagged(stale);
    let err = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap_err();
    assert!(matches!(err, DmvError::VersionConflict { .. }), "got {err:?}");
}

#[test]
fn concurrent_writers_disjoint_keys_commit() {
    let db = Arc::new(MemDb::new(kv_schema(), MemDbOptions::default()));
    // seed enough rows that pages exist
    for i in 0..50 {
        insert_kv(&db, i, "seed", 0);
    }
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut committed = 0;
            for i in 0..25i64 {
                let k = 1000 + t * 100 + i;
                let mut txn = db.begin_update();
                let res =
                    txn.insert(TableId(0), vec![k.into(), format!("w{t}").into(), (k % 7).into()]);
                match res {
                    Ok(_) => {
                        txn.precommit();
                        txn.commit(None);
                        committed += 1;
                    }
                    Err(e) if e.is_retryable() => txn.abort(),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            committed
        }));
    }
    let total: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    let mut r = db.begin_read_local();
    let rs = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap();
    assert_eq!(rs.rows.len(), 50 + total as usize);
}

#[test]
fn writes_in_read_mode_rejected() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    insert_kv(&db, 1, "one", 0);
    let mut r = db.begin_read_local();
    let err = r.insert(TableId(0), vec![2.into(), "x".into(), 0.into()]).unwrap_err();
    assert!(matches!(err, DmvError::InvalidTxnState(_)));
}

#[test]
fn write_tables_reports_touched_tables() {
    let db = MemDb::new(two_table_schema(), MemDbOptions::default());
    let mut txn = db.begin_update();
    txn.insert(TableId(1), vec![1.into(), "A".into()]).unwrap();
    assert_eq!(txn.write_tables(), vec![TableId(1)]);
    txn.insert(TableId(0), vec![1.into(), "t".into(), 1.into()]).unwrap();
    assert_eq!(txn.write_tables(), vec![TableId(0), TableId(1)]);
    txn.commit(None);
}

#[test]
fn precommit_empty_for_read_only_update_txn() {
    let db = MemDb::new(kv_schema(), MemDbOptions::default());
    insert_kv(&db, 1, "one", 0);
    let mut txn = db.begin_update();
    let _ = execute(&mut txn, &Query::Select(Select::scan(TableId(0)))).unwrap();
    assert!(txn.precommit().is_empty());
    assert!(!txn.has_writes());
    txn.commit(None);
}

#[test]
fn different_nodes_generate_distinct_txn_ids() {
    let a = MemDb::new(kv_schema(), MemDbOptions { node: NodeId(1), ..Default::default() });
    let b = MemDb::new(kv_schema(), MemDbOptions { node: NodeId(2), ..Default::default() });
    assert_ne!(a.begin_update().id(), b.begin_update().id());
}

/// Regression: two transactions doing read-modify-write on rows of the
/// same page must not deadlock on S→X upgrades — the executor declares
/// write intent, so the locate phase locks exclusively up front.
#[test]
fn concurrent_same_page_updates_do_not_upgrade_deadlock() {
    let db = Arc::new(MemDb::new(kv_schema(), MemDbOptions::default()));
    for i in 0..8 {
        insert_kv(&db, i, "seed", 0);
    }
    let mut handles = Vec::new();
    let deadlocks = Arc::new(std::sync::atomic::AtomicU64::new(0));
    for t in 0..4i64 {
        let db = Arc::clone(&db);
        let deadlocks = Arc::clone(&deadlocks);
        handles.push(std::thread::spawn(move || {
            for i in 0..50i64 {
                loop {
                    let mut txn = db.begin_update();
                    let q = Query::Update {
                        table: TableId(0),
                        access: Access::Auto,
                        filter: Some(Expr::eq(0, (t + i) % 8)),
                        set: vec![(2, SetExpr::AddInt(1))],
                    };
                    match execute(&mut txn, &q) {
                        Ok(_) => {
                            txn.commit(None);
                            break;
                        }
                        Err(DmvError::Deadlock(_)) => {
                            // relaxed-ok: test tally; read after all workers joined
                            deadlocks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            txn.abort();
                        }
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // All 200 increments landed.
    let mut r = db.begin_read_local();
    let rs = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap();
    let total: i64 = rs.rows.iter().map(|row| row[2].as_int().unwrap()).sum();
    assert_eq!(total, 200);
    // Point updates on the same page serialize via immediate X locks;
    // upgrade deadlocks would show up in the hundreds here.
    // relaxed-ok: test tally; read after all workers joined
    let d = deadlocks.load(std::sync::atomic::Ordering::Relaxed);
    assert!(d < 20, "unexpected deadlock storm: {d}");
}

/// Regression: concurrent inserts into the same table (same index
/// leaves) must not deadlock via the unique-probe S→X upgrade.
#[test]
fn concurrent_inserts_do_not_upgrade_deadlock() {
    let db = Arc::new(MemDb::new(kv_schema(), MemDbOptions::default()));
    let deadlocks = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let db = Arc::clone(&db);
        let deadlocks = Arc::clone(&deadlocks);
        handles.push(std::thread::spawn(move || {
            for i in 0..50i64 {
                let k = t * 1000 + i;
                loop {
                    let mut txn = db.begin_update();
                    match txn.insert(TableId(0), vec![k.into(), "w".into(), (k % 3).into()]) {
                        Ok(_) => {
                            txn.commit(None);
                            break;
                        }
                        Err(DmvError::Deadlock(_)) => {
                            // relaxed-ok: test tally; read after all workers joined
                            deadlocks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            txn.abort();
                        }
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut r = db.begin_read_local();
    let rs = execute(&mut r, &Query::Select(Select::scan(TableId(0)))).unwrap();
    assert_eq!(rs.rows.len(), 200);
    // relaxed-ok: test tally; read after all workers joined
    let d = deadlocks.load(std::sync::atomic::Ordering::Relaxed);
    assert!(d < 20, "unexpected deadlock storm: {d}");
}
