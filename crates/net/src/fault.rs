//! [`FaultTransport`]: deterministic fault injection at the transport
//! boundary.
//!
//! Wraps any [`Transport`] and adds *armed crash triggers*: "kill node
//! `n` after its k-th outbound send". When the trigger fires, the k-th
//! message is dropped (it dies with the sender, exactly as a crash
//! mid-`write(2)` would lose it), the node is killed on the inner
//! transport, an optional callback notifies the harness (which marks
//! the replica dead so its own liveness checks observe the crash), and
//! every later send from that node vanishes silently.
//!
//! The canonical use is the paper's hardest failure window: a master
//! crashing *mid-broadcast*, having delivered its write-set to some
//! replicas but not others (§4.2). Counting happens on
//! [`Transport::send_from`] — the path the scheduler and the masters'
//! fan-out use — so with `broadcast` to `t` targets, a trigger of
//! `k ≤ t` splits one commit's propagation exactly at target `k`.
//! Endpoint sends (acks) are not counted.
//!
//! Triggers fire on the thread that performs the send. In a harness
//! that serializes client operations this makes the crash instant a
//! deterministic function of the schedule.

use crate::transport::{Endpoint, Transport};
use dmv_check::sync::Mutex;
use dmv_common::error::DmvResult;
use dmv_common::ids::NodeId;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Callback invoked (once) when an armed trigger kills a node.
pub type OnKill = Box<dyn Fn(NodeId) + Send + Sync>;

struct FaultState {
    /// Remaining `send_from` calls until the node crashes.
    armed: Mutex<HashMap<NodeId, u32>>,
    /// Nodes crashed by a trigger: their output is swallowed.
    crashed: Mutex<HashSet<NodeId>>,
    on_kill: Mutex<Option<OnKill>>,
}

/// A [`Transport`] decorator injecting crash faults at exact send
/// counts. Transparent (pure delegation) while no trigger is armed.
pub struct FaultTransport<M: Clone> {
    inner: Arc<dyn Transport<M>>,
    state: FaultState,
}

impl<M: Clone> FaultTransport<M> {
    /// Wraps `inner`; no triggers armed.
    pub fn new(inner: Arc<dyn Transport<M>>) -> Self {
        FaultTransport {
            inner,
            state: FaultState {
                armed: Mutex::new(HashMap::new()),
                crashed: Mutex::new(HashSet::new()),
                on_kill: Mutex::new(None),
            },
        }
    }

    /// Arms a trigger: `node` crashes on its `after`-th subsequent
    /// `send_from` (that send and all later ones are lost). `after` is
    /// clamped to ≥ 1.
    pub fn kill_after_sends(&self, node: NodeId, after: u32) {
        self.state.armed.lock().insert(node, after.max(1));
    }

    /// Registers the callback run when a trigger fires (e.g. marking
    /// the replica object dead). Runs on the sending thread, after the
    /// node is killed on the inner transport.
    pub fn set_on_kill(&self, f: OnKill) {
        *self.state.on_kill.lock() = Some(f);
    }

    /// Disarms all pending triggers (crashed senders stay crashed).
    pub fn clear_triggers(&self) {
        self.state.armed.lock().clear();
    }

    /// True if a trigger is currently armed for `node`.
    pub fn is_armed(&self, node: NodeId) -> bool {
        self.state.armed.lock().contains_key(&node)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &Arc<dyn Transport<M>> {
        &self.inner
    }
}

impl<M: Clone + Send + 'static> Transport<M> for FaultTransport<M> {
    fn register(&self, node: NodeId) -> Box<dyn Endpoint<M>> {
        self.inner.register(node)
    }

    fn kill(&self, node: NodeId) {
        self.inner.kill(node);
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.inner.is_alive(node)
    }

    fn partition(&self, a: NodeId, b: NodeId) {
        self.inner.partition(a, b);
    }

    fn heal(&self, a: NodeId, b: NodeId) {
        self.inner.heal(a, b);
    }

    fn send_from(&self, from: NodeId, to: NodeId, msg: M, size: usize) -> DmvResult<()> {
        if self.state.crashed.lock().contains(&from) {
            // A crashed node's output goes nowhere; like a partition,
            // the (dead) sender cannot tell.
            return Ok(());
        }
        let fired = {
            let mut armed = self.state.armed.lock();
            match armed.get_mut(&from) {
                Some(left) => {
                    *left -= 1;
                    if *left == 0 {
                        armed.remove(&from);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            }
        };
        if fired {
            self.state.crashed.lock().insert(from);
            self.inner.kill(from);
            if let Some(f) = self.state.on_kill.lock().as_ref() {
                f(from);
            }
            return Ok(()); // the fatal send is lost with the sender
        }
        self.inner.send_from(from, to, msg, size)
    }

    fn messages_sent(&self) -> u64 {
        self.inner.messages_sent()
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

impl<M: Clone> std::fmt::Debug for FaultTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultTransport")
            .field("armed", &self.state.armed.lock().len())
            .field("crashed", &self.state.crashed.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimnetTransport;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    fn fabric() -> FaultTransport<u32> {
        FaultTransport::new(Arc::new(SimnetTransport::zero()))
    }

    #[test]
    fn transparent_without_triggers() {
        let t = fabric();
        let _a = t.register(NodeId(1));
        let b = t.register(NodeId(2));
        t.send_from(NodeId(1), NodeId(2), 7, 4).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 7);
        assert_eq!(t.messages_sent(), 1);
    }

    #[test]
    fn trigger_splits_a_broadcast_at_the_exact_send() {
        let t = fabric();
        let _a = t.register(NodeId(1));
        let b = t.register(NodeId(2));
        let c = t.register(NodeId(3));
        let d = t.register(NodeId(4));
        let killed = Arc::new(AtomicU32::new(0));
        let k = Arc::clone(&killed);
        t.set_on_kill(Box::new(move |n| k.store(n.0 + 100, Ordering::SeqCst)));
        // Crash on the 2nd send: target order (2, 3, 4) means node 2
        // receives the write-set, nodes 3 and 4 never do.
        t.kill_after_sends(NodeId(1), 2);
        t.broadcast(NodeId(1), &[NodeId(2), NodeId(3), NodeId(4)], &9, 4);
        assert_eq!(b.recv_timeout(Duration::from_millis(50)).unwrap().msg, 9);
        assert!(c.recv_timeout(Duration::from_millis(50)).is_err());
        assert!(d.recv_timeout(Duration::from_millis(50)).is_err());
        assert!(!t.is_alive(NodeId(1)), "sender crashed on the fatal send");
        assert_eq!(killed.load(Ordering::SeqCst), 101, "on_kill callback ran");
        assert!(!t.is_armed(NodeId(1)));
        // Everything the crashed node tries to send afterwards vanishes.
        t.send_from(NodeId(1), NodeId(2), 10, 4).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn clear_triggers_disarms() {
        let t = fabric();
        let _a = t.register(NodeId(1));
        let b = t.register(NodeId(2));
        t.kill_after_sends(NodeId(1), 1);
        t.clear_triggers();
        t.send_from(NodeId(1), NodeId(2), 5, 4).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 5);
        assert!(t.is_alive(NodeId(1)));
    }
}
