//! The TCP frame format and connection handshake.
//!
//! Every frame on the wire is:
//!
//! ```text
//! ┌────────────┬──────┬───────────────┬────────────┐
//! │ len: u32 LE│ kind │    payload    │ crc: u32 LE│
//! │ = 1 + |pl| │  u8  │  len-1 bytes  │ over kind+ │
//! │            │      │               │  payload   │
//! └────────────┴──────┴───────────────┴────────────┘
//! ```
//!
//! The first frame in each direction of a connection is a [`Hello`]
//! carrying a magic number, the protocol version and a feature-bits
//! word; a receiver rejects connections whose magic or version it does
//! not support (unknown feature bits are ignored, so features can be
//! added compatibly). After the handshake the link carries `Data`
//! frames (a [`dmv_common::wire`]-encoded message), `Heartbeat` frames
//! on idle links, and a final `Bye` on clean teardown.
//!
//! Decoding is total: truncation, checksum mismatch, oversized lengths
//! and unknown kinds all surface as [`DmvError::Codec`], never a panic.

use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::NodeId;
use dmv_common::wire::{put_u16, put_u32, put_u64, Reader};

/// Protocol magic: `"DMV1"` as a little-endian u32.
pub const MAGIC: u32 = 0x3156_4D44;

/// Wire protocol version this build speaks.
pub const PROTO_VERSION: u16 = 1;

/// Feature bit: the sender emits heartbeat frames on idle links.
pub const FEAT_HEARTBEAT: u64 = 1;

/// Upper bound on a frame body; anything larger is a corrupt or hostile
/// length prefix (the biggest legitimate message, a migration page
/// batch, stays far below this).
pub const MAX_FRAME: usize = 32 * 1024 * 1024;

/// Bytes of the `len` prefix.
pub const LEN_PREFIX: usize = 4;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Handshake (first frame in each direction).
    Hello,
    /// One wire-encoded message.
    Data,
    /// Keep-alive on an idle link; carries no payload.
    Heartbeat,
    /// Clean end-of-stream notice.
    Bye,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Data => 1,
            FrameKind::Heartbeat => 2,
            FrameKind::Bye => 3,
        }
    }

    fn from_u8(b: u8) -> DmvResult<Self> {
        match b {
            0 => Ok(FrameKind::Hello),
            1 => Ok(FrameKind::Data),
            2 => Ok(FrameKind::Heartbeat),
            3 => Ok(FrameKind::Bye),
            k => Err(DmvError::Codec(format!("unknown frame kind {k}"))),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Total wire size of a frame carrying `payload_len` payload bytes.
pub fn frame_len(payload_len: usize) -> usize {
    LEN_PREFIX + 1 + payload_len + 4
}

/// Encodes one complete frame (length prefix included).
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame_len(payload.len()));
    put_u32(&mut out, (1 + payload.len()) as u32);
    out.push(kind.to_u8());
    out.extend_from_slice(payload);
    let crc = crc32(&out[LEN_PREFIX..]);
    put_u32(&mut out, crc);
    out
}

/// Validates a length prefix read off the stream and returns how many
/// body bytes (kind + payload + crc) follow it.
pub fn body_len(len_prefix: u32) -> DmvResult<usize> {
    let len = len_prefix as usize;
    if len == 0 {
        return Err(DmvError::Codec("zero-length frame".into()));
    }
    if len > MAX_FRAME {
        return Err(DmvError::Codec(format!("frame of {len} bytes exceeds cap {MAX_FRAME}")));
    }
    Ok(len + 4)
}

/// Parses a frame body (everything after the length prefix), verifying
/// the checksum, and returns the kind and payload.
pub fn parse_body(body: &[u8]) -> DmvResult<(FrameKind, &[u8])> {
    if body.len() < 5 {
        return Err(DmvError::Codec(format!("truncated frame body of {} bytes", body.len())));
    }
    let (content, crc_bytes) = body.split_at(body.len() - 4);
    let got = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let want = crc32(content);
    if got != want {
        return Err(DmvError::Codec(format!(
            "frame checksum mismatch: got {got:#x}, want {want:#x}"
        )));
    }
    Ok((FrameKind::from_u8(content[0])?, &content[1..]))
}

/// Decodes one complete frame from `buf` (length prefix included),
/// rejecting trailing bytes. The streaming path reads the prefix and
/// body separately; this form is for tests and single-frame buffers.
pub fn decode_frame(buf: &[u8]) -> DmvResult<(FrameKind, Vec<u8>)> {
    if buf.len() < LEN_PREFIX {
        return Err(DmvError::Codec(format!("truncated frame: {} bytes", buf.len())));
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let body = body_len(len)?;
    let rest = &buf[LEN_PREFIX..];
    if rest.len() < body {
        return Err(DmvError::Codec(format!(
            "truncated frame: body needs {body} bytes, have {}",
            rest.len()
        )));
    }
    if rest.len() > body {
        return Err(DmvError::Codec(format!("{} trailing bytes after frame", rest.len() - body)));
    }
    let (kind, payload) = parse_body(rest)?;
    Ok((kind, payload.to_vec()))
}

/// The handshake payload each side sends as its first frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the sender speaks.
    pub proto_version: u16,
    /// Feature bits the sender enables; unknown bits are ignored.
    pub feature_bits: u64,
    /// Sending node.
    pub from: NodeId,
    /// Node the sender believes it is talking to.
    pub to: NodeId,
}

impl Hello {
    /// Handshake for a connection `from → to` with this build's
    /// version and features.
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Hello { proto_version: PROTO_VERSION, feature_bits: FEAT_HEARTBEAT, from, to }
    }

    /// Encodes the handshake payload (goes inside a `Hello` frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(22);
        put_u32(&mut out, MAGIC);
        put_u16(&mut out, self.proto_version);
        put_u64(&mut out, self.feature_bits);
        put_u32(&mut out, self.from.0);
        put_u32(&mut out, self.to.0);
        out
    }

    /// Decodes and validates a handshake payload: magic must match and
    /// the version must be one this build supports.
    pub fn decode(payload: &[u8]) -> DmvResult<Self> {
        let mut r = Reader::new(payload);
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(DmvError::Codec(format!("bad protocol magic {magic:#010x}")));
        }
        let proto_version = r.u16()?;
        if proto_version != PROTO_VERSION {
            return Err(DmvError::Codec(format!(
                "unsupported protocol version {proto_version} (this build speaks {PROTO_VERSION})"
            )));
        }
        let feature_bits = r.u64()?;
        let from = NodeId(r.u32()?);
        let to = NodeId(r.u32()?);
        if r.remaining() != 0 {
            return Err(DmvError::Codec(format!("{} trailing bytes after hello", r.remaining())));
        }
        Ok(Hello { proto_version, feature_bits, from, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_all_kinds() {
        for kind in [FrameKind::Hello, FrameKind::Data, FrameKind::Heartbeat, FrameKind::Bye] {
            let bytes = encode_frame(kind, b"payload");
            assert_eq!(bytes.len(), frame_len(7));
            let (k, p) = decode_frame(&bytes).unwrap();
            assert_eq!(k, kind);
            assert_eq!(p, b"payload");
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error() {
        let full = encode_frame(FrameKind::Data, b"some payload bytes");
        for cut in 0..full.len() {
            assert!(decode_frame(&full[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let full = encode_frame(FrameKind::Data, b"checksummed");
        for i in 0..full.len() {
            let mut corrupt = full.clone();
            corrupt[i] ^= 0x40;
            assert!(decode_frame(&corrupt).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = encode_frame(FrameKind::Data, b"x");
        bytes[0..4].copy_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(DmvError::Codec(_))));
        assert!(body_len(0).is_err());
    }

    #[test]
    fn hello_roundtrip() {
        let h = Hello::new(NodeId(3), NodeId(10));
        let back = Hello::decode(&h.encode()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.proto_version, PROTO_VERSION);
        assert_ne!(back.feature_bits & FEAT_HEARTBEAT, 0);
    }

    #[test]
    fn hello_bad_magic_rejected() {
        let mut p = Hello::new(NodeId(0), NodeId(1)).encode();
        p[0] ^= 0xFF;
        let err = Hello::decode(&p).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn hello_unknown_version_rejected() {
        let mut p = Hello::new(NodeId(0), NodeId(1)).encode();
        p[4..6].copy_from_slice(&99u16.to_le_bytes());
        let err = Hello::decode(&p).unwrap_err();
        assert!(matches!(err, DmvError::Codec(_)));
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn hello_unknown_feature_bits_ignored() {
        let mut h = Hello::new(NodeId(0), NodeId(1));
        h.feature_bits |= 1 << 63;
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);
    }
}
