//! # dmv-net
//!
//! The cluster transport tier. The paper runs DMV on a 19-node switched
//! LAN over TCP; this crate makes that boundary real while keeping the
//! simulated network as a drop-in alternative:
//!
//! * [`frame`] — the length-prefixed, CRC-checksummed frame format and
//!   the protocol-version/feature-bits handshake;
//! * [`transport`] — the [`Transport`]/[`Endpoint`] traits that
//!   `dmv-core` is generic over (send, broadcast, receive, kill, and
//!   the partition fault hooks the fail-over machinery tests against);
//! * [`sim`] — [`SimnetTransport`], the adapter presenting
//!   `dmv-simnet`'s in-process network through the trait, semantics
//!   unchanged;
//! * [`fault`] — [`FaultTransport`], a decorator injecting crash
//!   faults at exact send counts (kill-mid-broadcast scenarios for
//!   deterministic simulation testing);
//! * [`tcp`] — [`TcpTransport`], real sockets on `std::net` loopback or
//!   LAN: thread-per-connection reader/writer pairs, bounded outbound
//!   queues with backpressure, reconnect with capped exponential
//!   backoff + deterministic jitter, heartbeat frames on idle links.
//!
//! Payloads cross either transport through the [`dmv_common::wire`]
//! codec, so the byte counts the simulator charges and the bytes the
//! sockets carry are identical.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod fault;
pub mod frame;
pub mod queue;
pub mod sim;
pub mod tcp;
pub mod transport;

pub use fault::FaultTransport;
pub use sim::SimnetTransport;
pub use tcp::TcpTransport;
pub use transport::{DynTransport, Endpoint, Envelope, Transport};
