//! A bounded MPMC queue for per-link outbound frames.
//!
//! The vendored crossbeam shim only provides unbounded channels, and an
//! unbounded outbound queue would let a master outrun a slow link
//! without ever feeling backpressure. This queue blocks producers (up
//! to a deadline) once `cap` frames are waiting, which is exactly the
//! throttle a full kernel socket buffer applies to a real sender.
//!
//! Built on the `dmv_check::sync` shims, so the push/pop/close protocol
//! is explorable by the model checker like the other hot-path
//! primitives.

use dmv_check::sync::{Condvar, Mutex};
use dmv_common::clock::WallInstant;
use std::collections::VecDeque;

/// Why a push did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue stayed full until the deadline (backpressure).
    Full,
    /// The queue was closed.
    Closed,
}

/// Outcome of a pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// The next item, FIFO.
    Item(T),
    /// Nothing arrived before the deadline.
    Timeout,
    /// Closed and drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded FIFO with blocking, deadline-bounded push and pop.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let q = BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        };
        dmv_check::race::label(&q.state, "link_queue");
        dmv_check::race::label(&q.not_full, "link_queue.not_full");
        dmv_check::race::label(&q.not_empty, "link_queue.not_empty");
        q
    }

    /// Enqueues `item`, blocking while the queue is full until
    /// `deadline`.
    pub fn push_deadline(&self, item: T, deadline: WallInstant) -> Result<(), PushError> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(PushError::Closed);
            }
            if st.items.len() < self.cap {
                st.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            if self.not_full.wait_until(&mut st, deadline).timed_out() {
                return Err(if st.closed { PushError::Closed } else { PushError::Full });
            }
        }
    }

    /// Dequeues the next item, blocking until `deadline`. A closed
    /// queue drains remaining items before reporting [`Pop::Closed`].
    pub fn pop_deadline(&self, deadline: WallInstant) -> Pop<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if st.closed {
                return Pop::Closed;
            }
            if self.not_empty.wait_until(&mut st, deadline).timed_out() {
                return Pop::Timeout;
            }
        }
    }

    /// Closes the queue: pending and future pushes fail, pops drain
    /// what is left and then report closure. Wakes all waiters.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::clock::wall_deadline;
    use std::sync::Arc;
    use std::time::Duration;

    fn soon() -> WallInstant {
        wall_deadline(Duration::from_millis(50))
    }

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push_deadline(i, soon()).unwrap();
        }
        for i in 0..5 {
            match q.pop_deadline(soon()) {
                Pop::Item(v) => assert_eq!(v, i),
                other => panic!("expected item, got {other:?}"),
            }
        }
        assert!(matches!(q.pop_deadline(wall_deadline(Duration::ZERO)), Pop::Timeout));
    }

    #[test]
    fn full_queue_times_out_then_drains() {
        let q = BoundedQueue::new(2);
        q.push_deadline(1, soon()).unwrap();
        q.push_deadline(2, soon()).unwrap();
        assert_eq!(
            q.push_deadline(3, wall_deadline(Duration::from_millis(5))),
            Err(PushError::Full)
        );
        assert!(matches!(q.pop_deadline(soon()), Pop::Item(1)));
        q.push_deadline(3, soon()).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_unblocks_producer_and_drains_consumer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_deadline(7, soon()).unwrap();
        let q2 = Arc::clone(&q);
        let blocked = dmv_check::thread::spawn(move || {
            q2.push_deadline(8, wall_deadline(Duration::from_secs(5)))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(blocked.join().unwrap(), Err(PushError::Closed));
        assert!(matches!(q.pop_deadline(soon()), Pop::Item(7)));
        assert!(matches!(q.pop_deadline(soon()), Pop::Closed));
        assert_eq!(q.push_deadline(9, soon()), Err(PushError::Closed));
    }

    #[test]
    fn backpressure_hands_off_under_contention() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            dmv_check::thread::spawn(move || {
                for i in 0..500 {
                    q.push_deadline(i, wall_deadline(Duration::from_secs(10))).unwrap();
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            dmv_check::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 500 {
                    match q.pop_deadline(wall_deadline(Duration::from_secs(10))) {
                        Pop::Item(v) => got.push(v),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                got
            })
        };
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }
}
