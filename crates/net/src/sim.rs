//! [`SimnetTransport`]: the in-process simulated network presented
//! through the [`Transport`] trait, semantics unchanged — latency
//! injection, sender-side serialization charge, partitions and node
//! kill all behave exactly as `dmv_simnet::Network` always has.

use crate::transport::{Endpoint, Envelope, Transport};
use dmv_common::clock::SimClock;
use dmv_common::config::NetProfile;
use dmv_common::error::DmvResult;
use dmv_common::ids::NodeId;
use dmv_simnet::Network;
use std::time::Duration;

/// Adapter over [`dmv_simnet::Network`]. Cheap to clone (shared state).
pub struct SimnetTransport<M> {
    net: Network<M>,
}

impl<M> Clone for SimnetTransport<M> {
    fn clone(&self) -> Self {
        SimnetTransport { net: self.net.clone() }
    }
}

impl<M: Send + 'static> SimnetTransport<M> {
    /// Creates a simulated network with the given latency profile and
    /// clock.
    pub fn new(profile: NetProfile, clock: SimClock) -> Self {
        SimnetTransport { net: Network::new(profile, clock) }
    }

    /// A zero-latency simulated network for pure-logic tests.
    pub fn zero() -> Self {
        SimnetTransport { net: Network::zero() }
    }

    /// Wraps an existing simnet fabric.
    pub fn from_network(net: Network<M>) -> Self {
        SimnetTransport { net }
    }

    /// The underlying simnet fabric, for tests that poke it directly.
    pub fn network(&self) -> &Network<M> {
        &self.net
    }
}

struct SimEndpoint<M> {
    ep: dmv_simnet::Endpoint<M>,
}

impl<M: Send + 'static> Endpoint<M> for SimEndpoint<M> {
    fn node(&self) -> NodeId {
        self.ep.node()
    }

    fn is_alive(&self) -> bool {
        self.ep.is_alive()
    }

    fn send(&self, to: NodeId, msg: M, size: usize) -> DmvResult<()> {
        self.ep.send(to, msg, size)
    }

    fn recv_timeout(&self, timeout: Duration) -> DmvResult<Envelope<M>> {
        self.ep.recv_timeout(timeout).map(|env| Envelope { from: env.from, msg: env.msg })
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        self.ep.try_recv().map(|env| Envelope { from: env.from, msg: env.msg })
    }
}

impl<M: Clone + Send + 'static> Transport<M> for SimnetTransport<M> {
    fn register(&self, node: NodeId) -> Box<dyn Endpoint<M>> {
        Box::new(SimEndpoint { ep: self.net.register(node) })
    }

    fn kill(&self, node: NodeId) {
        self.net.kill(node);
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.net.is_alive(node)
    }

    fn partition(&self, a: NodeId, b: NodeId) {
        self.net.partition(a, b);
    }

    fn heal(&self, a: NodeId, b: NodeId) {
        self.net.heal(a, b);
    }

    fn send_from(&self, from: NodeId, to: NodeId, msg: M, size: usize) -> DmvResult<()> {
        self.net.send_external(from, to, msg, size)
    }

    fn messages_sent(&self) -> u64 {
        self.net.messages_sent()
    }

    fn bytes_sent(&self) -> u64 {
        self.net.bytes_sent()
    }
}
