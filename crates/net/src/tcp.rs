//! [`TcpTransport`]: the cluster fabric over real `std::net` sockets.
//!
//! Topology: every registered node binds a loopback listener and an
//! accept thread. A link `from → to` materializes lazily on first send
//! as a bounded outbound queue plus a **writer thread** that dials the
//! destination, performs the [`frame::Hello`] handshake, and pumps
//! frames; the destination's accept thread hands the connection to a
//! **reader thread** that validates the handshake and delivers decoded
//! messages into the target node's inbox. One connection per directed
//! link keeps delivery FIFO per link, like the simulated network.
//!
//! Fault semantics mirror `dmv-simnet` (see [`crate::transport`]):
//! partitioned links drop silently at the sender (and, defensively, at
//! the receiver — for cross-process use where only one side injected
//! the fault), sends to dead or unknown nodes fail with `NoSuchNode`,
//! and killing a node closes its inbox so receivers drain and then see
//! `NodeFailed`.
//!
//! Liveness machinery:
//!
//! * **Backpressure** — the per-link queue holds at most
//!   `TcpConfig::queue_depth` frames; a sender that outruns the link
//!   blocks up to `enqueue_timeout` and then gets a `Network` error,
//!   the same throttle a full kernel socket buffer applies.
//! * **Reconnect** — a writer whose connect or write fails retries with
//!   capped exponential backoff and deterministic jitter (streams
//!   derived from `TcpConfig::seed` via `dmv_common::rng::derive`, one
//!   per link, so schedules are reproducible).
//! * **Heartbeats** — an idle writer emits a heartbeat frame every
//!   `heartbeat_interval`, keeping NAT/timeout middleware and the
//!   reader's liveness checks fed without inventing traffic.
//! * **Teardown** — [`Transport::shutdown`] closes every queue, stops
//!   every thread (all blocking waits are short polls) and joins them.
//!
//! All timing goes through `clock.rs` (`wall_now`/`wall_deadline`) and
//! all randomness through `rng.rs`, per the repo's lint rules; the
//! outbound queue is built on the `dmv_check::sync` shims so the
//! backoff/backpressure path stays model-checkable.

use crate::frame::{self, FrameKind, Hello};
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::transport::{Endpoint, Envelope, Transport};
use dmv_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use dmv_check::sync::{Mutex, RwLock};
use dmv_common::clock::{wall_deadline, wall_now, WallInstant};
use dmv_common::config::TcpConfig;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::NodeId;
use dmv_common::rng;
use dmv_common::wire::{decode_exact, Wire};
use rand::rngs::SmallRng;
use rand::Rng as _;
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Poll granularity of blocking socket reads and accept loops; bounds
/// how long teardown waits on an idle thread.
const POLL: Duration = Duration::from_millis(25);

/// How long a single frame write may stall before the writer declares
/// the connection dead and reconnects.
const WRITE_STALL: Duration = Duration::from_secs(2);

struct LocalNode<M> {
    inbox: crossbeam::channel::Sender<Envelope<M>>,
    alive: Arc<AtomicBool>,
    /// Stops this registration's accept/reader threads (set on kill,
    /// re-register and shutdown).
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

/// Outbound frame queue of one directed link; frames are Arc-shared so
/// a broadcast encodes once.
type LinkQueue = Arc<BoundedQueue<Arc<Vec<u8>>>>;

struct Inner<M> {
    cfg: TcpConfig,
    nodes: RwLock<HashMap<NodeId, LocalNode<M>>>,
    /// Dialable address per node — local registrations plus remote
    /// peers added via [`TcpTransport::add_peer`].
    peers: RwLock<HashMap<NodeId, SocketAddr>>,
    links: Mutex<HashMap<(NodeId, NodeId), LinkQueue>>,
    partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    shutdown: AtomicBool,
    threads: Mutex<Vec<dmv_check::thread::JoinHandle<()>>>,
    next_stream: AtomicU64,
}

/// The real-socket transport. Cheap to clone (shared state).
pub struct TcpTransport<M> {
    inner: Arc<Inner<M>>,
}

impl<M> Clone for TcpTransport<M> {
    fn clone(&self) -> Self {
        TcpTransport { inner: Arc::clone(&self.inner) }
    }
}

impl<M: Wire + Clone + Send + 'static> TcpTransport<M> {
    /// Creates an empty transport with the given tuning.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpTransport {
            inner: Arc::new(Inner {
                cfg,
                nodes: RwLock::new(HashMap::new()),
                peers: RwLock::new(HashMap::new()),
                links: Mutex::new(HashMap::new()),
                partitions: RwLock::new(HashSet::new()),
                messages_sent: AtomicU64::new(0),
                bytes_sent: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                threads: Mutex::new(Vec::new()),
                next_stream: AtomicU64::new(0),
            }),
        }
    }

    /// The loopback address `node`'s listener is bound to, if `node`
    /// is registered locally (hand it to the other process of a
    /// multi-process cluster).
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.inner.nodes.read().get(&node).map(|n| n.addr)
    }

    /// Makes a node living in another process reachable: sends to
    /// `node` will dial `addr`.
    pub fn add_peer(&self, node: NodeId, addr: SocketAddr) {
        self.inner.peers.write().insert(node, addr);
    }
}

impl<M: Wire + Clone + Send + 'static> Default for TcpTransport<M> {
    fn default() -> Self {
        Self::new(TcpConfig::default())
    }
}

impl<M: Wire + Clone + Send + 'static> Transport<M> for TcpTransport<M> {
    fn register(&self, node: NodeId) -> Box<dyn Endpoint<M>> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener"); // unwrap-ok: loopback ephemeral bind only fails when the OS is out of ports
        listener.set_nonblocking(true).expect("set_nonblocking"); // unwrap-ok: supported on every target platform
        let addr = listener.local_addr().expect("listener local addr"); // unwrap-ok: freshly bound listener has an address

        let (tx, rx) = crossbeam::channel::unbounded();
        let alive = Arc::new(AtomicBool::new(true));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let mut nodes = self.inner.nodes.write();
            if let Some(old) = nodes.insert(
                node,
                LocalNode { inbox: tx, alive: Arc::clone(&alive), stop: Arc::clone(&stop), addr },
            ) {
                // Re-registration replaces the endpoint; the previous
                // generation's threads wind down.
                old.stop.store(true, Ordering::Release);
            }
        }
        self.inner.peers.write().insert(node, addr);

        let inner = Arc::clone(&self.inner);
        let accept_stop = Arc::clone(&stop);
        let handle = dmv_check::thread::Builder::new()
            .name(format!("tcp-accept-{node}"))
            .spawn(move || accept_loop(inner, node, listener, accept_stop))
            .expect("spawn accept loop"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
        self.inner.threads.lock().push(handle);

        Box::new(TcpEndpoint { node, alive, receiver: rx, inner: Arc::clone(&self.inner) })
    }

    fn kill(&self, node: NodeId) {
        if let Some(n) = self.inner.nodes.write().remove(&node) {
            n.alive.store(false, Ordering::Release);
            n.stop.store(true, Ordering::Release);
            // Dropping the inbox sender closes the endpoint's channel.
        }
        self.inner.peers.write().remove(&node);
        // Stop this node's outgoing writers; frames still queued are
        // lost, like bytes in a dead host's socket buffers.
        for (key, q) in self.inner.links.lock().iter() {
            if key.0 == node {
                q.close();
            }
        }
    }

    fn is_alive(&self, node: NodeId) -> bool {
        if let Some(n) = self.inner.nodes.read().get(&node) {
            return n.alive.load(Ordering::Acquire);
        }
        // A remote peer is presumed alive; failure detection is the
        // cluster's job (ack timeouts), not the transport's.
        self.inner.peers.read().contains_key(&node)
    }

    fn partition(&self, a: NodeId, b: NodeId) {
        let mut p = self.inner.partitions.write();
        p.insert((a, b));
        p.insert((b, a));
    }

    fn heal(&self, a: NodeId, b: NodeId) {
        let mut p = self.inner.partitions.write();
        p.remove(&(a, b));
        p.remove(&(b, a));
    }

    fn send_from(&self, from: NodeId, to: NodeId, msg: M, size: usize) -> DmvResult<()> {
        let _ = size; // the frame's real length is charged instead
        let payload = msg.encode();
        let bytes = Arc::new(frame::encode_frame(FrameKind::Data, &payload));
        self.enqueue(from, to, &bytes)
    }

    fn broadcast(&self, from: NodeId, targets: &[NodeId], msg: &M, size: usize) {
        let _ = size;
        // One encode for the whole fan-out; every link queue shares the
        // same frame allocation.
        let payload = msg.encode();
        let bytes = Arc::new(frame::encode_frame(FrameKind::Data, &payload));
        for t in targets {
            let _ = self.enqueue(from, *t, &bytes);
        }
    }

    fn messages_sent(&self) -> u64 {
        self.inner.messages_sent.load(Ordering::Relaxed) // relaxed-ok: traffic diagnostics counter
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent.load(Ordering::Relaxed) // relaxed-ok: traffic diagnostics counter
    }

    fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for n in self.inner.nodes.read().values() {
            n.stop.store(true, Ordering::Release);
        }
        for q in self.inner.links.lock().values() {
            q.close();
        }
        // Join until the vec stays empty: accept threads (registered
        // first, popped last) may still push reader handles while we
        // drain, but once they are joined nothing can push anymore.
        loop {
            let handle = self.inner.threads.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl<M: Wire + Clone + Send + 'static> TcpTransport<M> {
    /// Common send path: fault checks, then the link queue (spawning
    /// the link's writer on first use).
    fn enqueue(&self, from: NodeId, to: NodeId, bytes: &Arc<Vec<u8>>) -> DmvResult<()> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(DmvError::Network("transport shut down".into()));
        }
        if inner.partitions.read().contains(&(from, to)) {
            // Partitioned links drop silently — the sender cannot tell.
            return Ok(());
        }
        {
            let nodes = inner.nodes.read();
            match nodes.get(&to) {
                Some(n) if !n.alive.load(Ordering::Acquire) => {
                    return Err(DmvError::NoSuchNode(to))
                }
                Some(_) => {}
                None => {
                    if !inner.peers.read().contains_key(&to) {
                        return Err(DmvError::NoSuchNode(to));
                    }
                }
            }
        }
        let queue = {
            let mut links = inner.links.lock();
            match links.get(&(from, to)) {
                Some(q) => Arc::clone(q),
                None => {
                    let q = Arc::new(BoundedQueue::new(inner.cfg.queue_depth));
                    links.insert((from, to), Arc::clone(&q));
                    let stream_id = inner.next_stream.fetch_add(1, Ordering::Relaxed); // relaxed-ok: unique-id allocator, no ordering needed
                    let writer_q = Arc::clone(&q);
                    let writer_inner = Arc::clone(inner);
                    let handle = dmv_check::thread::Builder::new()
                        .name(format!("tcp-writer-{from}-{to}"))
                        .spawn(move || {
                            writer_loop(writer_inner, from, to, writer_q, stream_id);
                        })
                        .expect("spawn writer loop"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
                    inner.threads.lock().push(handle);
                    q
                }
            }
        };
        match queue.push_deadline(Arc::clone(bytes), wall_deadline(inner.cfg.enqueue_timeout)) {
            Ok(()) => {
                inner.messages_sent.fetch_add(1, Ordering::Relaxed); // relaxed-ok: traffic diagnostics counter
                inner.bytes_sent.fetch_add(bytes.len() as u64, Ordering::Relaxed); // relaxed-ok: traffic diagnostics counter
                Ok(())
            }
            Err(PushError::Full) => {
                Err(DmvError::Network(format!("outbound queue {from}->{to} full (backpressure)")))
            }
            Err(PushError::Closed) => Err(DmvError::NoSuchNode(to)),
        }
    }
}

// ---------------------------------------------------------------- endpoint

struct TcpEndpoint<M> {
    node: NodeId,
    alive: Arc<AtomicBool>,
    receiver: crossbeam::channel::Receiver<Envelope<M>>,
    inner: Arc<Inner<M>>,
}

impl<M: Wire + Clone + Send + 'static> Endpoint<M> for TcpEndpoint<M> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn send(&self, to: NodeId, msg: M, size: usize) -> DmvResult<()> {
        if !self.is_alive() {
            return Err(DmvError::NodeFailed(self.node));
        }
        TcpTransport { inner: Arc::clone(&self.inner) }.send_from(self.node, to, msg, size)
    }

    fn recv_timeout(&self, timeout: Duration) -> DmvResult<Envelope<M>> {
        match self.receiver.recv_deadline(wall_deadline(timeout)) {
            Ok(env) => Ok(env),
            Err(_) => {
                if self.is_alive() {
                    Err(DmvError::Network("receive timeout".into()))
                } else {
                    Err(DmvError::NodeFailed(self.node))
                }
            }
        }
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        self.receiver.try_recv().ok()
    }
}

// ------------------------------------------------------------ accept/read

fn accept_loop<M: Wire + Clone + Send + 'static>(
    inner: Arc<Inner<M>>,
    node: NodeId,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::Acquire) || inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL));
                let _ = stream.set_write_timeout(Some(WRITE_STALL));
                let reader_inner = Arc::clone(&inner);
                let reader_stop = Arc::clone(&stop);
                let handle = dmv_check::thread::Builder::new()
                    .name(format!("tcp-reader-{node}"))
                    .spawn(move || {
                        reader_loop(reader_inner, node, stream, reader_stop);
                    })
                    .expect("spawn reader loop"); // unwrap-ok: thread spawn fails only on OS resource exhaustion at startup
                inner.threads.lock().push(handle);
            }
            Err(_) => {
                // Nonblocking accept: nothing pending (or a transient
                // error) — poll again shortly.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Serves one inbound connection: handshake, then decode-and-deliver.
fn reader_loop<M: Wire + Clone + Send + 'static>(
    inner: Arc<Inner<M>>,
    node: NodeId,
    mut stream: TcpStream,
    stop: Arc<AtomicBool>,
) {
    let done = |i: &Inner<M>| stop.load(Ordering::Acquire) || i.shutdown.load(Ordering::Acquire);

    // Handshake: the dialer speaks first; we validate and answer.
    let hello = match read_frame(&mut stream, || done(&inner)) {
        Some((FrameKind::Hello, payload)) => match Hello::decode(&payload) {
            Ok(h) if h.to == node => h,
            // Wrong magic, unsupported version or misrouted connection:
            // refuse by closing (the dialer backs off and retries).
            _ => return,
        },
        _ => return,
    };
    if write_all(
        &mut stream,
        &frame::encode_frame(FrameKind::Hello, &Hello::new(node, hello.from).encode()),
    )
    .is_err()
    {
        return;
    }

    while let Some((kind, payload)) = read_frame(&mut stream, || done(&inner)) {
        match kind {
            FrameKind::Data => {
                let Ok(msg) = decode_exact::<M>(&payload) else {
                    // A frame that passed its checksum but does not
                    // decode means the peer speaks another dialect;
                    // drop the connection rather than guess.
                    return;
                };
                // Defensive receiver-side partition check (the sender
                // already drops; this side covers cross-process use).
                if inner.partitions.read().contains(&(hello.from, node)) {
                    continue;
                }
                let Some(tx) = inner.nodes.read().get(&node).map(|n| n.inbox.clone()) else {
                    return; // node killed or replaced
                };
                if tx.send(Envelope { from: hello.from, msg }).is_err() {
                    return;
                }
            }
            FrameKind::Heartbeat | FrameKind::Hello => {}
            FrameKind::Bye => return,
        }
    }
}

/// Reads one frame, polling so `done` can interrupt. `None` on EOF,
/// teardown, I/O error or malformed frame (the connection is dropped
/// either way; a corrupt TCP stream has no resynchronization point).
fn read_frame(stream: &mut TcpStream, done: impl Fn() -> bool) -> Option<(FrameKind, Vec<u8>)> {
    let mut prefix = [0u8; frame::LEN_PREFIX];
    if !read_exact_poll(stream, &mut prefix, &done)? {
        return None;
    }
    let body = frame::body_len(u32::from_le_bytes(prefix)).ok()?;
    let mut buf = vec![0u8; body];
    if !read_exact_poll(stream, &mut buf, &done)? {
        return None;
    }
    let (kind, payload) = frame::parse_body(&buf).ok()?;
    Some((kind, payload.to_vec()))
}

/// `read_exact` that survives read timeouts without losing bytes (std's
/// `read_exact` may discard a partial read on error). `Some(true)` when
/// `buf` is filled, `Some(false)` on EOF or `done`, `None` on error.
fn read_exact_poll(
    stream: &mut TcpStream,
    buf: &mut [u8],
    done: &impl Fn() -> bool,
) -> Option<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if done() {
            return Some(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Some(false),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return None,
        }
    }
    Some(true)
}

fn write_all(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(bytes)?;
    stream.flush()
}

// ------------------------------------------------------------------ write

/// Capped exponential backoff with equal jitter: half the exponential
/// delay fixed, half drawn uniformly. Deterministic per rng stream.
fn backoff_delay(cfg: &TcpConfig, rng: &mut SmallRng, attempt: u32) -> Duration {
    let base = cfg.connect_backoff_base.as_nanos() as u64;
    let cap = cfg.connect_backoff_cap.as_nanos() as u64;
    let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap).max(1);
    let half = exp / 2;
    Duration::from_nanos(half + rng.gen_range(0..=exp - half))
}

/// Sleeps `total` in short slices so teardown is never stuck behind a
/// backoff wait.
fn sleep_interruptible(total: Duration, done: &impl Fn() -> bool) {
    let deadline = wall_deadline(total);
    loop {
        if done() {
            return;
        }
        let now: WallInstant = wall_now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
}

/// Owns one directed link: dials, handshakes, pumps the queue, emits
/// heartbeats when idle, reconnects with backoff on any failure.
fn writer_loop<M: Wire + Clone + Send + 'static>(
    inner: Arc<Inner<M>>,
    from: NodeId,
    to: NodeId,
    queue: LinkQueue,
    stream_id: u64,
) {
    let done = |i: &Inner<M>| i.shutdown.load(Ordering::Acquire);
    let mut rng = rng::derive(inner.cfg.seed, stream_id);
    let mut attempt: u32 = 0;
    // A frame popped but not confirmed written; re-sent on the next
    // connection so a mid-write failure does not lose it.
    let mut pending: Option<Arc<Vec<u8>>> = None;

    'reconnect: loop {
        if done(&inner) {
            return;
        }
        let Some(addr) = inner.peers.read().get(&to).copied() else {
            // Destination gone (killed): drain closure, then exit.
            match queue.pop_deadline(wall_deadline(POLL)) {
                Pop::Closed => return,
                _ => continue 'reconnect,
            }
        };
        let mut stream = match TcpStream::connect_timeout(&addr, WRITE_STALL) {
            Ok(s) => s,
            Err(_) => {
                sleep_interruptible(backoff_delay(&inner.cfg, &mut rng, attempt), &|| done(&inner));
                attempt = attempt.saturating_add(1);
                continue 'reconnect;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL));
        let _ = stream.set_write_timeout(Some(WRITE_STALL));

        // Handshake: send ours, require a valid answer.
        let ok = write_all(
            &mut stream,
            &frame::encode_frame(FrameKind::Hello, &Hello::new(from, to).encode()),
        )
        .is_ok()
            && matches!(
                read_frame(&mut stream, || done(&inner)),
                Some((FrameKind::Hello, payload))
                    if Hello::decode(&payload).map(|h| h.from == to).unwrap_or(false)
            );
        if !ok {
            sleep_interruptible(backoff_delay(&inner.cfg, &mut rng, attempt), &|| done(&inner));
            attempt = attempt.saturating_add(1);
            continue 'reconnect;
        }
        attempt = 0;

        loop {
            let next = match pending.take() {
                Some(f) => Pop::Item(f),
                None => queue.pop_deadline(wall_deadline(inner.cfg.heartbeat_interval)),
            };
            match next {
                Pop::Item(frame_bytes) => {
                    if write_all(&mut stream, &frame_bytes).is_err() {
                        pending = Some(frame_bytes);
                        continue 'reconnect;
                    }
                }
                Pop::Timeout => {
                    if write_all(&mut stream, &frame::encode_frame(FrameKind::Heartbeat, &[]))
                        .is_err()
                    {
                        continue 'reconnect;
                    }
                }
                Pop::Closed => {
                    let _ = write_all(&mut stream, &frame::encode_frame(FrameKind::Bye, &[]));
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_stream() {
        let cfg = TcpConfig { seed: 42, ..TcpConfig::default() };
        let delays = |stream: u64| -> Vec<Duration> {
            let mut r = rng::derive(cfg.seed, stream);
            (0..12).map(|a| backoff_delay(&cfg, &mut r, a)).collect()
        };
        assert_eq!(delays(3), delays(3), "same stream must replay identically");
        assert_ne!(delays(3), delays(4), "streams must be independent");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = TcpConfig { seed: 1, ..TcpConfig::default() };
        let mut r = rng::derive(cfg.seed, 0);
        for attempt in 0..32 {
            let d = backoff_delay(&cfg, &mut r, attempt);
            assert!(d <= cfg.connect_backoff_cap, "attempt {attempt}: {d:?} over cap");
            // Equal jitter keeps at least half the exponential floor.
            if attempt == 0 {
                assert!(d >= cfg.connect_backoff_base / 2);
            }
        }
        // Late attempts concentrate near the cap (>= cap/2 by equal jitter).
        let late = backoff_delay(&cfg, &mut r, 30);
        assert!(late >= cfg.connect_backoff_cap / 2);
    }
}
