//! The transport abstraction `dmv-core` is generic over.
//!
//! Semantics are those the cluster machinery was built against (they
//! match `dmv-simnet` exactly; `TcpTransport` reproduces them over real
//! sockets):
//!
//! * **Send to a partitioned destination** succeeds silently and drops
//!   the message — a sender on a real network cannot tell.
//! * **Send to a dead or unknown node** fails with
//!   [`DmvError::NoSuchNode`]; send *from* a killed endpoint fails with
//!   [`DmvError::NodeFailed`].
//! * **Kill** closes the node's receive side: pending receivers drain,
//!   then see [`DmvError::NodeFailed`].
//! * **Per-link FIFO**: messages between a fixed (from, to) pair are
//!   delivered in send order. No ordering holds across links.
//!
//! [`DmvError::NoSuchNode`]: dmv_common::DmvError::NoSuchNode
//! [`DmvError::NodeFailed`]: dmv_common::DmvError::NodeFailed

use dmv_common::error::DmvResult;
use dmv_common::ids::NodeId;
use std::sync::Arc;
use std::time::Duration;

/// A delivered message with its sender.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
}

/// A node's attachment to a transport: its receive queue plus send
/// access bound to its identity.
pub trait Endpoint<M>: Send {
    /// This endpoint's node id.
    fn node(&self) -> NodeId;

    /// True until the node is killed.
    fn is_alive(&self) -> bool;

    /// Sends `msg` (of wire size `size` bytes) to `to`.
    fn send(&self, to: NodeId, msg: M, size: usize) -> DmvResult<()>;

    /// Receives the next message, waiting up to `timeout` (wall time).
    fn recv_timeout(&self, timeout: Duration) -> DmvResult<Envelope<M>>;

    /// Receives without waiting for new messages.
    fn try_recv(&self) -> Option<Envelope<M>>;
}

/// A cluster message fabric: node registry, fault injection and
/// out-of-band sends. Cheap to share (`Arc`); see [`DynTransport`].
pub trait Transport<M: Clone>: Send + Sync {
    /// Registers `node` and returns its endpoint. Re-registering a node
    /// (e.g. after recovery) replaces the previous endpoint.
    fn register(&self, node: NodeId) -> Box<dyn Endpoint<M>>;

    /// Kills a node: its endpoint stops receiving and sends to it fail.
    fn kill(&self, node: NodeId);

    /// True if the node is registered and alive.
    fn is_alive(&self, node: NodeId) -> bool;

    /// Blocks messages in both directions between `a` and `b` (silently
    /// dropped, like a real partition).
    fn partition(&self, a: NodeId, b: NodeId);

    /// Heals a partition.
    fn heal(&self, a: NodeId, b: NodeId);

    /// Sends on behalf of `from` without holding its endpoint (replica
    /// worker threads and the scheduler send this way).
    fn send_from(&self, from: NodeId, to: NodeId, msg: M, size: usize) -> DmvResult<()>;

    /// Fans `msg` out to every target, one wire copy each. Per-target
    /// failures (dead node mid-broadcast) are ignored — exactly how the
    /// master's write-set fan-out treated them when it looped over
    /// `send` itself; ack tracking catches the gap.
    fn broadcast(&self, from: NodeId, targets: &[NodeId], msg: &M, size: usize) {
        for t in targets {
            let _ = self.send_from(from, *t, msg.clone(), size);
        }
    }

    /// Messages sent so far (diagnostics).
    fn messages_sent(&self) -> u64;

    /// Payload bytes sent so far (diagnostics).
    fn bytes_sent(&self) -> u64;

    /// Tears down any background machinery (threads, sockets). Idempotent;
    /// a no-op for in-process transports.
    fn shutdown(&self) {}
}

/// The form `dmv-core` holds a transport in.
pub type DynTransport<M> = Arc<dyn Transport<M>>;
