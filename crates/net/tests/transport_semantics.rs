//! Transport-conformance suite, layer 1: the trait-level semantic
//! contract, run against **both** implementations. Every test iterates
//! over `SimnetTransport` and `TcpTransport` (real loopback sockets)
//! and asserts identical observable behavior: delivery, per-link FIFO,
//! silent partition drops with heal, kill semantics, broadcast fan-out,
//! re-registration and traffic counters.

use dmv_common::config::TcpConfig;
use dmv_common::error::DmvError;
use dmv_common::ids::NodeId;
use dmv_common::wire::{put_u64, Reader, Wire};
use dmv_common::DmvResult;
use dmv_net::{DynTransport, SimnetTransport, TcpTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

/// Minimal wire-encodable payload for transport-level tests.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TestMsg(u64);

impl Wire for TestMsg {
    fn encoded_len(&self) -> usize {
        8
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        Ok(TestMsg(r.u64()?))
    }
}

/// Fast-retry TCP tuning so kill/reconnect tests stay quick.
fn tcp() -> TcpTransport<TestMsg> {
    TcpTransport::new(TcpConfig {
        connect_backoff_base: Duration::from_millis(5),
        connect_backoff_cap: Duration::from_millis(50),
        heartbeat_interval: Duration::from_millis(50),
        ..TcpConfig::default()
    })
}

fn both() -> Vec<(&'static str, DynTransport<TestMsg>)> {
    vec![("simnet", Arc::new(SimnetTransport::zero())), ("tcp", Arc::new(tcp()))]
}

const RECV: Duration = Duration::from_secs(5);

#[test]
fn send_recv_and_counters() {
    for (name, t) in both() {
        let a = t.register(NodeId(1));
        let b = t.register(NodeId(2));
        a.send(NodeId(2), TestMsg(7), 8).unwrap();
        let env = b.recv_timeout(RECV).unwrap();
        assert_eq!(env.from, NodeId(1), "[{name}]");
        assert_eq!(env.msg, TestMsg(7), "[{name}]");
        assert_eq!(t.messages_sent(), 1, "[{name}]");
        assert!(t.bytes_sent() >= 8, "[{name}] bytes_sent {}", t.bytes_sent());
        t.shutdown();
    }
}

#[test]
fn send_to_unknown_fails() {
    for (name, t) in both() {
        let a = t.register(NodeId(1));
        assert!(
            matches!(a.send(NodeId(9), TestMsg(0), 8), Err(DmvError::NoSuchNode(NodeId(9)))),
            "[{name}]"
        );
        assert!(!t.is_alive(NodeId(9)), "[{name}]");
        t.shutdown();
    }
}

#[test]
fn killed_node_unreachable_and_cannot_send() {
    for (name, t) in both() {
        let a = t.register(NodeId(1));
        let b = t.register(NodeId(2));
        t.kill(NodeId(2));
        assert!(!t.is_alive(NodeId(2)), "[{name}]");
        assert!(a.send(NodeId(2), TestMsg(1), 8).is_err(), "[{name}]");
        assert!(!b.is_alive(), "[{name}]");
        assert!(
            matches!(
                b.recv_timeout(Duration::from_millis(100)),
                Err(DmvError::NodeFailed(NodeId(2)))
            ),
            "[{name}]"
        );
        // A killed endpoint refuses to originate traffic.
        assert!(
            matches!(b.send(NodeId(1), TestMsg(2), 8), Err(DmvError::NodeFailed(NodeId(2)))),
            "[{name}]"
        );
        t.shutdown();
    }
}

#[test]
fn partition_drops_silently_and_heals() {
    for (name, t) in both() {
        let a = t.register(NodeId(1));
        let b = t.register(NodeId(2));
        t.partition(NodeId(1), NodeId(2));
        // The sender cannot tell: the send succeeds, nothing arrives.
        a.send(NodeId(2), TestMsg(7), 8).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(150)).is_err(), "[{name}]");
        // Symmetric: the reverse direction is cut too.
        b.send(NodeId(1), TestMsg(8), 8).unwrap();
        assert!(a.recv_timeout(Duration::from_millis(150)).is_err(), "[{name}]");
        t.heal(NodeId(1), NodeId(2));
        a.send(NodeId(2), TestMsg(9), 8).unwrap();
        assert_eq!(b.recv_timeout(RECV).unwrap().msg, TestMsg(9), "[{name}]");
        t.shutdown();
    }
}

#[test]
fn broadcast_reaches_all_targets() {
    for (name, t) in both() {
        let _a = t.register(NodeId(1));
        let eps: Vec<_> = (2..6).map(|i| t.register(NodeId(i))).collect();
        let targets: Vec<NodeId> = (2..6).map(NodeId).collect();
        t.broadcast(NodeId(1), &targets, &TestMsg(42), 8);
        for (ep, id) in eps.iter().zip(&targets) {
            let env = ep.recv_timeout(RECV).unwrap();
            assert_eq!(env.msg, TestMsg(42), "[{name}] target {id}");
            assert_eq!(env.from, NodeId(1), "[{name}]");
        }
        // A dead target must not fail the others.
        t.kill(NodeId(3));
        t.broadcast(NodeId(1), &targets, &TestMsg(43), 8);
        for (ep, id) in eps.iter().zip(&targets) {
            if *id == NodeId(3) {
                continue;
            }
            assert_eq!(ep.recv_timeout(RECV).unwrap().msg, TestMsg(43), "[{name}] target {id}");
        }
        t.shutdown();
    }
}

#[test]
fn fifo_per_link() {
    for (name, t) in both() {
        let a = t.register(NodeId(1));
        let b = t.register(NodeId(2));
        for i in 0..200 {
            a.send(NodeId(2), TestMsg(i), 8).unwrap();
        }
        for i in 0..200 {
            assert_eq!(b.recv_timeout(RECV).unwrap().msg, TestMsg(i), "[{name}] at {i}");
        }
        t.shutdown();
    }
}

#[test]
fn reregistration_replaces_endpoint() {
    for (name, t) in both() {
        let a = t.register(NodeId(1));
        let b1 = t.register(NodeId(2));
        a.send(NodeId(2), TestMsg(5), 8).unwrap();
        assert_eq!(b1.recv_timeout(RECV).unwrap().msg, TestMsg(5), "[{name}]");
        // Replace node 2's endpoint (e.g. recovery): the old endpoint
        // goes quiet, the new one receives. Over TCP this exercises
        // reconnect — the old listener is gone, the writer backs off
        // and redials the replacement; a frame written into the dying
        // connection can be lost (as on a real crashed host), so the
        // sender retries until the new endpoint sees it.
        let b2 = t.register(NodeId(2));
        let mut delivered = false;
        for _ in 0..50 {
            a.send(NodeId(2), TestMsg(6), 8).unwrap();
            if let Ok(env) = b2.recv_timeout(Duration::from_millis(200)) {
                assert_eq!(env.msg, TestMsg(6), "[{name}]");
                delivered = true;
                break;
            }
        }
        assert!(delivered, "[{name}] replacement endpoint never received");
        assert!(b1.try_recv().is_none(), "[{name}] old endpoint still receiving");
        t.shutdown();
    }
}

#[test]
fn send_from_without_endpoint() {
    for (name, t) in both() {
        let b = t.register(NodeId(2));
        t.send_from(NodeId(99), NodeId(2), TestMsg(11), 8).unwrap();
        let env = b.recv_timeout(RECV).unwrap();
        assert_eq!(env.from, NodeId(99), "[{name}]");
        t.shutdown();
    }
}

#[test]
fn tcp_backpressure_bounds_the_outbound_queue() {
    // TCP-specific: a dialable but never-accepting destination lets the
    // queue fill; the sender must then fail with backpressure instead
    // of buffering without bound. (Simnet's channels model an infinite
    // switch fabric, so this contract is TCP-only.)
    let t = TcpTransport::new(TcpConfig {
        queue_depth: 4,
        enqueue_timeout: Duration::from_millis(50),
        connect_backoff_base: Duration::from_millis(20),
        connect_backoff_cap: Duration::from_millis(200),
        ..TcpConfig::default()
    });
    let _a = t.register(NodeId(1));
    // A bound-but-unaccepted port: connects may succeed (backlog) but
    // no reader ever drains, so frames pile up in the queue.
    let blackhole = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    t.add_peer(NodeId(2), blackhole.local_addr().unwrap());
    let mut saw_backpressure = false;
    for i in 0..64 {
        match t.send_from(NodeId(1), NodeId(2), TestMsg(i), 8) {
            Ok(()) => {}
            Err(DmvError::Network(e)) => {
                assert!(e.contains("backpressure"), "{e}");
                saw_backpressure = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(saw_backpressure, "queue never filled");
    t.shutdown();
}

#[test]
fn tcp_survives_connection_loss_midstream() {
    // Tear down the receiving endpoint's listener generation mid-flow,
    // then restore it: the link's writer reconnects with backoff, the
    // link comes back, and delivery stays per-link FIFO throughout.
    let t = tcp();
    let a = t.register(NodeId(1));
    let b1 = t.register(NodeId(2));
    a.send(NodeId(2), TestMsg(0), 8).unwrap();
    assert_eq!(b1.recv_timeout(RECV).unwrap().msg, TestMsg(0));
    let b2 = t.register(NodeId(2)); // tears down b1's listener+readers

    // Keep sending with ascending ids until the revived link has
    // demonstrably delivered a stretch of traffic; frames written into
    // the dying connection may be lost (as on a real crashed host).
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sender = {
        let t = t.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 1u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let _ = t.send_from(NodeId(1), NodeId(2), TestMsg(i), 8);
                i += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    let mut got = Vec::new();
    while got.len() < 10 {
        match b2.recv_timeout(RECV) {
            Ok(env) => got.push(env.msg.0),
            Err(e) => panic!("link never recovered: {e} (got {got:?})"),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    sender.join().unwrap();
    let mut sorted = got.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(got, sorted, "reconnect broke per-link FIFO: {got:?}");
    t.shutdown();
}
