//! Statement-based binary log for on-disk tier replication.
//!
//! The Figure 5 baseline keeps a passive spare "updated every 30
//! minutes" from the actives' binlog; fail-over replays the backlog from
//! disk, which is the dominant cost of InnoDB fail-over in Figure 6.

use dmv_common::config::DiskProfile;
use dmv_common::throttle::Throttle;
use dmv_sql::query::Query;
use parking_lot::Mutex;

/// One logged update transaction.
#[derive(Debug, Clone)]
pub struct BinlogRecord {
    /// Dense sequence number.
    pub seq: u64,
    /// The transaction's write statements.
    pub queries: Vec<Query>,
}

/// Append-only statement log with charged sequential reads.
pub struct Binlog {
    records: Mutex<Vec<BinlogRecord>>,
    throttle: Throttle,
    disk: DiskProfile,
}

impl Binlog {
    /// Creates an empty binlog charging reads through `throttle`.
    pub fn new(throttle: Throttle, disk: DiskProfile) -> Self {
        Binlog { records: Mutex::new(Vec::new()), throttle, disk }
    }

    /// Appends one transaction's statements (no fsync: the binlog write
    /// piggybacks on the WAL force in this model). Returns the sequence
    /// number.
    pub fn append(&self, queries: Vec<Query>) -> u64 {
        let mut records = self.records.lock();
        let seq = records.len() as u64;
        records.push(BinlogRecord { seq, queries });
        seq
    }

    /// Records with `seq >= from`, charging one sequential disk read per
    /// record (log replay reads from disk).
    pub fn read_from(&self, from: u64) -> Vec<BinlogRecord> {
        let records = self.records.lock();
        let out: Vec<BinlogRecord> = records.iter().filter(|r| r.seq >= from).cloned().collect();
        drop(records);
        for _ in &out {
            self.throttle.charge(self.disk.seq_read_latency);
        }
        out
    }

    /// Next sequence number to be assigned.
    pub fn head(&self) -> u64 {
        self.records.lock().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read() {
        let log = Binlog::new(
            Throttle::new(dmv_common::clock::SimClock::default(), 1),
            DiskProfile::fast_ssd(),
        );
        assert_eq!(log.head(), 0);
        log.append(vec![]);
        log.append(vec![]);
        assert_eq!(log.head(), 2);
        assert_eq!(log.read_from(1).len(), 1);
        assert_eq!(log.read_from(0)[0].seq, 0);
        assert!(log.read_from(5).is_empty());
    }
}
