//! The on-disk engine: serializable transactions over a bounded buffer
//! pool with charged disk I/O.

use crate::wal::Wal;
use dmv_common::clock::SimClock;
use dmv_common::config::{CpuProfile, DiskProfile};
use dmv_common::error::DmvResult;
use dmv_common::ids::NodeId;
use dmv_common::throttle::Throttle;
use dmv_memdb::{MemDb, MemDbOptions};
use dmv_pagestore::store::Residency;
use dmv_sql::exec::{ExecRunner, RecordingRunner, ResultSet, StatementRunner};
use dmv_sql::query::{Query, Select};
use dmv_sql::row::Row;
use dmv_sql::schema::Schema;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Construction options for [`DiskDb`].
#[derive(Debug, Clone)]
pub struct DiskDbOptions {
    /// Node id for transaction ids.
    pub node: NodeId,
    /// Disk latency model.
    pub disk: DiskProfile,
    /// CPU cost model.
    pub cpu: CpuProfile,
    /// Clock charging modeled costs.
    pub clock: SimClock,
    /// Buffer pool capacity in pages; misses charge a random read.
    pub buffer_pages: usize,
    /// Lock wait timeout (wall time).
    pub lock_timeout: Duration,
}

impl Default for DiskDbOptions {
    fn default() -> Self {
        DiskDbOptions {
            node: NodeId(0),
            disk: DiskProfile::commodity_2007(),
            cpu: CpuProfile::zero(),
            clock: SimClock::default(),
            buffer_pages: 256,
            lock_timeout: Duration::from_millis(250),
        }
    }
}

/// Canonical digest over table contents: per table (in the given
/// order), row representations are sorted — physical row order never
/// matters — and folded with FNV-1a. Two databases holding the same
/// logical state produce the same digest regardless of engine, page
/// layout or insertion order; this is the primitive behind cross-tier
/// state audits (in-memory replicas vs. on-disk backends).
pub fn rows_digest<'a>(tables: impl IntoIterator<Item = (u16, &'a [Row])>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut fold = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for (table, rows) in tables {
        fold(&table.to_le_bytes());
        let mut reprs: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
        reprs.sort_unstable();
        for r in reprs {
            fold(r.as_bytes());
            fold(&[0xff]);
        }
    }
    h
}

/// An InnoDB-like on-disk database: page storage with a bounded buffer
/// pool, strict two-phase locking (serializable), and a WAL forced at
/// commit.
///
/// Heap/index mechanics are shared with the in-memory engine; the
/// difference is the cost model. A buffer miss (non-resident page)
/// charges [`DiskProfile::read_latency`]; each committed write
/// transaction charges one [`DiskProfile::fsync_latency`]; capacity is
/// enforced by evicting pages after each transaction.
pub struct DiskDb {
    inner: MemDb,
    disk_arm: Throttle,
    wal: Wal,
    clock: SimClock,
    buffer_pages: usize,
    evict_epoch: AtomicU64,
    /// Fault-injection gate: while true, transactions block at entry —
    /// a wedged disk tier. Callers must unstall before shutdown or any
    /// drain, or the feed thread blocks forever.
    stalled: Mutex<bool>,
    stall_cv: Condvar,
}

impl DiskDb {
    /// Creates an empty on-disk database for `schema`.
    pub fn new(schema: Schema, opts: DiskDbOptions) -> Self {
        // One disk arm per node: buffer misses, WAL forces and log
        // replays all contend for it.
        let disk_arm = Throttle::new(opts.clock, 1);
        let wal_arm = disk_arm.clone();
        let residency = Residency::with_throttle(disk_arm.clone(), opts.disk.read_latency);
        let inner = MemDb::new(
            schema,
            MemDbOptions {
                node: opts.node,
                residency,
                cpu: opts.cpu,
                clock: opts.clock,
                lock_timeout: opts.lock_timeout,
                cpu_permits: 2,
            },
        );
        DiskDb {
            inner,
            disk_arm,
            wal: Wal::new(wal_arm, opts.disk),
            clock: opts.clock,
            buffer_pages: opts.buffer_pages,
            evict_epoch: AtomicU64::new(0),
            stalled: Mutex::new(false),
            stall_cv: Condvar::new(),
        }
    }

    /// Stalls (`true`) or resumes (`false`) the engine: while stalled,
    /// every transaction blocks at entry, modeling an I/O-wedged backend.
    pub fn set_stalled(&self, stalled: bool) {
        *self.stalled.lock().expect("stall gate poisoned") = stalled;
        self.stall_cv.notify_all();
    }

    fn wait_unstalled(&self) {
        let mut g = self.stalled.lock().expect("stall gate poisoned");
        while *g {
            g = self.stall_cv.wait(g).expect("stall gate poisoned");
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    /// The WAL (for recovery tests and fail-over replay).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The node's disk throttle (shared by buffer pool and logs).
    pub fn disk_arm(&self) -> Throttle {
        self.disk_arm.clone()
    }

    /// The engine's clock.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Buffer misses taken so far.
    pub fn buffer_misses(&self) -> u64 {
        self.inner.store().fault_count()
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.store().resident_count()
    }

    /// Total pages in the database.
    pub fn total_pages(&self) -> usize {
        self.inner.store().len()
    }

    /// Executes one transaction driven by a statement closure under
    /// strict 2PL; commits with a WAL force if it wrote anything.
    /// Returns the write statements that were logged.
    ///
    /// # Errors
    ///
    /// On any statement error the transaction is rolled back and the
    /// error returned (retryable errors are worth retrying).
    pub fn run_with(
        &self,
        f: &mut dyn FnMut(&mut dyn StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<Vec<Query>> {
        self.wait_unstalled();
        let mut txn = self.inner.begin_update();
        let writes = {
            let mut er = ExecRunner::new(&mut txn);
            let mut rec = RecordingRunner::new(&mut er);
            match f(&mut rec) {
                Ok(()) => rec.writes,
                Err(e) => {
                    drop(rec);
                    txn.abort();
                    return Err(e);
                }
            }
        };
        let wrote = txn.has_writes();
        let id = txn.id();
        if wrote {
            self.wal.append(id, writes.clone());
        }
        txn.commit(None);
        self.enforce_capacity();
        Ok(writes)
    }

    /// Batch form of [`DiskDb::run_with`]: executes the statements in
    /// order and returns their results.
    ///
    /// # Errors
    ///
    /// Same as [`DiskDb::run_with`].
    pub fn execute_txn(&self, queries: &[Query]) -> DmvResult<Vec<ResultSet>> {
        let mut results = Vec::with_capacity(queries.len());
        self.run_with(&mut |r| {
            for q in queries {
                results.push(r.run(q)?);
            }
            Ok(())
        })?;
        Ok(results)
    }

    /// Replays previously logged statements (recovery / spare refresh);
    /// identical to [`DiskDb::execute_txn`] per record.
    ///
    /// # Errors
    ///
    /// Propagates the first replay failure.
    pub fn replay<'a>(&self, batches: impl IntoIterator<Item = &'a [Query]>) -> DmvResult<usize> {
        let mut n = 0;
        for batch in batches {
            self.execute_txn(batch)?;
            n += 1;
        }
        Ok(n)
    }

    /// Bulk-loads rows without WAL forces or per-row charges — database
    /// population, which the paper excludes from measurement.
    ///
    /// # Errors
    ///
    /// Propagates insert errors (duplicate keys, schema violations).
    pub fn bulk_load(
        &self,
        table: dmv_common::ids::TableId,
        rows: &[dmv_sql::Row],
    ) -> DmvResult<()> {
        use dmv_sql::exec::ExecContext;
        for chunk in rows.chunks(512) {
            let mut txn = self.inner.begin_update();
            for row in chunk {
                if let Err(e) = txn.insert(table, row.clone()) {
                    txn.abort();
                    return Err(e);
                }
            }
            txn.commit(None);
        }
        Ok(())
    }

    /// State-audit API: a canonical digest of every table's current
    /// contents (see [`rows_digest`]). Runs as an ordinary read
    /// transaction, so it blocks while the engine is stalled.
    ///
    /// # Errors
    ///
    /// Propagates scan failures (lock timeouts under contention).
    pub fn state_digest(&self) -> DmvResult<u64> {
        let queries: Vec<Query> =
            self.schema().tables().map(|t| Query::Select(Select::scan(t.id))).collect();
        let ids: Vec<u16> = self.schema().tables().map(|t| t.id.0).collect();
        let results = self.execute_txn(&queries)?;
        Ok(rows_digest(ids.iter().copied().zip(results.iter().map(|rs| rs.rows.as_slice()))))
    }

    /// Marks every page resident without charging I/O (a warm start, as
    /// after the paper's excluded cache warm-up period).
    pub fn prewarm(&self) {
        for id in self.inner.store().page_ids() {
            if let Some(c) = self.inner.store().get(id) {
                c.set_resident(true);
            }
        }
    }

    /// Marks every page non-resident (cold start).
    pub fn chill(&self) {
        self.inner.store().evict_all();
    }

    /// Evicts pages down to the buffer pool capacity using a hashed
    /// pseudo-random victim choice (a stand-in for CLOCK; under a
    /// steady working set larger than the pool it yields the same
    /// steady-state miss behaviour).
    fn enforce_capacity(&self) {
        let store = self.inner.store();
        let resident = store.resident_count();
        if resident <= self.buffer_pages {
            return;
        }
        let excess = resident - self.buffer_pages;
        let epoch = self.evict_epoch.fetch_add(1, Ordering::Relaxed); // relaxed-ok: eviction epoch stamp; only relative recency matters
        let mut candidates: Vec<_> = store
            .page_ids()
            .into_iter()
            .filter(|id| store.get(*id).is_some_and(|c| c.is_resident()))
            .collect();
        candidates.sort_by_key(|id| {
            let mut h = DefaultHasher::new();
            (id, epoch).hash(&mut h);
            h.finish()
        });
        for id in candidates.into_iter().take(excess) {
            if let Some(c) = store.get(id) {
                c.set_resident(false);
            }
        }
    }
}

impl std::fmt::Debug for DiskDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskDb")
            .field("pages", &self.total_pages())
            .field("resident", &self.resident_pages())
            .field("wal_records", &self.wal.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::ids::TableId;
    use dmv_sql::query::{Access, Expr, Select, SetExpr};
    use dmv_sql::schema::{ColType, Column, IndexDef, TableSchema};
    use dmv_sql::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![TableSchema::new(
            TableId(0),
            "kv",
            vec![Column::new("k", ColType::Int), Column::new("v", ColType::Str)],
            vec![IndexDef::unique("pk", vec![0])],
        )])
    }

    fn insert(k: i64, v: &str) -> Query {
        Query::Insert { table: TableId(0), rows: vec![vec![k.into(), v.into()]] }
    }

    #[test]
    fn txn_executes_and_logs() {
        let db = DiskDb::new(schema(), DiskDbOptions::default());
        db.execute_txn(&[insert(1, "a"), insert(2, "b")]).unwrap();
        assert_eq!(db.wal().len(), 1);
        let rs = db.execute_txn(&[Query::Select(Select::scan(TableId(0)))]).unwrap();
        assert_eq!(rs[0].rows.len(), 2);
        // read-only transactions do not force the log
        assert_eq!(db.wal().len(), 1);
    }

    #[test]
    fn failed_statement_rolls_back_whole_txn() {
        let db = DiskDb::new(schema(), DiskDbOptions::default());
        db.execute_txn(&[insert(1, "a")]).unwrap();
        let err = db.execute_txn(&[insert(2, "b"), insert(1, "dup")]).unwrap_err();
        assert!(matches!(err, dmv_common::DmvError::DuplicateKey(_)));
        let rs = db.execute_txn(&[Query::Select(Select::scan(TableId(0)))]).unwrap();
        assert_eq!(rs[0].rows.len(), 1, "partial transaction must not persist");
    }

    #[test]
    fn recovery_replays_wal_into_fresh_db() {
        let db = DiskDb::new(schema(), DiskDbOptions::default());
        db.execute_txn(&[insert(1, "a")]).unwrap();
        db.execute_txn(&[insert(2, "b")]).unwrap();
        db.execute_txn(&[Query::Update {
            table: TableId(0),
            access: Access::Auto,
            filter: Some(Expr::eq(0, 1)),
            set: vec![(1, SetExpr::Value("a2".into()))],
        }])
        .unwrap();

        let recovered = DiskDb::new(schema(), DiskDbOptions::default());
        let records = db.wal().read_from(0);
        let batches: Vec<&[Query]> = records.iter().map(|r| r.queries.as_slice()).collect();
        assert_eq!(recovered.replay(batches).unwrap(), 3);
        let rs = recovered
            .execute_txn(&[Query::Select(Select::by_pk(TableId(0), vec![1.into()]))])
            .unwrap();
        assert_eq!(rs[0].rows[0][1], Value::from("a2"));
    }

    #[test]
    fn buffer_pool_capacity_enforced() {
        // A compressed clock keeps the 2000 charged fsyncs cheap.
        let clock = SimClock::new(dmv_common::clock::TimeScale::new(1e-6));
        let opts = DiskDbOptions { buffer_pages: 4, clock, ..Default::default() };
        let db = DiskDb::new(schema(), opts);
        // Enough rows to allocate well over 4 pages.
        for i in 0..2000i64 {
            db.execute_txn(&[insert(i, "some-padding-value-to-grow-pages")]).unwrap();
        }
        assert!(db.total_pages() > 8, "want many pages, got {}", db.total_pages());
        assert!(db.resident_pages() <= 4, "resident {} > capacity", db.resident_pages());
        let before = db.buffer_misses();
        let _ = db.execute_txn(&[Query::Select(Select::scan(TableId(0)))]).unwrap();
        assert!(db.buffer_misses() > before, "scan over a tiny pool must miss");
    }

    #[test]
    fn state_digest_is_order_insensitive_and_content_sensitive() {
        let a = DiskDb::new(schema(), DiskDbOptions::default());
        let b = DiskDb::new(schema(), DiskDbOptions::default());
        a.execute_txn(&[insert(1, "x")]).unwrap();
        a.execute_txn(&[insert(2, "y")]).unwrap();
        b.execute_txn(&[insert(2, "y")]).unwrap();
        b.execute_txn(&[insert(1, "x")]).unwrap();
        assert_eq!(a.state_digest().unwrap(), b.state_digest().unwrap());
        b.execute_txn(&[insert(3, "z")]).unwrap();
        assert_ne!(a.state_digest().unwrap(), b.state_digest().unwrap());
    }

    #[test]
    fn stall_blocks_transactions_until_resumed() {
        let db = std::sync::Arc::new(DiskDb::new(schema(), DiskDbOptions::default()));
        db.set_stalled(true);
        let db2 = std::sync::Arc::clone(&db);
        let h = std::thread::spawn(move || db2.execute_txn(&[insert(1, "a")]).is_ok());
        std::thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "transaction ran through a stalled engine");
        db.set_stalled(false);
        assert!(h.join().unwrap());
    }

    #[test]
    fn prewarm_and_chill() {
        let db = DiskDb::new(schema(), DiskDbOptions::default());
        db.execute_txn(&[insert(1, "a")]).unwrap();
        db.chill();
        assert_eq!(db.resident_pages(), 0);
        db.prewarm();
        assert_eq!(db.resident_pages(), db.total_pages());
    }
}
