//! # dmv-ondisk
//!
//! The on-disk database engine — this reproduction's analogue of the
//! paper's **MySQL/InnoDB** back-end, used three ways:
//!
//! 1. as the stand-alone baseline of Figure 3 (serializable concurrency
//!    control, buffer pool, WAL with commit-time fsync);
//! 2. as the replicated on-disk tier of the Figure 5/6 fail-over
//!    baseline (eager actives + periodically refreshed passive spare,
//!    binlog replay on fail-over — see [`tier::InnoDbTier`]);
//! 3. as the persistence back-end of the DMV middleware (paper §4.6).
//!
//! Storage reuses the page/heap/B+Tree machinery of `dmv-memdb`; what
//! makes it "on disk" is the cost model: a bounded **buffer pool** whose
//! misses charge a simulated random-read latency, commit-time **fsync**,
//! and sequential-read charges for WAL/binlog replay. The disk itself is
//! simulated (an in-process latency model) because the authors' hardware
//! is unavailable; the *ratios* between disk, network and CPU costs are
//! what the reproduced figures depend on.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod binlog;
pub mod engine;
pub mod tier;
pub mod wal;

pub use binlog::{Binlog, BinlogRecord};
pub use engine::{rows_digest, DiskDb, DiskDbOptions};
pub use tier::InnoDbTier;
pub use wal::{Wal, WalRecord};
