//! The replicated on-disk tier used as the fail-over baseline
//! (Figures 5(a), 5(b) and the InnoDB bars of Figure 6).
//!
//! Two (or more) active replicas are kept consistent by a conflict-aware
//! scheduler (modeled here as eager write application to every active);
//! a passive spare is refreshed from the statement binlog on a long
//! period ("every 30 minutes"). On an active's failure the spare is
//! promoted by replaying its binlog backlog from disk — the slow **DB
//! Update** phase — after which its cold buffer pool warms up under
//! production traffic (**Cache Warmup**).

use crate::binlog::Binlog;
use crate::engine::{DiskDb, DiskDbOptions};
use dmv_common::clock::SimClock;
use dmv_common::error::{DmvError, DmvResult};
use dmv_sql::exec::ResultSet;
use dmv_sql::query::Query;
use dmv_sql::schema::Schema;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Paper-time durations of the fail-over phases (Figure 6's bars).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FailoverBreakdown {
    /// Cleanup/abort handling before replay starts.
    pub recovery: Duration,
    /// Log replay to bring the backup up to date ("DB Update").
    pub db_update: Duration,
}

/// A replicated InnoDB-style tier: N actives + 1 passive spare.
pub struct InnoDbTier {
    actives: Vec<Arc<DiskDb>>,
    active_alive: Vec<std::sync::atomic::AtomicBool>,
    spare: Arc<DiskDb>,
    spare_active: std::sync::atomic::AtomicBool,
    spare_applied: AtomicU64,
    binlog: Binlog,
    rr: AtomicUsize,
    clock: SimClock,
}

impl InnoDbTier {
    /// Builds a tier of `n_actives` actives plus one spare, all empty.
    ///
    /// # Panics
    ///
    /// Panics if `n_actives` is zero.
    pub fn new(schema: Schema, n_actives: usize, opts: DiskDbOptions) -> Self {
        assert!(n_actives > 0, "need at least one active replica");
        let actives: Vec<Arc<DiskDb>> =
            (0..n_actives).map(|_| Arc::new(DiskDb::new(schema.clone(), opts.clone()))).collect();
        InnoDbTier {
            active_alive: (0..n_actives)
                .map(|_| std::sync::atomic::AtomicBool::new(true))
                .collect(),
            actives,
            spare: Arc::new(DiskDb::new(schema, opts.clone())),
            spare_active: std::sync::atomic::AtomicBool::new(false),
            spare_applied: AtomicU64::new(0),
            binlog: Binlog::new(dmv_common::throttle::Throttle::new(opts.clock, 1), opts.disk),
            rr: AtomicUsize::new(0),
            clock: opts.clock,
        }
    }

    fn alive_actives(&self) -> Vec<Arc<DiskDb>> {
        let mut v: Vec<Arc<DiskDb>> = self
            .actives
            .iter()
            .zip(&self.active_alive)
            .filter(|(_, a)| a.load(Ordering::Acquire))
            .map(|(db, _)| Arc::clone(db))
            .collect();
        if self.spare_active.load(Ordering::Acquire) {
            v.push(Arc::clone(&self.spare));
        }
        v
    }

    /// Number of replicas currently serving reads.
    pub fn serving_count(&self) -> usize {
        self.alive_actives().len()
    }

    /// Executes an update transaction eagerly on every alive active (the
    /// conflict-aware scheduler keeps actives consistent) and logs it.
    ///
    /// # Errors
    ///
    /// Fails if no active is alive or any replica rejects the statements.
    pub fn execute_update(&self, queries: &[Query]) -> DmvResult<Vec<ResultSet>> {
        let actives = self.alive_actives();
        if actives.is_empty() {
            return Err(DmvError::NoReplicaAvailable);
        }
        let mut first = None;
        for db in &actives {
            let rs = db.execute_txn(queries)?;
            if first.is_none() {
                first = Some(rs);
            }
        }
        self.binlog.append(queries.iter().filter(|q| q.is_write()).cloned().collect());
        Ok(first.expect("at least one active executed"))
    }

    /// Executes a read-only transaction on one alive replica (round
    /// robin).
    ///
    /// # Errors
    ///
    /// Fails if no replica is alive.
    pub fn execute_read(&self, queries: &[Query]) -> DmvResult<Vec<ResultSet>> {
        let actives = self.alive_actives();
        if actives.is_empty() {
            return Err(DmvError::NoReplicaAvailable);
        }
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % actives.len(); // relaxed-ok: round-robin pick; any interleaving is a valid rotation
        actives[i].execute_txn(queries)
    }

    /// Closure form of [`InnoDbTier::execute_update`]: the closure runs
    /// on one active; its recorded write statements are then replayed on
    /// the other actives (keeping them consistent) and binlogged.
    ///
    /// # Errors
    ///
    /// Fails if no active is alive or any replica rejects a statement.
    pub fn update_with(
        &self,
        f: &mut dyn FnMut(&mut dyn dmv_sql::StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<()> {
        let actives = self.alive_actives();
        if actives.is_empty() {
            return Err(DmvError::NoReplicaAvailable);
        }
        let writes = actives[0].run_with(f)?;
        for db in &actives[1..] {
            db.execute_txn(&writes)?;
        }
        self.binlog.append(writes);
        Ok(())
    }

    /// Closure form of [`InnoDbTier::execute_read`].
    ///
    /// # Errors
    ///
    /// Fails if no replica is alive.
    pub fn read_with(
        &self,
        f: &mut dyn FnMut(&mut dyn dmv_sql::StatementRunner) -> DmvResult<()>,
    ) -> DmvResult<()> {
        let actives = self.alive_actives();
        if actives.is_empty() {
            return Err(DmvError::NoReplicaAvailable);
        }
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % actives.len(); // relaxed-ok: round-robin pick; any interleaving is a valid rotation
        actives[i].run_with(f).map(|_| ())
    }

    /// Refreshes the passive spare from the binlog (the periodic
    /// "updated every 30 minutes" maintenance). Returns how many
    /// transactions were applied.
    ///
    /// # Errors
    ///
    /// Propagates replay failures.
    pub fn refresh_spare(&self) -> DmvResult<usize> {
        let from = self.spare_applied.load(Ordering::Acquire);
        let records = self.binlog.read_from(from);
        let n = records.len();
        for r in &records {
            self.spare.execute_txn(&r.queries)?;
        }
        self.spare_applied.store(from + n as u64, Ordering::Release);
        Ok(n)
    }

    /// Kills active `i` (fail-stop).
    pub fn kill_active(&self, i: usize) {
        self.active_alive[i].store(false, Ordering::Release);
    }

    /// Promotes the spare after a failure: replays the binlog backlog
    /// from disk, then adds the spare (cold) to the serving set.
    ///
    /// Updates that commit *during* the replay are appended to the
    /// binlog and picked up by the next [`InnoDbTier::refresh_spare`];
    /// a production deployment closes this window with a final
    /// catch-up round before serving — elided here because the
    /// fail-over experiments measure throughput shape, not the spare's
    /// read freshness.
    ///
    /// # Errors
    ///
    /// Propagates replay failures.
    pub fn failover(&self) -> DmvResult<FailoverBreakdown> {
        let t0 = self.clock.now_paper();
        // Recovery phase: in the on-disk tier, in-flight transactions on
        // the failed node are simply lost connections; nothing to clean.
        let recovery = Duration::ZERO;
        self.refresh_spare()?;
        let db_update = self.clock.now_paper() - t0;
        self.spare_active.store(true, Ordering::Release);
        Ok(FailoverBreakdown { recovery, db_update })
    }

    /// Bulk-loads rows into every replica, including the spare (initial
    /// population, excluded from measurement).
    ///
    /// # Errors
    ///
    /// Propagates insert errors.
    pub fn bulk_load(
        &self,
        table: dmv_common::ids::TableId,
        rows: &[dmv_sql::Row],
    ) -> DmvResult<()> {
        for db in &self.actives {
            db.bulk_load(table, rows)?;
        }
        self.spare.bulk_load(table, rows)?;
        // The spare is "up to date" with the initial image.
        self.spare_applied.store(self.binlog.head(), Ordering::Release);
        Ok(())
    }

    /// The spare database (for inspection/warming in experiments).
    pub fn spare(&self) -> &Arc<DiskDb> {
        &self.spare
    }

    /// An active database by index (for inspection).
    pub fn active(&self, i: usize) -> &Arc<DiskDb> {
        &self.actives[i]
    }
}

impl std::fmt::Debug for InnoDbTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InnoDbTier")
            .field("actives", &self.actives.len())
            .field("serving", &self.serving_count())
            .field("binlog_head", &self.binlog.head())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::ids::TableId;
    use dmv_sql::query::Select;
    use dmv_sql::schema::{ColType, Column, IndexDef, TableSchema};

    fn schema() -> Schema {
        Schema::new(vec![TableSchema::new(
            TableId(0),
            "kv",
            vec![Column::new("k", ColType::Int), Column::new("v", ColType::Str)],
            vec![IndexDef::unique("pk", vec![0])],
        )])
    }

    fn insert(k: i64) -> Query {
        Query::Insert { table: TableId(0), rows: vec![vec![k.into(), "v".into()]] }
    }

    fn scan() -> Query {
        Query::Select(Select::scan(TableId(0)))
    }

    #[test]
    fn updates_reach_all_actives() {
        let tier = InnoDbTier::new(schema(), 2, DiskDbOptions::default());
        tier.execute_update(&[insert(1)]).unwrap();
        tier.execute_update(&[insert(2)]).unwrap();
        for i in 0..2 {
            let rs = tier.active(i).execute_txn(&[scan()]).unwrap();
            assert_eq!(rs[0].rows.len(), 2, "active {i}");
        }
        // spare is stale until refreshed
        assert_eq!(tier.spare().execute_txn(&[scan()]).unwrap()[0].rows.len(), 0);
        tier.refresh_spare().unwrap();
        assert_eq!(tier.spare().execute_txn(&[scan()]).unwrap()[0].rows.len(), 2);
    }

    #[test]
    fn reads_round_robin_and_survive_failure() {
        let tier = InnoDbTier::new(schema(), 2, DiskDbOptions::default());
        tier.execute_update(&[insert(1)]).unwrap();
        for _ in 0..4 {
            assert_eq!(tier.execute_read(&[scan()]).unwrap()[0].rows.len(), 1);
        }
        tier.kill_active(0);
        assert_eq!(tier.serving_count(), 1);
        assert_eq!(tier.execute_read(&[scan()]).unwrap()[0].rows.len(), 1);
    }

    #[test]
    fn failover_replays_backlog_and_promotes() {
        let tier = InnoDbTier::new(schema(), 2, DiskDbOptions::default());
        for k in 0..20 {
            tier.execute_update(&[insert(k)]).unwrap();
        }
        tier.kill_active(0);
        let breakdown = tier.failover().unwrap();
        assert_eq!(tier.serving_count(), 2, "spare promoted");
        assert!(breakdown.db_update > Duration::ZERO);
        assert_eq!(tier.spare().execute_txn(&[scan()]).unwrap()[0].rows.len(), 20);
    }

    #[test]
    fn no_replicas_available_error() {
        let tier = InnoDbTier::new(schema(), 1, DiskDbOptions::default());
        tier.kill_active(0);
        assert!(matches!(tier.execute_read(&[scan()]), Err(DmvError::NoReplicaAvailable)));
        assert!(matches!(tier.execute_update(&[insert(1)]), Err(DmvError::NoReplicaAvailable)));
    }
}
