//! Write-ahead log with commit-time fsync and sequential replay.

use dmv_common::config::DiskProfile;
use dmv_common::ids::TxnId;
use dmv_common::throttle::Throttle;
use dmv_sql::query::Query;
use parking_lot::Mutex;

/// One committed transaction's statements.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Log sequence number (dense from 0).
    pub lsn: u64,
    /// Committing transaction.
    pub txn: TxnId,
    /// The write statements, in execution order.
    pub queries: Vec<Query>,
}

/// Statement-level write-ahead log.
///
/// Appending charges the fsync latency (the commit-path disk force);
/// reading for replay charges a sequential-read latency per record.
pub struct Wal {
    records: Mutex<Vec<WalRecord>>,
    throttle: Throttle,
    disk: DiskProfile,
}

impl Wal {
    /// Creates an empty log charging through `throttle` (the node's
    /// single disk arm, typically shared with the buffer pool).
    pub fn new(throttle: Throttle, disk: DiskProfile) -> Self {
        Wal { records: Mutex::new(Vec::new()), throttle, disk }
    }

    /// Appends a committed transaction's statements, charging one fsync.
    /// Returns the record's LSN.
    pub fn append(&self, txn: TxnId, queries: Vec<Query>) -> u64 {
        self.throttle.charge(self.disk.fsync_latency);
        let mut records = self.records.lock();
        let lsn = records.len() as u64;
        records.push(WalRecord { lsn, txn, queries });
        lsn
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.records.lock().len() as u64
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Reads records with `lsn >= from`, charging a sequential read per
    /// record (this is the "reading and replaying on-disk logs" cost that
    /// dominates InnoDB fail-over in Figure 6).
    pub fn read_from(&self, from: u64) -> Vec<WalRecord> {
        let records = self.records.lock();
        let out: Vec<WalRecord> = records.iter().filter(|r| r.lsn >= from).cloned().collect();
        drop(records);
        for _ in &out {
            self.throttle.charge(self.disk.seq_read_latency);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::clock::{SimClock, TimeScale};
    use dmv_common::ids::NodeId;
    use std::time::Duration;

    fn txn(n: u64) -> TxnId {
        TxnId::new(NodeId(0), n)
    }

    fn throttle() -> Throttle {
        Throttle::new(SimClock::default(), 1)
    }

    #[test]
    fn append_assigns_dense_lsns() {
        let wal = Wal::new(throttle(), DiskProfile::fast_ssd());
        assert_eq!(wal.append(txn(1), vec![]), 0);
        assert_eq!(wal.append(txn(2), vec![]), 1);
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
    }

    #[test]
    fn read_from_filters() {
        let wal = Wal::new(throttle(), DiskProfile::fast_ssd());
        for i in 0..5 {
            wal.append(txn(i), vec![]);
        }
        let tail = wal.read_from(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].lsn, 3);
    }

    #[test]
    fn append_charges_fsync() {
        let clock = SimClock::new(TimeScale::new(0.001));
        let mut disk = DiskProfile::fast_ssd();
        disk.fsync_latency = Duration::from_secs(5); // -> 5 wall-ms
        let wal = Wal::new(Throttle::new(clock, 1), disk);
        let t0 = std::time::Instant::now();
        wal.append(txn(0), vec![]);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
