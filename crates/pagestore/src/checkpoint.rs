//! Fuzzy checkpointing (paper §4.4).
//!
//! At regular intervals each slave persists every page's current contents
//! together with its current version to local stable storage. The flush
//! of one page and its version is atomic (here: under the page's read
//! latch), but the checkpoint is **fuzzy**: it is synchronous neither
//! across pages nor across replicas — in-memory DMV replicas routinely
//! hold pages at different versions, so a mixed-version snapshot is a
//! perfectly valid starting point for reintegration. Dirty (uncommitted)
//! pages are skipped.

use crate::page::Page;
use crate::store::PageStore;
use dmv_common::ids::PageId;
use std::collections::HashMap;
use std::time::Duration;

/// A checkpoint: per-page (version, image) snapshots plus the paper time
/// at which it was taken.
#[derive(Debug, Clone, Default)]
pub struct CheckpointImage {
    pages: HashMap<PageId, (u64, Vec<u8>)>,
    taken_at: Duration,
}

impl CheckpointImage {
    /// An empty checkpoint (a node that never checkpointed: worst case
    /// for reintegration, every page must be transferred).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Paper time at which the checkpoint was taken.
    pub fn taken_at(&self) -> Duration {
        self.taken_at
    }

    /// Number of pages captured.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages were captured.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Per-page versions — what a reintegrating node sends to its support
    /// slave so only newer pages are transferred back.
    pub fn page_versions(&self) -> HashMap<PageId, u64> {
        self.pages.iter().map(|(id, (v, _))| (*id, *v)).collect()
    }

    /// Version recorded for one page, if captured.
    pub fn version_of(&self, id: PageId) -> Option<u64> {
        self.pages.get(&id).map(|(v, _)| *v)
    }

    /// Restores the checkpoint into `store`. Restored pages are marked
    /// non-resident when `resident` is false (they live on the recovering
    /// node's disk until first touch).
    pub fn restore_into(&self, store: &PageStore, resident: bool) {
        for (id, (version, image)) in &self.pages {
            let cell = store.get_or_create(*id);
            let mut page = cell.latch.write();
            *page = Page::from_image(*version, image.clone());
            drop(page);
            cell.set_resident(resident);
        }
    }

    /// Total bytes of page images held.
    pub fn byte_size(&self) -> usize {
        self.pages.values().map(|(_, img)| img.len()).sum()
    }
}

/// Takes a fuzzy checkpoint of `store` at paper time `now`.
///
/// Pages are captured one at a time under their read latch; dirty pages
/// (uncommitted master-side modifications) are skipped. The system keeps
/// running — no quiescence is required.
pub fn fuzzy_checkpoint(store: &PageStore, now: Duration) -> CheckpointImage {
    let mut pages = HashMap::new();
    for id in store.page_ids() {
        let Some(cell) = store.get(id) else { continue };
        if cell.is_dirty() {
            continue;
        }
        let page = cell.latch.read();
        pages.insert(id, (page.version, page.to_image()));
    }
    CheckpointImage { pages, taken_at: now }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::ids::{PageSpace, TableId};

    fn store_with_pages(n: u32) -> PageStore {
        let s = PageStore::new_free();
        for i in 0..n {
            let (_, cell) = s.allocate(TableId(0), PageSpace::Heap);
            let mut p = cell.latch.write();
            p.version = u64::from(i) + 1;
            p.data_mut()[0] = i as u8;
        }
        s
    }

    #[test]
    fn checkpoint_captures_versions_and_images() {
        let s = store_with_pages(4);
        let ck = fuzzy_checkpoint(&s, Duration::from_secs(10));
        assert_eq!(ck.len(), 4);
        assert_eq!(ck.taken_at(), Duration::from_secs(10));
        assert_eq!(ck.version_of(PageId::heap(TableId(0), 2)), Some(3));
        assert_eq!(ck.byte_size(), 4 * crate::PAGE_SIZE);
    }

    #[test]
    fn dirty_pages_are_skipped() {
        let s = store_with_pages(3);
        s.get(PageId::heap(TableId(0), 1)).unwrap().set_dirty(true);
        let ck = fuzzy_checkpoint(&s, Duration::ZERO);
        assert_eq!(ck.len(), 2);
        assert_eq!(ck.version_of(PageId::heap(TableId(0), 1)), None);
    }

    #[test]
    fn restore_reproduces_state() {
        let s = store_with_pages(3);
        let ck = fuzzy_checkpoint(&s, Duration::ZERO);
        let t = PageStore::new_free();
        ck.restore_into(&t, false);
        assert_eq!(t.len(), 3);
        for i in 0..3u32 {
            let cell = t.get(PageId::heap(TableId(0), i)).unwrap();
            assert!(!cell.is_resident(), "restored pages start cold");
            let p = cell.latch.read();
            assert_eq!(p.version, u64::from(i) + 1);
            assert_eq!(p.data()[0], i as u8);
        }
    }

    #[test]
    fn restore_resident_flag() {
        let s = store_with_pages(1);
        let ck = fuzzy_checkpoint(&s, Duration::ZERO);
        let t = PageStore::new_free();
        ck.restore_into(&t, true);
        assert_eq!(t.resident_count(), 1);
    }

    #[test]
    fn page_versions_map() {
        let s = store_with_pages(2);
        let ck = fuzzy_checkpoint(&s, Duration::ZERO);
        let vs = ck.page_versions();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[&PageId::heap(TableId(0), 0)], 1);
    }

    #[test]
    fn empty_checkpoint() {
        let ck = CheckpointImage::empty();
        assert!(ck.is_empty());
        assert_eq!(ck.page_versions().len(), 0);
    }
}
