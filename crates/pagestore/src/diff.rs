//! Byte-range page diffs — the "per-page modification encodings" of the
//! paper's redo log and write-set messages.
//!
//! A master computes the diff between a page's before- and after-image at
//! pre-commit; slaves apply the diff to their own copy of the page. Runs
//! of changed bytes separated by fewer than [`MERGE_GAP`] unchanged bytes
//! are coalesced to amortize per-run overhead.

use crate::page::PAGE_SIZE;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::wire::{put_u16, Reader, Wire};
use serde::{Deserialize, Serialize};

/// Unchanged-byte gaps up to this length are swallowed into one run.
const MERGE_GAP: usize = 8;

/// Word width of the fast comparison path in [`PageDiff::compute`].
const WORD: usize = 8;

/// Per-run wire overhead (`u16` offset + `u16` length).
const RUN_HEADER: usize = 4;

/// Wire overhead of the diff itself (`u16` run count).
const DIFF_HEADER: usize = 2;

/// A single contiguous run of modified bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffRun {
    /// Byte offset within the page.
    pub offset: u16,
    /// Replacement bytes.
    pub bytes: Vec<u8>,
}

/// A byte-range diff between two images of the same page.
///
/// ```
/// use dmv_pagestore::diff::PageDiff;
///
/// let before = vec![0u8; dmv_pagestore::PAGE_SIZE];
/// let mut after = before.clone();
/// after[100] = 7;
/// after[101] = 8;
/// let d = PageDiff::compute(&before, &after);
/// let mut target = before.clone();
/// d.apply(&mut target);
/// assert_eq!(target, after);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageDiff {
    runs: Vec<DiffRun>,
}

impl PageDiff {
    /// Computes the diff turning `before` into `after`.
    ///
    /// Scans the images [`WORD`] bytes at a time and descends to byte
    /// granularity only inside words that differ, so the common case —
    /// pages that are mostly unchanged — costs one `u64` compare per
    /// eight bytes. Produces output identical to
    /// [`compute_bytewise`](Self::compute_bytewise) (proptest-checked):
    /// a change merges into the previous run iff it starts no more than
    /// `MERGE_GAP + 1` bytes past the run's last changed byte.
    ///
    /// # Panics
    ///
    /// Panics if the images are not both [`PAGE_SIZE`] bytes.
    pub fn compute(before: &[u8], after: &[u8]) -> Self {
        assert_eq!(before.len(), PAGE_SIZE, "before image must be a full page");
        assert_eq!(after.len(), PAGE_SIZE, "after image must be a full page");
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut i = next_changed(before, after, 0);
        while i < PAGE_SIZE {
            let start = i;
            let mut last_change = i;
            loop {
                let j = next_changed(before, after, last_change + 1);
                if j < PAGE_SIZE && j - last_change <= MERGE_GAP + 1 {
                    last_change = j;
                } else {
                    let run_end = last_change + 1;
                    runs.push(DiffRun {
                        offset: start as u16,
                        bytes: after[start..run_end].to_vec(),
                    });
                    i = j;
                    break;
                }
            }
        }
        PageDiff { runs }
    }

    /// Byte-at-a-time reference implementation of [`compute`](Self::compute).
    ///
    /// Kept public as the specification the word-wise scanner is tested
    /// against (and as the baseline in the diff micro-benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if the images are not both [`PAGE_SIZE`] bytes.
    pub fn compute_bytewise(before: &[u8], after: &[u8]) -> Self {
        assert_eq!(before.len(), PAGE_SIZE, "before image must be a full page");
        assert_eq!(after.len(), PAGE_SIZE, "after image must be a full page");
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut i = 0usize;
        while i < PAGE_SIZE {
            if before[i] == after[i] {
                i += 1;
                continue;
            }
            // Start of a changed run; extend while changed or gap < MERGE_GAP.
            let start = i;
            let mut end = i + 1;
            let mut last_change = i;
            while end < PAGE_SIZE {
                if before[end] != after[end] {
                    last_change = end;
                    end += 1;
                } else if end - last_change <= MERGE_GAP {
                    end += 1;
                } else {
                    break;
                }
            }
            let run_end = last_change + 1;
            runs.push(DiffRun { offset: start as u16, bytes: after[start..run_end].to_vec() });
            i = run_end;
        }
        PageDiff { runs }
    }

    /// Diff that replaces the whole page (used for page transfer during
    /// data migration, where no before-image is available).
    ///
    /// # Panics
    ///
    /// Panics if `image` is not [`PAGE_SIZE`] bytes.
    pub fn full(image: &[u8]) -> Self {
        assert_eq!(image.len(), PAGE_SIZE, "image must be a full page");
        PageDiff { runs: vec![DiffRun { offset: 0, bytes: image.to_vec() }] }
    }

    /// Applies the diff to `target` in place.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not [`PAGE_SIZE`] bytes or a run is out of
    /// bounds (which indicates a corrupted diff).
    pub fn apply(&self, target: &mut [u8]) {
        assert_eq!(target.len(), PAGE_SIZE, "target must be a full page");
        for run in &self.runs {
            let start = run.offset as usize;
            let end = start + run.bytes.len();
            target[start..end].copy_from_slice(&run.bytes);
        }
    }

    /// True if the diff changes nothing.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total modified payload bytes.
    pub fn payload_len(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Exact wire size: run-count header, then per-run header plus
    /// payload. Matches [`Wire::encode`] byte for byte, so network
    /// transfer cost is charged on the real frame size.
    pub fn encoded_len(&self) -> usize {
        DIFF_HEADER + self.payload_len() + RUN_HEADER * self.runs.len()
    }

    /// The runs, for inspection.
    pub fn runs(&self) -> &[DiffRun] {
        &self.runs
    }

    /// Builds a diff from explicit runs, validating that every run stays
    /// inside a page — the boundary [`apply`](Self::apply) would
    /// otherwise panic on. This is the only way untrusted (decoded) runs
    /// enter a `PageDiff`.
    pub fn from_runs(runs: Vec<DiffRun>) -> DmvResult<Self> {
        for run in &runs {
            let end = run.offset as usize + run.bytes.len();
            if end > PAGE_SIZE {
                return Err(DmvError::Codec(format!(
                    "diff run at offset {} with {} bytes exceeds page size {PAGE_SIZE}",
                    run.offset,
                    run.bytes.len()
                )));
            }
        }
        Ok(PageDiff { runs })
    }
}

impl Wire for DiffRun {
    fn encoded_len(&self) -> usize {
        RUN_HEADER + self.bytes.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u16(out, self.offset);
        // A run never exceeds PAGE_SIZE bytes, so its length fits u16.
        put_u16(out, self.bytes.len() as u16);
        out.extend_from_slice(&self.bytes);
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        let offset = r.u16()?;
        let len = r.u16()? as usize;
        Ok(DiffRun { offset, bytes: r.bytes(len)?.to_vec() })
    }
}

impl Wire for PageDiff {
    fn encoded_len(&self) -> usize {
        PageDiff::encoded_len(self)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u16(out, self.runs.len() as u16);
        for run in &self.runs {
            run.encode_into(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> DmvResult<Self> {
        let count = r.u16()? as usize;
        let n = r.seq_len(count, RUN_HEADER)?;
        let mut runs = Vec::with_capacity(n);
        for _ in 0..n {
            runs.push(DiffRun::decode(r)?);
        }
        PageDiff::from_runs(runs)
    }
}

/// Index of the first byte at or after `i` where the images differ, or
/// `PAGE_SIZE` if they agree to the end. Compares whole words once `i`
/// is word-aligned; on a word mismatch the first differing byte inside
/// it is located through the XOR of the two words.
fn next_changed(before: &[u8], after: &[u8], mut i: usize) -> usize {
    while i < PAGE_SIZE && !i.is_multiple_of(WORD) {
        if before[i] != after[i] {
            return i;
        }
        i += 1;
    }
    while i + WORD <= PAGE_SIZE {
        let a = u64::from_le_bytes(before[i..i + WORD].try_into().expect("word slice")); // unwrap-ok: slice length is WORD by construction
        let b = u64::from_le_bytes(after[i..i + WORD].try_into().expect("word slice")); // unwrap-ok: slice length is WORD by construction
        let x = a ^ b;
        if x != 0 {
            // from_le_bytes maps byte k of the slice to bits 8k..8k+8,
            // so the lowest set bit identifies the first differing byte.
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += WORD;
    }
    while i < PAGE_SIZE {
        if before[i] != after[i] {
            return i;
        }
        i += 1;
    }
    PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(changes: &[(usize, u8)]) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        for &(i, b) in changes {
            p[i] = b;
        }
        p
    }

    #[test]
    fn identical_pages_empty_diff() {
        let a = page_with(&[(5, 1)]);
        let d = PageDiff::compute(&a, &a);
        assert!(d.is_empty());
        // Even an empty diff carries its run-count header on the wire.
        assert_eq!(d.encoded_len(), 2);
        assert_eq!(Wire::encode(&d).len(), 2);
    }

    #[test]
    fn wire_roundtrip_and_exact_len() {
        let before = page_with(&[]);
        let after = page_with(&[(0, 9), (100, 1), (104, 2), (4000, 3)]);
        for d in [PageDiff::compute(&before, &after), PageDiff::full(&after), PageDiff::default()] {
            let bytes = Wire::encode(&d);
            assert_eq!(bytes.len(), d.encoded_len());
            assert_eq!(dmv_common::wire::decode_exact::<PageDiff>(&bytes).unwrap(), d);
        }
    }

    #[test]
    fn out_of_bounds_run_rejected_at_decode() {
        // A run that would write past the page must be caught at decode
        // time (apply panics on such runs by design).
        let evil = DiffRun { offset: (PAGE_SIZE - 1) as u16, bytes: vec![0; 2] };
        assert!(PageDiff::from_runs(vec![evil.clone()]).is_err());
        let mut bytes = Vec::new();
        put_u16(&mut bytes, 1);
        evil.encode_into(&mut bytes);
        assert!(dmv_common::wire::decode_exact::<PageDiff>(&bytes).is_err());
    }

    #[test]
    fn single_byte_change() {
        let before = page_with(&[]);
        let after = page_with(&[(2048, 99)]);
        let d = PageDiff::compute(&before, &after);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_len(), 1);
        let mut t = before.clone();
        d.apply(&mut t);
        assert_eq!(t, after);
    }

    #[test]
    fn nearby_changes_coalesce() {
        let before = page_with(&[]);
        let after = page_with(&[(100, 1), (104, 2)]); // gap of 3 <= MERGE_GAP
        let d = PageDiff::compute(&before, &after);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_len(), 5);
    }

    #[test]
    fn distant_changes_stay_separate() {
        let before = page_with(&[]);
        let after = page_with(&[(0, 1), (4000, 2)]);
        let d = PageDiff::compute(&before, &after);
        assert_eq!(d.run_count(), 2);
        assert_eq!(d.payload_len(), 2);
    }

    #[test]
    fn change_at_page_boundaries() {
        let before = page_with(&[]);
        let after = page_with(&[(0, 9), (PAGE_SIZE - 1, 9)]);
        let d = PageDiff::compute(&before, &after);
        let mut t = before.clone();
        d.apply(&mut t);
        assert_eq!(t, after);
    }

    #[test]
    fn full_diff_replaces_everything() {
        let img = page_with(&[(1, 1), (2, 2), (4095, 3)]);
        let d = PageDiff::full(&img);
        let mut t = page_with(&[(500, 77)]);
        d.apply(&mut t);
        assert_eq!(t, img);
        assert_eq!(d.payload_len(), PAGE_SIZE);
    }

    #[test]
    fn diff_much_smaller_than_page_for_small_change() {
        let before = page_with(&[]);
        let after = page_with(&[(10, 1), (11, 2), (12, 3)]);
        let d = PageDiff::compute(&before, &after);
        assert!(d.encoded_len() < PAGE_SIZE / 100);
    }

    #[test]
    fn merge_gap_boundary_exact() {
        let before = page_with(&[]);
        // A second change MERGE_GAP + 1 bytes past the first still merges…
        let merged = page_with(&[(100, 1), (100 + MERGE_GAP + 1, 2)]);
        assert_eq!(PageDiff::compute(&before, &merged).run_count(), 1);
        // …one byte further and the runs split.
        let split = page_with(&[(100, 1), (100 + MERGE_GAP + 2, 2)]);
        assert_eq!(PageDiff::compute(&before, &split).run_count(), 2);
    }

    #[test]
    fn wordwise_and_bytewise_agree_on_fixtures() {
        let before = page_with(&[(7, 3), (8, 4), (63, 5)]);
        let cases = [
            page_with(&[]),
            page_with(&[(0, 9)]),
            page_with(&[(7, 3), (8, 4), (63, 5)]), // identical to before
            page_with(&[(6, 1), (9, 2), (64, 3), (PAGE_SIZE - 1, 4)]),
            page_with(&[(15, 1), (16, 2), (17, 3)]), // straddles a word boundary
        ];
        for after in &cases {
            assert_eq!(
                PageDiff::compute(&before, after),
                PageDiff::compute_bytewise(&before, after)
            );
        }
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_page() -> impl Strategy<Value = Vec<u8>> {
        // sparse random modifications over a zero page keep cases tractable
        proptest::collection::vec((0usize..PAGE_SIZE, any::<u8>()), 0..64).prop_map(|muts| {
            let mut p = vec![0u8; PAGE_SIZE];
            for (i, b) in muts {
                p[i] = b;
            }
            p
        })
    }

    fn arb_page_blocks() -> impl Strategy<Value = Vec<u8>> {
        // contiguous mutated blocks exercise the word-compare path and
        // the MERGE_GAP boundary between nearby runs
        proptest::collection::vec((0usize..PAGE_SIZE, 1usize..24, any::<u8>()), 0..16).prop_map(
            |blocks| {
                let mut p = vec![0u8; PAGE_SIZE];
                for (start, len, b) in blocks {
                    let end = (start + len).min(PAGE_SIZE);
                    for slot in &mut p[start..end] {
                        *slot = b;
                    }
                }
                p
            },
        )
    }

    proptest! {
        #[test]
        fn wordwise_matches_bytewise_sparse(before in arb_page(), after in arb_page()) {
            prop_assert_eq!(
                PageDiff::compute(&before, &after),
                PageDiff::compute_bytewise(&before, &after)
            );
        }

        #[test]
        fn wordwise_matches_bytewise_blocks(
            before in arb_page_blocks(),
            after in arb_page_blocks(),
        ) {
            prop_assert_eq!(
                PageDiff::compute(&before, &after),
                PageDiff::compute_bytewise(&before, &after)
            );
        }

        #[test]
        fn block_diffs_roundtrip(before in arb_page_blocks(), after in arb_page_blocks()) {
            let d = PageDiff::compute(&before, &after);
            let mut t = before.clone();
            d.apply(&mut t);
            prop_assert_eq!(t, after);
        }

        #[test]
        fn apply_compute_roundtrip(before in arb_page(), after in arb_page()) {
            let d = PageDiff::compute(&before, &after);
            let mut t = before.clone();
            d.apply(&mut t);
            prop_assert_eq!(t, after);
        }

        #[test]
        fn self_diff_is_empty(p in arb_page()) {
            prop_assert!(PageDiff::compute(&p, &p).is_empty());
        }

        #[test]
        fn diff_payload_bounded_by_page(before in arb_page(), after in arb_page()) {
            let d = PageDiff::compute(&before, &after);
            prop_assert!(d.payload_len() <= PAGE_SIZE);
        }

        #[test]
        fn sequential_diffs_compose(a in arb_page(), b in arb_page(), c in arb_page()) {
            // applying diff(a->b) then diff(b->c) on a yields c
            let d1 = PageDiff::compute(&a, &b);
            let d2 = PageDiff::compute(&b, &c);
            let mut t = a.clone();
            d1.apply(&mut t);
            d2.apply(&mut t);
            prop_assert_eq!(t, c);
        }
    }
}
