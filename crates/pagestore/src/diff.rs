//! Byte-range page diffs — the "per-page modification encodings" of the
//! paper's redo log and write-set messages.
//!
//! A master computes the diff between a page's before- and after-image at
//! pre-commit; slaves apply the diff to their own copy of the page. Runs
//! of changed bytes separated by fewer than [`MERGE_GAP`] unchanged bytes
//! are coalesced to amortize per-run overhead.

use crate::page::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// Unchanged-byte gaps up to this length are swallowed into one run.
const MERGE_GAP: usize = 8;

/// Per-run overhead assumed by [`PageDiff::encoded_len`] (offset + length).
const RUN_HEADER: usize = 4;

/// A single contiguous run of modified bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffRun {
    /// Byte offset within the page.
    pub offset: u16,
    /// Replacement bytes.
    pub bytes: Vec<u8>,
}

/// A byte-range diff between two images of the same page.
///
/// ```
/// use dmv_pagestore::diff::PageDiff;
///
/// let before = vec![0u8; dmv_pagestore::PAGE_SIZE];
/// let mut after = before.clone();
/// after[100] = 7;
/// after[101] = 8;
/// let d = PageDiff::compute(&before, &after);
/// let mut target = before.clone();
/// d.apply(&mut target);
/// assert_eq!(target, after);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageDiff {
    runs: Vec<DiffRun>,
}

impl PageDiff {
    /// Computes the diff turning `before` into `after`.
    ///
    /// # Panics
    ///
    /// Panics if the images are not both [`PAGE_SIZE`] bytes.
    pub fn compute(before: &[u8], after: &[u8]) -> Self {
        assert_eq!(before.len(), PAGE_SIZE, "before image must be a full page");
        assert_eq!(after.len(), PAGE_SIZE, "after image must be a full page");
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut i = 0usize;
        while i < PAGE_SIZE {
            if before[i] == after[i] {
                i += 1;
                continue;
            }
            // Start of a changed run; extend while changed or gap < MERGE_GAP.
            let start = i;
            let mut end = i + 1;
            let mut last_change = i;
            while end < PAGE_SIZE {
                if before[end] != after[end] {
                    last_change = end;
                    end += 1;
                } else if end - last_change <= MERGE_GAP {
                    end += 1;
                } else {
                    break;
                }
            }
            let run_end = last_change + 1;
            runs.push(DiffRun { offset: start as u16, bytes: after[start..run_end].to_vec() });
            i = run_end;
        }
        PageDiff { runs }
    }

    /// Diff that replaces the whole page (used for page transfer during
    /// data migration, where no before-image is available).
    ///
    /// # Panics
    ///
    /// Panics if `image` is not [`PAGE_SIZE`] bytes.
    pub fn full(image: &[u8]) -> Self {
        assert_eq!(image.len(), PAGE_SIZE, "image must be a full page");
        PageDiff { runs: vec![DiffRun { offset: 0, bytes: image.to_vec() }] }
    }

    /// Applies the diff to `target` in place.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not [`PAGE_SIZE`] bytes or a run is out of
    /// bounds (which indicates a corrupted diff).
    pub fn apply(&self, target: &mut [u8]) {
        assert_eq!(target.len(), PAGE_SIZE, "target must be a full page");
        for run in &self.runs {
            let start = run.offset as usize;
            let end = start + run.bytes.len();
            target[start..end].copy_from_slice(&run.bytes);
        }
    }

    /// True if the diff changes nothing.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total modified payload bytes.
    pub fn payload_len(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Approximate wire size: payload plus per-run header overhead. Used
    /// to charge network transfer cost for write-set messages.
    pub fn encoded_len(&self) -> usize {
        self.payload_len() + RUN_HEADER * self.runs.len()
    }

    /// The runs, for inspection.
    pub fn runs(&self) -> &[DiffRun] {
        &self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(changes: &[(usize, u8)]) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        for &(i, b) in changes {
            p[i] = b;
        }
        p
    }

    #[test]
    fn identical_pages_empty_diff() {
        let a = page_with(&[(5, 1)]);
        let d = PageDiff::compute(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.encoded_len(), 0);
    }

    #[test]
    fn single_byte_change() {
        let before = page_with(&[]);
        let after = page_with(&[(2048, 99)]);
        let d = PageDiff::compute(&before, &after);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_len(), 1);
        let mut t = before.clone();
        d.apply(&mut t);
        assert_eq!(t, after);
    }

    #[test]
    fn nearby_changes_coalesce() {
        let before = page_with(&[]);
        let after = page_with(&[(100, 1), (104, 2)]); // gap of 3 <= MERGE_GAP
        let d = PageDiff::compute(&before, &after);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_len(), 5);
    }

    #[test]
    fn distant_changes_stay_separate() {
        let before = page_with(&[]);
        let after = page_with(&[(0, 1), (4000, 2)]);
        let d = PageDiff::compute(&before, &after);
        assert_eq!(d.run_count(), 2);
        assert_eq!(d.payload_len(), 2);
    }

    #[test]
    fn change_at_page_boundaries() {
        let before = page_with(&[]);
        let after = page_with(&[(0, 9), (PAGE_SIZE - 1, 9)]);
        let d = PageDiff::compute(&before, &after);
        let mut t = before.clone();
        d.apply(&mut t);
        assert_eq!(t, after);
    }

    #[test]
    fn full_diff_replaces_everything() {
        let img = page_with(&[(1, 1), (2, 2), (4095, 3)]);
        let d = PageDiff::full(&img);
        let mut t = page_with(&[(500, 77)]);
        d.apply(&mut t);
        assert_eq!(t, img);
        assert_eq!(d.payload_len(), PAGE_SIZE);
    }

    #[test]
    fn diff_much_smaller_than_page_for_small_change() {
        let before = page_with(&[]);
        let after = page_with(&[(10, 1), (11, 2), (12, 3)]);
        let d = PageDiff::compute(&before, &after);
        assert!(d.encoded_len() < PAGE_SIZE / 100);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_page() -> impl Strategy<Value = Vec<u8>> {
        // sparse random modifications over a zero page keep cases tractable
        proptest::collection::vec((0usize..PAGE_SIZE, any::<u8>()), 0..64).prop_map(|muts| {
            let mut p = vec![0u8; PAGE_SIZE];
            for (i, b) in muts {
                p[i] = b;
            }
            p
        })
    }

    proptest! {
        #[test]
        fn apply_compute_roundtrip(before in arb_page(), after in arb_page()) {
            let d = PageDiff::compute(&before, &after);
            let mut t = before.clone();
            d.apply(&mut t);
            prop_assert_eq!(t, after);
        }

        #[test]
        fn self_diff_is_empty(p in arb_page()) {
            prop_assert!(PageDiff::compute(&p, &p).is_empty());
        }

        #[test]
        fn diff_payload_bounded_by_page(before in arb_page(), after in arb_page()) {
            let d = PageDiff::compute(&before, &after);
            prop_assert!(d.payload_len() <= PAGE_SIZE);
        }

        #[test]
        fn sequential_diffs_compose(a in arb_page(), b in arb_page(), c in arb_page()) {
            // applying diff(a->b) then diff(b->c) on a yields c
            let d1 = PageDiff::compute(&a, &b);
            let d2 = PageDiff::compute(&b, &c);
            let mut t = a.clone();
            d1.apply(&mut t);
            d2.apply(&mut t);
            prop_assert_eq!(t, c);
        }
    }
}
