//! # dmv-pagestore
//!
//! Page-storage substrate shared by the in-memory engine (`dmv-memdb`),
//! the on-disk engine (`dmv-ondisk`) and the replication layer
//! (`dmv-core`).
//!
//! The **page** (4 KiB) is the paper's unit of both concurrency control
//! and replication. This crate provides:
//!
//! * [`page::Page`] — a fixed-size byte page carrying its last-applied
//!   table version;
//! * [`slotted`] — a slotted-page layout for variable-length records;
//! * [`diff::PageDiff`] — the byte-range diff encoding that masters ship
//!   to slaves in write-set messages;
//! * [`store::PageStore`] — a latched, concurrently accessible page map
//!   with a **residency model** (mmap page-fault simulation) driving the
//!   buffer-cache warmup behaviour of the fail-over experiments;
//! * [`checkpoint`] — the fuzzy checkpoint used for stale-node
//!   reintegration (paper §4.4).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod checkpoint;
pub mod diff;
pub mod page;
pub mod slotted;
pub mod store;

pub use diff::PageDiff;
pub use page::{Page, PAGE_SIZE};
pub use store::{PageCell, PageStore, Residency, ResidencyCounters};
