//! The fixed-size page, the paper's unit of concurrency control and
//! replication.

/// Page payload size in bytes (matching the 4 KiB pages of the modified
/// MySQL heap-table storage manager).
pub const PAGE_SIZE: usize = 4096;

/// A page: `PAGE_SIZE` bytes of payload plus the version of the owning
/// table at which the payload was last modified (on a master) or last
/// applied (on a slave).
///
/// The version is metadata, not part of the diffable payload: write-set
/// messages carry the post-commit version explicitly.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    /// Last table-version applied to (or produced on) this page.
    pub version: u64,
    data: Box<[u8]>,
}

impl Page {
    /// Creates a zeroed page at version 0.
    pub fn new() -> Self {
        Page { version: 0, data: vec![0u8; PAGE_SIZE].into_boxed_slice() }
    }

    /// Creates a page from a full image.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`PAGE_SIZE`] bytes.
    pub fn from_image(version: u64, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), PAGE_SIZE, "page image must be {PAGE_SIZE} bytes");
        Page { version, data: data.into_boxed_slice() }
    }

    /// Read-only view of the payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the payload.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Copies the payload into a fresh vector (for checkpoints and page
    /// transfer during data migration).
    pub fn to_image(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.data.iter().filter(|&&b| b != 0).count();
        f.debug_struct("Page")
            .field("version", &self.version)
            .field("nonzero_bytes", &nonzero)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_zeroed() {
        let p = Page::new();
        assert_eq!(p.version, 0);
        assert!(p.data().iter().all(|&b| b == 0));
        assert_eq!(p.data().len(), PAGE_SIZE);
    }

    #[test]
    fn image_roundtrip() {
        let mut img = vec![0u8; PAGE_SIZE];
        img[7] = 42;
        let p = Page::from_image(9, img.clone());
        assert_eq!(p.version, 9);
        assert_eq!(p.to_image(), img);
    }

    #[test]
    #[should_panic]
    fn wrong_size_image_panics() {
        let _ = Page::from_image(0, vec![0u8; 100]);
    }

    #[test]
    fn debug_is_compact() {
        let s = format!("{:?}", Page::new());
        assert!(s.contains("version"));
        assert!(!s.contains("data: ["));
    }
}
