//! Slotted-page layout for variable-length records.
//!
//! Layout within a [`crate::PAGE_SIZE`] page:
//!
//! ```text
//! [0..2)  slot count (u16, little endian)
//! [2..4)  cell_start: offset of the lowest allocated cell byte
//! [4..)   slot directory, 4 bytes per slot: offset u16, len u16
//! ...     free space
//! [cell_start..PAGE_SIZE)  record cells, growing downward
//! ```
//!
//! A slot with offset `0xFFFF` is *dead* and may be reused by a later
//! insert; record bytes of dead slots are reclaimed by [`compact`].
//! Records keep their slot index for their lifetime, so `(page, slot)`
//! row ids remain stable across in-page updates.

use crate::page::PAGE_SIZE;

const HDR: usize = 4;
const SLOT_BYTES: usize = 4;
const DEAD: u16 = 0xFFFF;

/// Largest record a single page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - HDR - SLOT_BYTES;

fn get_u16(d: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([d[at], d[at + 1]])
}

fn put_u16(d: &mut [u8], at: usize, v: u16) {
    d[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn slot_entry(d: &[u8], slot: u16) -> (u16, u16) {
    let at = HDR + SLOT_BYTES * slot as usize;
    (get_u16(d, at), get_u16(d, at + 2))
}

fn set_slot_entry(d: &mut [u8], slot: u16, offset: u16, len: u16) {
    let at = HDR + SLOT_BYTES * slot as usize;
    put_u16(d, at, offset);
    put_u16(d, at + 2, len);
}

/// Initializes an empty slotted page.
pub fn init(d: &mut [u8]) {
    debug_assert_eq!(d.len(), PAGE_SIZE);
    put_u16(d, 0, 0);
    put_u16(d, 2, PAGE_SIZE as u16);
}

/// Number of slot directory entries (live + dead).
pub fn slot_count(d: &[u8]) -> u16 {
    get_u16(d, 0)
}

fn cell_start(d: &[u8]) -> usize {
    get_u16(d, 2) as usize
}

/// Contiguous free bytes between the slot directory and the cell area.
pub fn contiguous_free(d: &[u8]) -> usize {
    cell_start(d).saturating_sub(HDR + SLOT_BYTES * slot_count(d) as usize)
}

/// Total reclaimable free bytes (contiguous + dead-record cells).
pub fn total_free(d: &[u8]) -> usize {
    let live: usize = live_slots(d).map(|s| slot_entry(d, s).1 as usize).sum();
    PAGE_SIZE - HDR - SLOT_BYTES * slot_count(d) as usize - live
}

/// Iterator over live slot indices.
pub fn live_slots(d: &[u8]) -> impl Iterator<Item = u16> + '_ {
    (0..slot_count(d)).filter(|&s| slot_entry(d, s).0 != DEAD)
}

/// Number of live records.
pub fn live_count(d: &[u8]) -> usize {
    live_slots(d).count()
}

/// Reads the record in `slot`, or `None` if the slot is dead or out of
/// range.
pub fn read(d: &[u8], slot: u16) -> Option<&[u8]> {
    if slot >= slot_count(d) {
        return None;
    }
    let (off, len) = slot_entry(d, slot);
    if off == DEAD {
        return None;
    }
    Some(&d[off as usize..off as usize + len as usize])
}

/// Repacks live cells against the end of the page, preserving slot
/// indices, and reclaims dead-record space.
pub fn compact(d: &mut [u8]) {
    let n = slot_count(d);
    // Collect live records (slot, bytes), then rewrite cells from the end.
    let mut live: Vec<(u16, Vec<u8>)> = Vec::with_capacity(n as usize);
    for s in 0..n {
        let (off, len) = slot_entry(d, s);
        if off != DEAD {
            live.push((s, d[off as usize..(off + len) as usize].to_vec()));
        }
    }
    let mut cursor = PAGE_SIZE;
    for (s, bytes) in &live {
        cursor -= bytes.len();
        d[cursor..cursor + bytes.len()].copy_from_slice(bytes);
        set_slot_entry(d, *s, cursor as u16, bytes.len() as u16);
    }
    put_u16(d, 2, cursor as u16);
}

fn find_dead_slot(d: &[u8]) -> Option<u16> {
    (0..slot_count(d)).find(|&s| slot_entry(d, s).0 == DEAD)
}

/// Inserts a record, compacting first if fragmented. Returns the slot, or
/// `None` if the page cannot hold the record.
///
/// # Panics
///
/// Panics if `rec` exceeds [`MAX_RECORD`].
pub fn insert(d: &mut [u8], rec: &[u8]) -> Option<u16> {
    assert!(rec.len() <= MAX_RECORD, "record of {} bytes exceeds page capacity", rec.len());
    let reuse = find_dead_slot(d);
    let slot_overhead = if reuse.is_some() { 0 } else { SLOT_BYTES };
    if contiguous_free(d) < rec.len() + slot_overhead {
        if total_free(d) < rec.len() + slot_overhead {
            return None;
        }
        compact(d);
        if contiguous_free(d) < rec.len() + slot_overhead {
            return None;
        }
    }
    let new_start = cell_start(d) - rec.len();
    d[new_start..new_start + rec.len()].copy_from_slice(rec);
    put_u16(d, 2, new_start as u16);
    let slot = match reuse {
        Some(s) => s,
        None => {
            let s = slot_count(d);
            put_u16(d, 0, s + 1);
            s
        }
    };
    set_slot_entry(d, slot, new_start as u16, rec.len() as u16);
    Some(slot)
}

/// Deletes the record in `slot`. Returns `false` if the slot was already
/// dead or out of range.
pub fn delete(d: &mut [u8], slot: u16) -> bool {
    if slot >= slot_count(d) || slot_entry(d, slot).0 == DEAD {
        return false;
    }
    set_slot_entry(d, slot, DEAD, 0);
    true
}

/// Replaces the record in `slot` with `rec`, in place when it fits,
/// otherwise by reallocating within the page (compacting if needed).
/// Returns `false` if the slot is dead/out of range or the page cannot
/// hold the new record (caller must relocate the row to another page).
pub fn update(d: &mut [u8], slot: u16, rec: &[u8]) -> bool {
    if slot >= slot_count(d) {
        return false;
    }
    let (off, len) = slot_entry(d, slot);
    if off == DEAD {
        return false;
    }
    if rec.len() <= len as usize {
        let off = off as usize;
        d[off..off + rec.len()].copy_from_slice(rec);
        set_slot_entry(d, slot, off as u16, rec.len() as u16);
        return true;
    }
    // Grow: free the old cell, then allocate a new one.
    set_slot_entry(d, slot, DEAD, 0);
    if contiguous_free(d) < rec.len() {
        if total_free(d) < rec.len() {
            // Roll back the tombstone so the row stays readable.
            set_slot_entry(d, slot, off, len);
            return false;
        }
        compact(d);
    }
    let new_start = cell_start(d) - rec.len();
    d[new_start..new_start + rec.len()].copy_from_slice(rec);
    put_u16(d, 2, new_start as u16);
    set_slot_entry(d, slot, new_start as u16, rec.len() as u16);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Vec<u8> {
        let mut d = vec![0u8; PAGE_SIZE];
        init(&mut d);
        d
    }

    #[test]
    fn insert_and_read() {
        let mut d = page();
        let s = insert(&mut d, b"hello").unwrap();
        assert_eq!(read(&d, s), Some(&b"hello"[..]));
        assert_eq!(live_count(&d), 1);
    }

    #[test]
    fn multiple_inserts_have_distinct_slots() {
        let mut d = page();
        let a = insert(&mut d, b"aaa").unwrap();
        let b = insert(&mut d, b"bbbb").unwrap();
        assert_ne!(a, b);
        assert_eq!(read(&d, a), Some(&b"aaa"[..]));
        assert_eq!(read(&d, b), Some(&b"bbbb"[..]));
    }

    #[test]
    fn delete_then_reuse_slot() {
        let mut d = page();
        let a = insert(&mut d, b"one").unwrap();
        let _b = insert(&mut d, b"two").unwrap();
        assert!(delete(&mut d, a));
        assert_eq!(read(&d, a), None);
        let c = insert(&mut d, b"three").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
        assert_eq!(read(&d, c), Some(&b"three"[..]));
    }

    #[test]
    fn delete_twice_fails() {
        let mut d = page();
        let a = insert(&mut d, b"x").unwrap();
        assert!(delete(&mut d, a));
        assert!(!delete(&mut d, a));
        assert!(!delete(&mut d, 99));
    }

    #[test]
    fn update_in_place_shrink() {
        let mut d = page();
        let a = insert(&mut d, b"longrecord").unwrap();
        assert!(update(&mut d, a, b"tiny"));
        assert_eq!(read(&d, a), Some(&b"tiny"[..]));
    }

    #[test]
    fn update_grow_reallocates() {
        let mut d = page();
        let a = insert(&mut d, b"ab").unwrap();
        let b = insert(&mut d, b"cd").unwrap();
        assert!(update(&mut d, a, b"a much longer record now"));
        assert_eq!(read(&d, a), Some(&b"a much longer record now"[..]));
        assert_eq!(read(&d, b), Some(&b"cd"[..]));
    }

    #[test]
    fn page_fills_and_rejects() {
        let mut d = page();
        let rec = [7u8; 100];
        let mut n = 0;
        while insert(&mut d, &rec).is_some() {
            n += 1;
        }
        // 100-byte records + 4-byte slots: expect ~39 of them
        assert!(n >= 35, "only {n} records fit");
        assert!(insert(&mut d, &rec).is_none());
        // but after deleting one, there is room again
        assert!(delete(&mut d, 0));
        assert!(insert(&mut d, &rec).is_some());
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut d = page();
        let mut slots = Vec::new();
        let rec = [1u8; 200];
        while let Some(s) = insert(&mut d, &rec) {
            slots.push(s);
        }
        // delete every other record, then insert one 300-byte record:
        // requires compaction because free space is fragmented
        for s in slots.iter().step_by(2) {
            assert!(delete(&mut d, *s));
        }
        let big = [2u8; 300];
        let s = insert(&mut d, &big).expect("compaction should make room");
        assert_eq!(read(&d, s), Some(&big[..]));
        // survivors intact
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(read(&d, *s), Some(&rec[..]));
        }
    }

    #[test]
    fn update_too_big_for_page_preserves_row() {
        let mut d = page();
        let a = insert(&mut d, &[1u8; 100]).unwrap();
        let _ = insert(&mut d, &[2u8; 3000]).unwrap();
        let huge = [3u8; 2000];
        assert!(!update(&mut d, a, &huge));
        assert_eq!(read(&d, a), Some(&[1u8; 100][..]), "failed update must not lose the row");
    }

    #[test]
    fn zero_length_record_is_live() {
        let mut d = page();
        let s = insert(&mut d, b"").unwrap();
        assert_eq!(read(&d, s), Some(&b""[..]));
        assert_eq!(live_count(&d), 1);
        assert!(delete(&mut d, s));
        assert_eq!(live_count(&d), 0);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Update(usize, Vec<u8>),
        Delete(usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..300).prop_map(Op::Insert),
            (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..300))
                .prop_map(|(i, r)| Op::Update(i, r)),
            any::<usize>().prop_map(Op::Delete),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn slotted_page_matches_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
            let mut d = vec![0u8; PAGE_SIZE];
            init(&mut d);
            let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
            let mut known_slots: Vec<u16> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(rec) => {
                        if let Some(s) = insert(&mut d, &rec) {
                            model.insert(s, rec);
                            if !known_slots.contains(&s) { known_slots.push(s); }
                        }
                    }
                    Op::Update(i, rec) => {
                        if known_slots.is_empty() { continue; }
                        let s = known_slots[i % known_slots.len()];
                        let ok = update(&mut d, s, &rec);
                        match model.entry(s) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                // failed grow must preserve the old record
                                if ok { e.insert(rec); }
                            }
                            std::collections::hash_map::Entry::Vacant(_) => {
                                prop_assert!(!ok, "update of dead slot succeeded");
                            }
                        }
                    }
                    Op::Delete(i) => {
                        if known_slots.is_empty() { continue; }
                        let s = known_slots[i % known_slots.len()];
                        let ok = delete(&mut d, s);
                        prop_assert_eq!(ok, model.remove(&s).is_some());
                    }
                }
                // model equivalence after every step
                prop_assert_eq!(live_count(&d), model.len());
                for (&s, rec) in &model {
                    prop_assert_eq!(read(&d, s), Some(&rec[..]));
                }
            }
        }
    }
}
