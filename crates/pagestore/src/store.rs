//! Concurrent page store with per-page latches and an mmap-style
//! residency model.
//!
//! Every replica's database (heap pages + index pages of every table)
//! lives in one `PageStore`. Pages are latched individually with
//! reader-writer locks — the per-page granularity is what lets different
//! read-only transactions materialize different versions of *different*
//! pages concurrently on the same replica.
//!
//! The **residency** model reproduces the paper's buffer-cache effects:
//! the in-memory databases mmap an on-disk image, so a page's first touch
//! on a cold replica incurs a page-in. [`PageStore::fault_in`] charges
//! that cost (in scaled paper time) for non-resident pages; fail-over
//! warmup strategies work by making spare backups touch pages ahead of
//! time.

use crate::page::Page;
use dmv_common::clock::SimClock;
use dmv_common::ids::{PageId, PageSpace, TableId};
use dmv_common::throttle::Throttle;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Store-wide residency accounting, shared into every [`PageCell`] so
/// [`PageCell::set_resident`] itself keeps the counts exact — no matter
/// which crate flips the flag. Replaces the old `resident_count` scan
/// (a read-lock plus a full-map walk per call) with one atomic load.
#[derive(Debug, Default)]
pub struct ResidencyCounters {
    resident: AtomicU64,
    high_water: AtomicU64,
    evictions: AtomicU64,
}

impl ResidencyCounters {
    fn on_resident(&self) {
        // relaxed-ok: occupancy counters are eventually-consistent diagnostics, never ordered against page data
        let now = self.resident.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed); // relaxed-ok: diagnostics high-water mark
    }

    fn on_evicted(&self) {
        self.resident.fetch_sub(1, Ordering::Relaxed); // relaxed-ok: occupancy counter, see on_resident
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident.load(Ordering::Relaxed) // relaxed-ok: occupancy counter, see on_resident
    }

    /// Highest resident-page count ever observed.
    pub fn high_water_pages(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed) // relaxed-ok: diagnostics high-water mark
    }

    /// Pages evicted by the budget clock so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed) // relaxed-ok: diagnostics counter
    }
}

/// A page plus its latch and residency/dirtiness metadata.
#[derive(Debug)]
pub struct PageCell {
    /// Reader-writer latch protecting the page image and version.
    pub latch: RwLock<Page>,
    resident: AtomicBool,
    dirty: AtomicBool,
    /// Second-chance bit for the budget clock: set on every touch,
    /// cleared (once) by a passing clock hand before eviction.
    referenced: AtomicBool,
    counters: Arc<ResidencyCounters>,
}

impl PageCell {
    fn new(page: Page, resident: bool, counters: Arc<ResidencyCounters>) -> Self {
        if resident {
            counters.on_resident();
        }
        PageCell {
            latch: RwLock::new(page),
            resident: AtomicBool::new(resident),
            dirty: AtomicBool::new(false),
            referenced: AtomicBool::new(resident),
            counters,
        }
    }

    /// Whether the page is currently in (simulated) physical memory.
    pub fn is_resident(&self) -> bool {
        self.resident.load(Ordering::Acquire)
    }

    /// Marks the page resident (a touch) or non-resident (eviction),
    /// keeping the store-wide [`ResidencyCounters`] exact.
    pub fn set_resident(&self, r: bool) {
        let was = self.resident.swap(r, Ordering::AcqRel);
        if was == r {
            return;
        }
        if r {
            self.referenced.store(true, Ordering::Release);
            self.counters.on_resident();
        } else {
            self.counters.on_evicted();
        }
    }

    /// Records a touch for the budget clock's second-chance pass.
    pub fn mark_referenced(&self) {
        self.referenced.store(true, Ordering::Release);
    }

    /// Whether the page holds uncommitted modifications. Dirty pages are
    /// skipped by fuzzy checkpoints (paper §4.4).
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    /// Sets the uncommitted-modification flag.
    pub fn set_dirty(&self, d: bool) {
        self.dirty.store(d, Ordering::Release);
    }
}

/// Residency cost model: what a page-in costs in paper time.
///
/// Page-ins go through a [`Throttle`] modeling the node's single disk
/// arm: concurrent faults queue rather than overlapping, so warming a
/// large cold cache takes proportional time (the paper's cache-warmup
/// phases).
#[derive(Debug, Clone)]
pub struct Residency {
    throttle: Throttle,
    fault_latency: Duration,
}

impl Residency {
    /// A model charging `fault_latency` (paper time) per page-in on a
    /// dedicated single-arm disk.
    pub fn new(clock: SimClock, fault_latency: Duration) -> Self {
        Residency { throttle: Throttle::new(clock, 1), fault_latency }
    }

    /// A model sharing an existing disk throttle (e.g. with the node's
    /// WAL).
    pub fn with_throttle(throttle: Throttle, fault_latency: Duration) -> Self {
        Residency { throttle, fault_latency }
    }

    /// A free model for pure-logic tests: faults cost nothing.
    pub fn free() -> Self {
        Residency { throttle: Throttle::new(SimClock::default(), 1), fault_latency: Duration::ZERO }
    }

    /// The configured fault latency.
    pub fn fault_latency(&self) -> Duration {
        self.fault_latency
    }

    fn charge(&self) {
        self.throttle.charge(self.fault_latency);
    }
}

/// The budget clock's sweep state: every page id in insertion order
/// plus the hand position. Ids are only ever appended (the page map
/// never shrinks), so the ring needs no removal protocol.
#[derive(Debug, Default)]
struct ClockState {
    ring: Vec<PageId>,
    hand: usize,
}

/// Concurrent page map for one replica's database.
#[derive(Debug)]
pub struct PageStore {
    pages: RwLock<HashMap<PageId, Arc<PageCell>>>,
    next_page_no: Mutex<HashMap<(TableId, PageSpace), u32>>,
    residency: Residency,
    faults: AtomicU64,
    counters: Arc<ResidencyCounters>,
    /// Resident-byte ceiling; `0` disables the evictor.
    budget_bytes: AtomicU64,
    clock_state: Mutex<ClockState>,
}

impl PageStore {
    /// Creates an empty store with the given residency model.
    pub fn new(residency: Residency) -> Self {
        PageStore {
            pages: RwLock::new(HashMap::new()),
            next_page_no: Mutex::new(HashMap::new()),
            residency,
            faults: AtomicU64::new(0),
            counters: Arc::new(ResidencyCounters::default()),
            budget_bytes: AtomicU64::new(0),
            clock_state: Mutex::new(ClockState::default()),
        }
    }

    /// Creates a store with a free residency model (for tests).
    pub fn new_free() -> Self {
        Self::new(Residency::free())
    }

    /// Allocates the next page in `(table, space)`. The fresh page is
    /// zeroed, resident, at version 0.
    pub fn allocate(&self, table: TableId, space: PageSpace) -> (PageId, Arc<PageCell>) {
        let mut next = self.next_page_no.lock();
        let counter = next.entry((table, space)).or_insert(0);
        let id = PageId { table, space, page_no: *counter };
        *counter += 1;
        drop(next);
        let cell = Arc::new(PageCell::new(Page::new(), true, Arc::clone(&self.counters)));
        self.pages.write().insert(id, Arc::clone(&cell));
        self.clock_state.lock().ring.push(id);
        self.enforce_budget();
        (id, cell)
    }

    /// Looks up a page.
    pub fn get(&self, id: PageId) -> Option<Arc<PageCell>> {
        self.pages.read().get(&id).cloned()
    }

    /// Looks up a page, creating a zeroed resident page if absent.
    ///
    /// Slaves use this when a replicated write-set references a page the
    /// master allocated; the local allocation counter is advanced so a
    /// later promotion to master continues from the right page number.
    pub fn get_or_create(&self, id: PageId) -> Arc<PageCell> {
        if let Some(c) = self.get(id) {
            return c;
        }
        let mut pages = self.pages.write();
        let mut created = false;
        let cell = pages
            .entry(id)
            .or_insert_with(|| {
                created = true;
                Arc::new(PageCell::new(Page::new(), true, Arc::clone(&self.counters)))
            })
            .clone();
        drop(pages);
        if created {
            self.clock_state.lock().ring.push(id);
        }
        let mut next = self.next_page_no.lock();
        let counter = next.entry((id.table, id.space)).or_insert(0);
        if *counter <= id.page_no {
            *counter = id.page_no + 1;
        }
        drop(next);
        if created {
            self.enforce_budget();
        }
        cell
    }

    /// Number of pages allocated (or mirrored) in `(table, space)` —
    /// i.e. valid page numbers are `0..allocated_count(..)`.
    pub fn allocated_count(&self, table: TableId, space: PageSpace) -> u32 {
        *self.next_page_no.lock().get(&(table, space)).unwrap_or(&0)
    }

    /// True if the page exists.
    pub fn contains(&self, id: PageId) -> bool {
        self.pages.read().contains_key(&id)
    }

    /// Snapshot of all page ids (unordered).
    pub fn page_ids(&self) -> Vec<PageId> {
        self.pages.read().keys().copied().collect()
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.read().len()
    }

    /// True if the store holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.read().is_empty()
    }

    /// Ensures `cell` is resident, charging the page-in cost if it was
    /// not. Returns `true` if a fault was taken.
    pub fn fault_in(&self, cell: &PageCell) -> bool {
        cell.mark_referenced();
        if cell.is_resident() {
            return false;
        }
        self.residency.charge();
        cell.set_resident(true);
        self.faults.fetch_add(1, Ordering::Relaxed); // relaxed-ok: fault diagnostics counter
        self.enforce_budget();
        true
    }

    /// Total page faults taken so far.
    pub fn fault_count(&self) -> u64 {
        self.faults.load(Ordering::Relaxed) // relaxed-ok: fault diagnostics counter
    }

    /// Number of resident pages — one atomic load; the counters are
    /// maintained by [`PageCell::set_resident`] itself.
    pub fn resident_count(&self) -> usize {
        self.counters.resident_pages() as usize
    }

    /// Resident bytes (all pages are [`crate::PAGE_SIZE`]).
    pub fn resident_bytes(&self) -> u64 {
        self.counters.resident_pages() * crate::PAGE_SIZE as u64
    }

    /// The store-wide residency counters (current, high-water,
    /// evictions), for benches and oracles.
    pub fn residency_counters(&self) -> &ResidencyCounters {
        &self.counters
    }

    /// Sets the resident-byte budget (`0` disables eviction) and
    /// immediately enforces it.
    pub fn set_budget_bytes(&self, bytes: u64) {
        self.budget_bytes.store(bytes, Ordering::Release);
        self.enforce_budget();
    }

    /// The configured resident-byte budget (`0` = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes.load(Ordering::Acquire)
    }

    /// Clock/second-chance eviction down to the budget: sweeps the page
    /// ring from the hand, skipping non-resident and dirty pages,
    /// clearing the referenced bit on the first pass and evicting on
    /// the second. Bounded at two full revolutions per call, so a
    /// working set of hot (recently-referenced) pages larger than the
    /// budget degrades to a bounded overage instead of livelock.
    pub fn enforce_budget(&self) {
        let budget = self.budget_bytes();
        if budget == 0 || self.resident_bytes() <= budget {
            return;
        }
        let mut clock = self.clock_state.lock();
        let n = clock.ring.len();
        if n == 0 {
            return;
        }
        let pages = self.pages.read();
        let mut scanned = 0usize;
        while self.resident_bytes() > budget && scanned < 2 * n {
            let id = clock.ring[clock.hand];
            clock.hand = (clock.hand + 1) % n;
            scanned += 1;
            let Some(cell) = pages.get(&id) else { continue };
            if !cell.is_resident() || cell.is_dirty() {
                continue;
            }
            if cell.referenced.swap(false, Ordering::AcqRel) {
                continue; // second chance: survives one hand pass
            }
            cell.set_resident(false);
            // relaxed-ok: diagnostics counter, nothing ordered against it
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks every page non-resident (a completely cold cache, as on a
    /// just-booted or long-idle spare backup).
    pub fn evict_all(&self) {
        for c in self.pages.read().values() {
            c.set_resident(false);
        }
    }

    /// The residency model.
    pub fn residency(&self) -> &Residency {
        &self.residency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::clock::TimeScale;

    #[test]
    fn allocate_sequential_page_numbers() {
        let s = PageStore::new_free();
        let (a, _) = s.allocate(TableId(0), PageSpace::Heap);
        let (b, _) = s.allocate(TableId(0), PageSpace::Heap);
        let (c, _) = s.allocate(TableId(0), PageSpace::Index(0));
        assert_eq!(a.page_no, 0);
        assert_eq!(b.page_no, 1);
        assert_eq!(c.page_no, 0, "index space has its own counter");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn get_or_create_advances_allocator() {
        let s = PageStore::new_free();
        let id = PageId::heap(TableId(1), 5);
        let _ = s.get_or_create(id);
        assert!(s.contains(id));
        let (next, _) = s.allocate(TableId(1), PageSpace::Heap);
        assert_eq!(next.page_no, 6, "allocation must skip mirrored pages");
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let s = PageStore::new_free();
        let id = PageId::heap(TableId(0), 0);
        let a = s.get_or_create(id);
        let b = s.get_or_create(id);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fault_in_charges_once() {
        let s = PageStore::new_free();
        let (_, cell) = s.allocate(TableId(0), PageSpace::Heap);
        assert!(!s.fault_in(&cell), "fresh pages are resident");
        cell.set_resident(false);
        assert!(s.fault_in(&cell));
        assert!(!s.fault_in(&cell));
        assert_eq!(s.fault_count(), 1);
    }

    #[test]
    fn evict_all_makes_cold() {
        let s = PageStore::new_free();
        for _ in 0..5 {
            s.allocate(TableId(0), PageSpace::Heap);
        }
        assert_eq!(s.resident_count(), 5);
        s.evict_all();
        assert_eq!(s.resident_count(), 0);
    }

    #[test]
    fn fault_latency_is_charged_in_scaled_time() {
        let clock = SimClock::new(TimeScale::new(0.001)); // 1 paper-s = 1 ms
        let s = PageStore::new(Residency::new(clock, Duration::from_secs(2)));
        let (_, cell) = s.allocate(TableId(0), PageSpace::Heap);
        cell.set_resident(false);
        let t0 = std::time::Instant::now();
        s.fault_in(&cell);
        assert!(t0.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn resident_counter_tracks_flag_flips_exactly() {
        let s = PageStore::new_free();
        let cells: Vec<_> = (0..4).map(|_| s.allocate(TableId(0), PageSpace::Heap).1).collect();
        assert_eq!(s.resident_count(), 4);
        cells[0].set_resident(false);
        cells[1].set_resident(false);
        assert_eq!(s.resident_count(), 2);
        // Redundant flips must not skew the count.
        cells[0].set_resident(false);
        cells[2].set_resident(true);
        assert_eq!(s.resident_count(), 2);
        cells[0].set_resident(true);
        assert_eq!(s.resident_count(), 3);
        assert_eq!(s.resident_bytes(), 3 * crate::PAGE_SIZE as u64);
        assert_eq!(s.residency_counters().high_water_pages(), 4);
    }

    #[test]
    fn budget_clock_evicts_down_to_the_budget() {
        let s = PageStore::new_free();
        for _ in 0..8 {
            s.allocate(TableId(0), PageSpace::Heap);
        }
        assert_eq!(s.resident_count(), 8);
        s.set_budget_bytes(4 * crate::PAGE_SIZE as u64);
        assert_eq!(s.resident_count(), 4, "evictor must land exactly on the budget");
        assert_eq!(s.residency_counters().evictions(), 4);
        assert_eq!(s.residency_counters().high_water_pages(), 8);
        // New allocations keep the budget enforced.
        for _ in 0..4 {
            s.allocate(TableId(0), PageSpace::Heap);
        }
        assert_eq!(s.resident_count(), 4);
    }

    #[test]
    fn budget_clock_skips_dirty_pages() {
        let s = PageStore::new_free();
        let cells: Vec<_> = (0..4).map(|_| s.allocate(TableId(0), PageSpace::Heap).1).collect();
        for c in &cells {
            c.set_dirty(true);
        }
        s.set_budget_bytes(crate::PAGE_SIZE as u64);
        assert_eq!(s.resident_count(), 4, "dirty pages are not evictable");
        for c in &cells {
            c.set_dirty(false);
        }
        s.enforce_budget();
        assert_eq!(s.resident_count(), 1);
    }

    #[test]
    fn second_chance_spares_recently_referenced_pages() {
        let s = PageStore::new_free();
        let (_, hot) = s.allocate(TableId(0), PageSpace::Heap);
        for _ in 0..3 {
            s.allocate(TableId(0), PageSpace::Heap);
        }
        // One full budget pass clears every referenced bit…
        s.set_budget_bytes(2 * crate::PAGE_SIZE as u64);
        assert_eq!(s.resident_count(), 2);
        // …then a touch re-arms the hot page: tightening the budget to
        // one page must evict some *other* resident page first.
        s.fault_in(&hot);
        s.set_budget_bytes(crate::PAGE_SIZE as u64);
        assert_eq!(s.resident_count(), 1);
        assert!(hot.is_resident(), "referenced page evicted before cold pages");
    }

    #[test]
    fn retouch_after_eviction_charges_a_fault() {
        let s = PageStore::new_free();
        let (_, first) = s.allocate(TableId(0), PageSpace::Heap);
        for _ in 0..3 {
            s.allocate(TableId(0), PageSpace::Heap);
        }
        s.set_budget_bytes(2 * crate::PAGE_SIZE as u64);
        // enforce_budget evicted the two oldest (first in the ring).
        assert!(!first.is_resident());
        let faults_before = s.fault_count();
        assert!(s.fault_in(&first), "re-touch of an evicted page must fault");
        assert_eq!(s.fault_count(), faults_before + 1);
        assert!(s.resident_count() <= 3);
    }

    #[test]
    fn zero_budget_disables_eviction() {
        let s = PageStore::new_free();
        for _ in 0..16 {
            s.allocate(TableId(0), PageSpace::Heap);
        }
        s.enforce_budget();
        assert_eq!(s.resident_count(), 16);
        assert_eq!(s.residency_counters().evictions(), 0);
        assert_eq!(s.budget_bytes(), 0);
    }

    #[test]
    fn dirty_flag_roundtrip() {
        let s = PageStore::new_free();
        let (_, cell) = s.allocate(TableId(0), PageSpace::Heap);
        assert!(!cell.is_dirty());
        cell.set_dirty(true);
        assert!(cell.is_dirty());
        cell.set_dirty(false);
        assert!(!cell.is_dirty());
    }

    #[test]
    fn concurrent_readers_share_latch() {
        let s = PageStore::new_free();
        let (_, cell) = s.allocate(TableId(0), PageSpace::Heap);
        let g1 = cell.latch.read();
        let g2 = cell.latch.try_read();
        assert!(g2.is_some());
        drop(g1);
    }

    #[test]
    fn writer_excludes_readers() {
        let s = PageStore::new_free();
        let (_, cell) = s.allocate(TableId(0), PageSpace::Heap);
        let w = cell.latch.write();
        assert!(cell.latch.try_read().is_none());
        drop(w);
        assert!(cell.latch.try_read().is_some());
    }
}
