//! # dmv-simnet
//!
//! In-process cluster network. The paper's testbed is a 19-node switched
//! LAN; here every node is a set of threads inside one process, and links
//! are typed channels with a modeled latency:
//!
//! * the **sender** is charged the serialization cost (`per_kib × size`),
//!   which throttles a master broadcasting large write-sets exactly the
//!   way a saturated NIC would;
//! * the **receiver** observes messages only after the propagation
//!   latency has elapsed (messages carry a delivery deadline);
//! * nodes can be **killed** (their endpoint closes, sends to them fail —
//!   a "broken connection") and links can be **partitioned** (messages
//!   silently dropped, as on a real network);
//!
//! giving the failure-detection and fail-over machinery of `dmv-core`
//! realistic semantics to work against.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use dmv_common::clock::SimClock;
use dmv_common::clock::{wall_deadline, wall_now, WallInstant};
use dmv_common::config::NetProfile;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::NodeId;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A delivered message with its sender.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
    deliver_at: WallInstant,
}

struct NodeHandle<M> {
    sender: crossbeam::channel::Sender<Envelope<M>>,
    alive: Arc<AtomicBool>,
}

struct NetInner<M> {
    nodes: RwLock<HashMap<NodeId, NodeHandle<M>>>,
    partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    profile: NetProfile,
    /// Transient latency added on top of the profile (paper time) —
    /// fault injection for congestion/latency-spike scenarios.
    extra_delay: RwLock<Duration>,
    clock: SimClock,
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

/// The simulated network fabric. Cheap to clone (shared state).
pub struct Network<M> {
    inner: Arc<NetInner<M>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network { inner: Arc::clone(&self.inner) }
    }
}

impl<M: Send + 'static> Network<M> {
    /// Creates a network with the given latency profile and clock.
    pub fn new(profile: NetProfile, clock: SimClock) -> Self {
        Network {
            inner: Arc::new(NetInner {
                nodes: RwLock::new(HashMap::new()),
                partitions: RwLock::new(HashSet::new()),
                profile,
                extra_delay: RwLock::new(Duration::ZERO),
                clock,
                messages_sent: AtomicU64::new(0),
                bytes_sent: AtomicU64::new(0),
            }),
        }
    }

    /// A zero-latency network for pure-logic tests.
    pub fn zero() -> Self {
        Self::new(NetProfile::zero(), SimClock::default())
    }

    /// Registers `node` and returns its endpoint. Re-registering a node
    /// (e.g. after recovery) replaces the previous endpoint.
    pub fn register(&self, node: NodeId) -> Endpoint<M> {
        let (tx, rx) = crossbeam::channel::unbounded();
        let alive = Arc::new(AtomicBool::new(true));
        self.inner.nodes.write().insert(node, NodeHandle { sender: tx, alive: Arc::clone(&alive) });
        Endpoint { node, receiver: rx, net: Arc::clone(&self.inner), alive }
    }

    /// Kills a node: its endpoint stops receiving and sends to it fail.
    pub fn kill(&self, node: NodeId) {
        let mut nodes = self.inner.nodes.write();
        if let Some(h) = nodes.remove(&node) {
            h.alive.store(false, Ordering::Release);
            // dropping the sender closes the channel
        }
    }

    /// True if the node is registered and alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.inner.nodes.read().get(&node).is_some_and(|h| h.alive.load(Ordering::Acquire))
    }

    /// Blocks messages in both directions between `a` and `b` (silently
    /// dropped, like a real partition).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut p = self.inner.partitions.write();
        p.insert((a, b));
        p.insert((b, a));
    }

    /// Heals a partition.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut p = self.inner.partitions.write();
        p.remove(&(a, b));
        p.remove(&(b, a));
    }

    /// Sets a transient extra propagation delay (paper time) added to
    /// every subsequent delivery — a network-wide latency spike.
    /// `Duration::ZERO` restores normal conditions.
    pub fn set_extra_delay(&self, extra: Duration) {
        *self.inner.extra_delay.write() = extra;
    }

    /// Messages sent so far (diagnostics).
    pub fn messages_sent(&self) -> u64 {
        self.inner.messages_sent.load(Ordering::Relaxed) // relaxed-ok: traffic diagnostics counter
    }

    /// Payload bytes sent so far (diagnostics).
    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent.load(Ordering::Relaxed) // relaxed-ok: traffic diagnostics counter
    }

    /// Sends from an external party (no endpoint), e.g. a test harness.
    ///
    /// # Errors
    ///
    /// [`DmvError::NoSuchNode`] if the destination is dead or unknown.
    pub fn send_external(&self, from: NodeId, to: NodeId, msg: M, size: usize) -> DmvResult<()> {
        send_inner(&self.inner, from, to, msg, size)
    }
}

impl<M> std::fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.inner.nodes.read().len())
            .field("messages_sent", &self.inner.messages_sent.load(Ordering::Relaxed)) // relaxed-ok: traffic diagnostics counter
            .finish()
    }
}

fn send_inner<M>(
    inner: &NetInner<M>,
    from: NodeId,
    to: NodeId,
    msg: M,
    size: usize,
) -> DmvResult<()> {
    if inner.partitions.read().contains(&(from, to)) {
        // Partitioned links drop silently — the sender cannot tell.
        return Ok(());
    }
    // Serialization cost charged to the sender.
    let ser = Duration::from_nanos(
        (inner.profile.per_kib.as_nanos() as u64).saturating_mul(size as u64) / 1024,
    );
    if !ser.is_zero() {
        inner.clock.sleep_paper(ser);
    }
    let extra = *inner.extra_delay.read();
    let deliver_at = wall_deadline(inner.clock.scale().to_wall(inner.profile.latency + extra));
    let nodes = inner.nodes.read();
    let handle = nodes.get(&to).ok_or(DmvError::NoSuchNode(to))?;
    if !handle.alive.load(Ordering::Acquire) {
        return Err(DmvError::NoSuchNode(to));
    }
    handle.sender.send(Envelope { from, msg, deliver_at }).map_err(|_| DmvError::NoSuchNode(to))?;
    inner.messages_sent.fetch_add(1, Ordering::Relaxed); // relaxed-ok: traffic diagnostics counter
    inner.bytes_sent.fetch_add(size as u64, Ordering::Relaxed); // relaxed-ok: traffic diagnostics counter
    Ok(())
}

/// A node's attachment to the network: receive queue plus send access.
pub struct Endpoint<M> {
    node: NodeId,
    receiver: crossbeam::channel::Receiver<Envelope<M>>,
    net: Arc<NetInner<M>>,
    alive: Arc<AtomicBool>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// True until the node is killed.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Sends `msg` (of modeled payload `size` bytes) to `to`.
    ///
    /// # Errors
    ///
    /// [`DmvError::NoSuchNode`] if the destination is dead or unknown;
    /// [`DmvError::NodeFailed`] if this endpoint itself has been killed.
    pub fn send(&self, to: NodeId, msg: M, size: usize) -> DmvResult<()> {
        if !self.is_alive() {
            return Err(DmvError::NodeFailed(self.node));
        }
        send_inner(&self.net, self.node, to, msg, size)
    }

    /// Receives the next message, waiting up to `timeout` (wall time).
    /// Honors each message's propagation deadline.
    ///
    /// # Errors
    ///
    /// [`DmvError::Network`] on timeout; [`DmvError::NodeFailed`] when
    /// the endpoint has been killed and drained.
    pub fn recv_timeout(&self, timeout: Duration) -> DmvResult<Envelope<M>> {
        let deadline = wall_deadline(timeout);
        match self.receiver.recv_deadline(deadline) {
            Ok(env) => {
                let now = wall_now();
                if env.deliver_at > now {
                    std::thread::sleep(env.deliver_at - now);
                }
                Ok(env)
            }
            Err(_) => {
                if self.is_alive() {
                    Err(DmvError::Network("receive timeout".into()))
                } else {
                    Err(DmvError::NodeFailed(self.node))
                }
            }
        }
    }

    /// Receives without waiting for new messages (a message already sent
    /// but still "in flight" is waited out — this thread is the node).
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.receiver.try_recv() {
            Ok(env) => {
                let now = wall_now();
                if env.deliver_at > now {
                    std::thread::sleep(env.deliver_at - now);
                }
                Some(env)
            }
            Err(_) => None,
        }
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("node", &self.node)
            .field("alive", &self.alive.load(Ordering::Acquire))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmv_common::clock::TimeScale;
    use std::time::Instant;

    #[test]
    fn basic_send_recv() {
        let net: Network<String> = Network::zero();
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        a.send(NodeId(2), "hello".into(), 5).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, NodeId(1));
        assert_eq!(env.msg, "hello");
        assert_eq!(net.messages_sent(), 1);
        assert_eq!(net.bytes_sent(), 5);
    }

    #[test]
    fn send_to_unknown_fails() {
        let net: Network<u32> = Network::zero();
        let a = net.register(NodeId(1));
        assert!(matches!(a.send(NodeId(9), 1, 0), Err(DmvError::NoSuchNode(_))));
    }

    #[test]
    fn killed_node_unreachable_and_cannot_send() {
        let net: Network<u32> = Network::zero();
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        net.kill(NodeId(2));
        assert!(!net.is_alive(NodeId(2)));
        assert!(a.send(NodeId(2), 1, 0).is_err());
        assert!(!b.is_alive());
        assert!(matches!(b.recv_timeout(Duration::from_millis(10)), Err(DmvError::NodeFailed(_))));
    }

    #[test]
    fn partition_drops_silently_and_heals() {
        let net: Network<u32> = Network::zero();
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        net.partition(NodeId(1), NodeId(2));
        a.send(NodeId(2), 7, 0).unwrap(); // dropped
        assert!(b.recv_timeout(Duration::from_millis(20)).is_err());
        net.heal(NodeId(1), NodeId(2));
        a.send(NodeId(2), 8, 0).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 8);
    }

    #[test]
    fn latency_delays_delivery() {
        let profile = NetProfile { latency: Duration::from_secs(5), per_kib: Duration::ZERO };
        let clock = SimClock::new(TimeScale::new(0.002)); // 5 paper-s -> 10 wall-ms
        let net: Network<u32> = Network::new(profile, clock);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let t0 = Instant::now();
        a.send(NodeId(2), 1, 0).unwrap();
        let _ = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(10), "elapsed {:?}", t0.elapsed());
    }

    #[test]
    fn extra_delay_spikes_then_restores_latency() {
        let clock = SimClock::new(TimeScale::realtime());
        let net: Network<u32> = Network::new(NetProfile::zero(), clock);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        net.set_extra_delay(Duration::from_millis(15));
        let t0 = Instant::now();
        a.send(NodeId(2), 1, 0).unwrap();
        let _ = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(15), "spike not applied: {:?}", t0.elapsed());
        net.set_extra_delay(Duration::ZERO);
        let t1 = Instant::now();
        a.send(NodeId(2), 2, 0).unwrap();
        let _ = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(t1.elapsed() < Duration::from_millis(15), "spike not cleared: {:?}", t1.elapsed());
    }

    #[test]
    fn serialization_cost_charged_to_sender() {
        let profile = NetProfile { latency: Duration::ZERO, per_kib: Duration::from_secs(1) };
        let clock = SimClock::new(TimeScale::new(0.01)); // 1 paper-s/KiB -> 10 wall-ms/KiB
        let net: Network<u32> = Network::new(profile, clock);
        let a = net.register(NodeId(1));
        let _b = net.register(NodeId(2));
        let t0 = Instant::now();
        a.send(NodeId(2), 1, 2048).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(19), "elapsed {:?}", t0.elapsed());
    }

    #[test]
    fn reregistration_replaces_endpoint() {
        let net: Network<u32> = Network::zero();
        let a = net.register(NodeId(1));
        let b1 = net.register(NodeId(2));
        let b2 = net.register(NodeId(2));
        a.send(NodeId(2), 5, 0).unwrap();
        assert!(b1.recv_timeout(Duration::from_millis(20)).is_err());
        assert_eq!(b2.recv_timeout(Duration::from_secs(1)).unwrap().msg, 5);
    }

    #[test]
    fn try_recv_nonblocking() {
        let net: Network<u32> = Network::zero();
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        assert!(b.try_recv().is_none());
        a.send(NodeId(2), 3, 0).unwrap();
        assert_eq!(b.try_recv().unwrap().msg, 3);
    }

    #[test]
    fn external_send() {
        let net: Network<u32> = Network::zero();
        let b = net.register(NodeId(2));
        net.send_external(NodeId(99), NodeId(2), 11, 0).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, NodeId(99));
    }

    #[test]
    fn fifo_per_link() {
        let net: Network<u32> = Network::zero();
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        for i in 0..100 {
            a.send(NodeId(2), i, 0).unwrap();
        }
        for i in 0..100 {
            assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, i);
        }
    }
}
