//! Query executor over a pluggable storage context.
//!
//! Both database engines (`dmv-memdb`, `dmv-ondisk`) implement
//! [`ExecContext`]; the executor contains all the relational logic
//! (access-path resolution, joins, aggregation, ordering) exactly once,
//! so the in-memory tier and the on-disk baseline answer queries
//! identically — a property the integration tests check directly.

use crate::query::{Access, AggFn, Expr, Query, Select, SetExpr};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::{RowId, TableId};
use std::collections::HashMap;

/// Storage interface the executor runs against, bound to one open
/// transaction on one engine.
///
/// Index scans return rows in key order; all methods perform the
/// engine's own concurrency control (page locks, version application)
/// internally and may fail with retryable errors.
pub trait ExecContext {
    /// The database schema.
    fn schema(&self) -> &Schema;

    /// All live rows of a table (in unspecified order).
    ///
    /// # Errors
    ///
    /// Propagates engine errors (lock conflicts, version conflicts, I/O).
    fn scan(&mut self, table: TableId) -> DmvResult<Vec<(RowId, Row)>>;

    /// Rows whose index key equals `key` exactly.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    fn index_lookup(
        &mut self,
        table: TableId,
        index_no: u8,
        key: &[Value],
    ) -> DmvResult<Vec<(RowId, Row)>>;

    /// Rows in key order between the bounds (each `(prefix, inclusive)`).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    fn index_range(
        &mut self,
        table: TableId,
        index_no: u8,
        lo: Option<(&[Value], bool)>,
        hi: Option<(&[Value], bool)>,
        rev: bool,
        limit: Option<usize>,
    ) -> DmvResult<Vec<(RowId, Row)>>;

    /// Inserts a validated row; the engine maintains all indexes.
    ///
    /// # Errors
    ///
    /// Returns [`DmvError::DuplicateKey`] on unique-index violations, and
    /// propagates engine errors.
    fn insert(&mut self, table: TableId, row: Row) -> DmvResult<RowId>;

    /// Replaces the row at `rid`; the engine maintains all indexes.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    fn update(&mut self, table: TableId, rid: RowId, row: Row) -> DmvResult<()>;

    /// Deletes the row at `rid`; the engine maintains all indexes.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    fn delete(&mut self, table: TableId, rid: RowId) -> DmvResult<()>;

    /// Settles accumulated cost-model charges (engines batch per-row CPU
    /// charges and pay them at statement boundaries). Default: no-op.
    fn flush_costs(&mut self) {}

    /// Declares that subsequent reads locate rows for modification, so a
    /// locking engine should acquire exclusive locks immediately instead
    /// of shared locks it would have to upgrade (two transactions
    /// upgrading S→X on the same page deadlock unconditionally).
    /// Default: no-op.
    fn set_write_intent(&mut self, _on: bool) {}
}

/// Result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output rows (for selects).
    pub rows: Vec<Row>,
    /// Rows inserted/updated/deleted (for writes).
    pub affected: usize,
}

impl ResultSet {
    /// The single value of a single-row, single-column result.
    pub fn scalar(&self) -> Option<&Value> {
        match self.rows.as_slice() {
            [row] => row.first(),
            _ => None,
        }
    }
}

/// Statement-level execution interface: one open transaction accepting
/// queries one at a time, so later statements can be parameterized by
/// earlier results (as the TPC-W interactions require).
pub trait StatementRunner {
    /// Executes one statement inside the open transaction.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; retryable errors abort the transaction.
    fn run(&mut self, q: &Query) -> DmvResult<ResultSet>;
}

/// Adapts any [`ExecContext`] into a [`StatementRunner`].
pub struct ExecRunner<'a> {
    ctx: &'a mut dyn ExecContext,
}

impl<'a> ExecRunner<'a> {
    /// Wraps a context.
    pub fn new(ctx: &'a mut dyn ExecContext) -> Self {
        ExecRunner { ctx }
    }
}

impl StatementRunner for ExecRunner<'_> {
    fn run(&mut self, q: &Query) -> DmvResult<ResultSet> {
        let r = execute(self.ctx, q);
        self.ctx.flush_costs();
        r
    }
}

/// A [`StatementRunner`] decorator recording every executed write
/// statement — used by the scheduler for its persistence log (§4.6) and
/// by the on-disk engines for WAL/binlog statement logging.
pub struct RecordingRunner<'a> {
    inner: &'a mut dyn StatementRunner,
    /// The write statements executed so far, in order.
    pub writes: Vec<Query>,
}

impl<'a> RecordingRunner<'a> {
    /// Wraps a runner.
    pub fn new(inner: &'a mut dyn StatementRunner) -> Self {
        RecordingRunner { inner, writes: Vec::new() }
    }
}

impl StatementRunner for RecordingRunner<'_> {
    fn run(&mut self, q: &Query) -> DmvResult<ResultSet> {
        let rs = self.inner.run(q)?;
        if q.is_write() {
            self.writes.push(q.clone());
        }
        Ok(rs)
    }
}

/// Executes a statement against the context.
///
/// # Errors
///
/// Propagates engine errors and schema validation failures.
pub fn execute(ctx: &mut dyn ExecContext, q: &Query) -> DmvResult<ResultSet> {
    match q {
        Query::Select(s) => run_select(ctx, s),
        Query::Insert { table, rows } => {
            let schema = ctx.schema().table(*table)?.clone();
            for row in rows {
                schema.validate(row)?;
            }
            let mut n = 0;
            for row in rows {
                ctx.insert(*table, row.clone())?;
                n += 1;
            }
            Ok(ResultSet { rows: Vec::new(), affected: n })
        }
        Query::Update { table, access, filter, set } => {
            ctx.set_write_intent(true);
            let matches = base_rows(ctx, *table, access, filter);
            ctx.set_write_intent(false);
            let matches = matches?;
            let schema = ctx.schema().table(*table)?.clone();
            let mut n = 0;
            for (rid, old) in matches {
                let mut new = old.clone();
                for (col, sx) in set {
                    let cur = &old[*col];
                    new[*col] = apply_set(cur, sx)?;
                }
                schema.validate(&new)?;
                ctx.update(*table, rid, new)?;
                n += 1;
            }
            Ok(ResultSet { rows: Vec::new(), affected: n })
        }
        Query::Delete { table, access, filter } => {
            ctx.set_write_intent(true);
            let matches = base_rows(ctx, *table, access, filter);
            ctx.set_write_intent(false);
            let matches = matches?;
            let mut n = 0;
            for (rid, _) in matches {
                ctx.delete(*table, rid)?;
                n += 1;
            }
            Ok(ResultSet { rows: Vec::new(), affected: n })
        }
    }
}

fn apply_set(cur: &Value, sx: &SetExpr) -> DmvResult<Value> {
    match sx {
        SetExpr::Value(v) => Ok(v.clone()),
        SetExpr::AddInt(d) => match cur {
            Value::Int(i) => Ok(Value::Int(i + d)),
            other => Err(DmvError::Query(format!("cannot AddInt to {other}"))),
        },
        SetExpr::AddFloat(d) => match cur.as_float() {
            Some(f) => Ok(Value::Float(f + d)),
            None => Err(DmvError::Query(format!("cannot AddFloat to {cur}"))),
        },
    }
}

/// Resolves `Access::Auto` into an index lookup if the filter fully
/// covers some index of the table with equality conjuncts.
fn resolve_auto(schema: &Schema, table: TableId, filter: &Option<Expr>) -> DmvResult<Access> {
    let ts = schema.table(table)?;
    let Some(f) = filter else { return Ok(Access::FullScan) };
    // Collect col -> literal equality conjuncts.
    let mut eqs: HashMap<usize, Value> = HashMap::new();
    for c in f.conjuncts() {
        if let Expr::Cmp(crate::query::CmpOp::Eq, a, b) = c {
            if let (Expr::Col(i), Expr::Lit(v)) = (a.as_ref(), b.as_ref()) {
                eqs.insert(*i, v.clone());
            }
        }
    }
    for (ix_no, ix) in ts.indexes.iter().enumerate() {
        if ix.columns.iter().all(|c| eqs.contains_key(c)) {
            let key = ix.columns.iter().map(|c| eqs[c].clone()).collect();
            return Ok(Access::IndexEq { index_no: ix_no as u8, key });
        }
    }
    Ok(Access::FullScan)
}

fn base_rows(
    ctx: &mut dyn ExecContext,
    table: TableId,
    access: &Access,
    filter: &Option<Expr>,
) -> DmvResult<Vec<(RowId, Row)>> {
    let access = match access {
        Access::Auto => resolve_auto(ctx.schema(), table, filter)?,
        other => other.clone(),
    };
    let rows = match &access {
        Access::Auto => unreachable!("auto was resolved above"),
        Access::FullScan => ctx.scan(table)?,
        Access::IndexEq { index_no, key } => ctx.index_lookup(table, *index_no, key)?,
        Access::IndexRange { index_no, lo, hi, rev, scan_limit } => ctx.index_range(
            table,
            *index_no,
            lo.as_ref().map(|(k, inc)| (k.as_slice(), *inc)),
            hi.as_ref().map(|(k, inc)| (k.as_slice(), *inc)),
            *rev,
            *scan_limit,
        )?,
    };
    match filter {
        Some(f) => Ok(rows.into_iter().filter(|(_, r)| f.truthy(r)).collect()),
        None => Ok(rows),
    }
}

fn run_select(ctx: &mut dyn ExecContext, s: &Select) -> DmvResult<ResultSet> {
    // 1. Base access (note: the residual filter may reference joined
    //    columns, so it is applied after joins, not here).
    let access = match &s.access {
        Access::Auto => resolve_auto(ctx.schema(), s.table, &s.filter)?,
        other => other.clone(),
    };
    let base: Vec<(RowId, Row)> = match &access {
        Access::Auto => unreachable!(),
        Access::FullScan => ctx.scan(s.table)?,
        Access::IndexEq { index_no, key } => ctx.index_lookup(s.table, *index_no, key)?,
        Access::IndexRange { index_no, lo, hi, rev, scan_limit } => ctx.index_range(
            s.table,
            *index_no,
            lo.as_ref().map(|(k, inc)| (k.as_slice(), *inc)),
            hi.as_ref().map(|(k, inc)| (k.as_slice(), *inc)),
            *rev,
            *scan_limit,
        )?,
    };
    let mut acc: Vec<Row> = base.into_iter().map(|(_, r)| r).collect();

    // 2. Joins (left-deep nested loop; index inner when available).
    for join in &s.joins {
        let mut next = Vec::with_capacity(acc.len());
        // Fallback path scans the right table once.
        let scanned: Option<Vec<Row>> = if join.right_index.is_none() {
            Some(ctx.scan(join.table)?.into_iter().map(|(_, r)| r).collect())
        } else {
            None
        };
        for left in acc {
            let key = left.get(join.left_col).cloned().unwrap_or(Value::Null);
            if key.is_null() {
                continue;
            }
            let rights: Vec<Row> = match (&join.right_index, &scanned) {
                (Some(ix), _) => ctx
                    .index_lookup(join.table, *ix, std::slice::from_ref(&key))?
                    .into_iter()
                    .map(|(_, r)| r)
                    .collect(),
                (None, Some(all)) => {
                    all.iter().filter(|r| r.get(join.right_col) == Some(&key)).cloned().collect()
                }
                (None, None) => unreachable!(),
            };
            for right in rights {
                let mut combined = left.clone();
                combined.extend(right);
                next.push(combined);
            }
        }
        acc = next;
    }

    // 3. Residual filter.
    if let Some(f) = &s.filter {
        acc.retain(|r| f.truthy(r));
    }

    // 4. Grouped aggregation.
    if let Some(g) = &s.group_by {
        acc = aggregate(acc, &g.cols, &g.aggs);
    }

    // 5. Order.
    if !s.order_by.is_empty() {
        acc.sort_by(|a, b| {
            for &(col, desc) in &s.order_by {
                let va = a.get(col).cloned().unwrap_or(Value::Null);
                let vb = b.get(col).cloned().unwrap_or(Value::Null);
                let ord = if desc { vb.cmp(&va) } else { va.cmp(&vb) };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // 6. Limit.
    if let Some(n) = s.limit {
        acc.truncate(n);
    }

    // 7. Project.
    if let Some(cols) = &s.project {
        acc = acc
            .into_iter()
            .map(|r| cols.iter().map(|&c| r.get(c).cloned().unwrap_or(Value::Null)).collect())
            .collect();
    }

    Ok(ResultSet { rows: acc, affected: 0 })
}

fn aggregate(rows: Vec<Row>, cols: &[usize], aggs: &[AggFn]) -> Vec<Row> {
    #[derive(Clone)]
    struct AggState {
        count: u64,
        sum: f64,
        all_int: bool,
        min: Option<Value>,
        max: Option<Value>,
    }
    let fresh = AggState { count: 0, sum: 0.0, all_int: true, min: None, max: None };

    // group key -> (representative group values, per-agg state)
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in rows {
        let key: Vec<Value> =
            cols.iter().map(|&c| row.get(c).cloned().unwrap_or(Value::Null)).collect();
        let states = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            vec![fresh.clone(); aggs.len()]
        });
        for (st, agg) in states.iter_mut().zip(aggs) {
            match agg {
                AggFn::Count => st.count += 1,
                AggFn::Sum(c) | AggFn::Avg(c) => {
                    let v = row.get(*c).cloned().unwrap_or(Value::Null);
                    if let Some(f) = v.as_float() {
                        st.count += 1;
                        st.sum += f;
                        if !matches!(v, Value::Int(_)) {
                            st.all_int = false;
                        }
                    }
                }
                AggFn::Min(c) | AggFn::Max(c) => {
                    let v = row.get(*c).cloned().unwrap_or(Value::Null);
                    if !v.is_null() {
                        match agg {
                            AggFn::Min(_) => {
                                if st.min.as_ref().is_none_or(|m| v < *m) {
                                    st.min = Some(v);
                                }
                            }
                            _ => {
                                if st.max.as_ref().is_none_or(|m| v > *m) {
                                    st.max = Some(v);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    order
        .into_iter()
        .map(|key| {
            let states = &groups[&key];
            let mut out = key.clone();
            for (st, agg) in states.iter().zip(aggs) {
                let v = match agg {
                    AggFn::Count => Value::Int(st.count as i64),
                    AggFn::Sum(_) => {
                        if st.count == 0 {
                            Value::Null
                        } else if st.all_int {
                            Value::Int(st.sum as i64)
                        } else {
                            Value::Float(st.sum)
                        }
                    }
                    AggFn::Avg(_) => {
                        if st.count == 0 {
                            Value::Null
                        } else {
                            Value::Float(st.sum / st.count as f64)
                        }
                    }
                    AggFn::Min(_) => st.min.clone().unwrap_or(Value::Null),
                    AggFn::Max(_) => st.max.clone().unwrap_or(Value::Null),
                };
                out.push(v);
            }
            out
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod mock {
    //! A reference in-memory context used to test the executor (and, by
    //! the engine crates, as a behavioural oracle).

    use super::*;

    /// Trivially correct `ExecContext` backed by `Vec<Option<Row>>`.
    pub struct MockContext {
        schema: Schema,
        tables: Vec<Vec<Option<Row>>>,
    }

    impl MockContext {
        pub fn new(schema: Schema) -> Self {
            let n = schema.len();
            MockContext { schema, tables: (0..n).map(|_| Vec::new()).collect() }
        }

        fn live(&self, table: TableId) -> Vec<(RowId, Row)> {
            self.tables[table.0 as usize]
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.clone().map(|r| (RowId::new(i as u32, 0), r)))
                .collect()
        }

        fn key_cmp(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
            // compare on the shorter prefix (range bounds may be prefixes)
            let n = a.len().min(b.len());
            a[..n].cmp(&b[..n])
        }
    }

    impl ExecContext for MockContext {
        fn schema(&self) -> &Schema {
            &self.schema
        }

        fn scan(&mut self, table: TableId) -> DmvResult<Vec<(RowId, Row)>> {
            Ok(self.live(table))
        }

        fn index_lookup(
            &mut self,
            table: TableId,
            index_no: u8,
            key: &[Value],
        ) -> DmvResult<Vec<(RowId, Row)>> {
            let ix = self.schema.table(table)?.indexes[index_no as usize].clone();
            Ok(self.live(table).into_iter().filter(|(_, r)| ix.key_of(r) == key).collect())
        }

        fn index_range(
            &mut self,
            table: TableId,
            index_no: u8,
            lo: Option<(&[Value], bool)>,
            hi: Option<(&[Value], bool)>,
            rev: bool,
            limit: Option<usize>,
        ) -> DmvResult<Vec<(RowId, Row)>> {
            let ix = self.schema.table(table)?.indexes[index_no as usize].clone();
            let mut rows: Vec<(Vec<Value>, (RowId, Row))> =
                self.live(table).into_iter().map(|p| (ix.key_of(&p.1), p)).collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            if rev {
                rows.reverse();
            }
            let mut out = Vec::new();
            for (k, p) in rows {
                if let Some((lo_k, inc)) = lo {
                    let c = Self::key_cmp(&k, lo_k);
                    if c == std::cmp::Ordering::Less || (!inc && c == std::cmp::Ordering::Equal) {
                        continue;
                    }
                }
                if let Some((hi_k, inc)) = hi {
                    let c = Self::key_cmp(&k, hi_k);
                    if c == std::cmp::Ordering::Greater || (!inc && c == std::cmp::Ordering::Equal)
                    {
                        continue;
                    }
                }
                out.push(p);
                if let Some(n) = limit {
                    if out.len() >= n {
                        break;
                    }
                }
            }
            Ok(out)
        }

        fn insert(&mut self, table: TableId, row: Row) -> DmvResult<RowId> {
            let ts = self.schema.table(table)?.clone();
            for ix in &ts.indexes {
                if ix.unique {
                    let key = ix.key_of(&row);
                    if self.live(table).iter().any(|(_, r)| ix.key_of(r) == key) {
                        return Err(DmvError::DuplicateKey(format!("{} on {}", ix.name, ts.name)));
                    }
                }
            }
            let t = &mut self.tables[table.0 as usize];
            t.push(Some(row));
            Ok(RowId::new((t.len() - 1) as u32, 0))
        }

        fn update(&mut self, table: TableId, rid: RowId, row: Row) -> DmvResult<()> {
            self.tables[table.0 as usize][rid.page_no as usize] = Some(row);
            Ok(())
        }

        fn delete(&mut self, table: TableId, rid: RowId) -> DmvResult<()> {
            self.tables[table.0 as usize][rid.page_no as usize] = None;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::MockContext;
    use super::*;
    use crate::query::{CmpOp, Join};
    use crate::schema::{ColType, Column, IndexDef, TableSchema};

    fn schema() -> Schema {
        Schema::new(vec![
            TableSchema::new(
                TableId(0),
                "item",
                vec![
                    Column::new("i_id", ColType::Int),
                    Column::new("i_title", ColType::Str),
                    Column::new("i_a_id", ColType::Int),
                    Column::new("i_stock", ColType::Int),
                ],
                vec![IndexDef::unique("pk", vec![0]), IndexDef::non_unique("by_author", vec![2])],
            ),
            TableSchema::new(
                TableId(1),
                "author",
                vec![Column::new("a_id", ColType::Int), Column::new("a_name", ColType::Str)],
                vec![IndexDef::unique("pk", vec![0])],
            ),
            TableSchema::new(
                TableId(2),
                "order_line",
                vec![
                    Column::new("ol_id", ColType::Int),
                    Column::new("ol_o_id", ColType::Int),
                    Column::new("ol_i_id", ColType::Int),
                    Column::new("ol_qty", ColType::Int),
                ],
                vec![IndexDef::unique("pk", vec![0]), IndexDef::non_unique("by_order", vec![1])],
            ),
        ])
    }

    fn ctx_with_data() -> MockContext {
        let mut ctx = MockContext::new(schema());
        let items: Vec<Row> = vec![
            vec![1.into(), "alpha book".into(), 10.into(), 5.into()],
            vec![2.into(), "beta book".into(), 10.into(), 3.into()],
            vec![3.into(), "gamma tome".into(), 11.into(), 0.into()],
        ];
        for r in items {
            ctx.insert(TableId(0), r).unwrap();
        }
        ctx.insert(TableId(1), vec![10.into(), "Knuth".into()]).unwrap();
        ctx.insert(TableId(1), vec![11.into(), "Lamport".into()]).unwrap();
        // order lines: order 1 has items 1x2, 2x1; order 2 has item 1x4, 3x7
        let ols: Vec<Row> = vec![
            vec![100.into(), 1.into(), 1.into(), 2.into()],
            vec![101.into(), 1.into(), 2.into(), 1.into()],
            vec![102.into(), 2.into(), 1.into(), 4.into()],
            vec![103.into(), 2.into(), 3.into(), 7.into()],
        ];
        for r in ols {
            ctx.insert(TableId(2), r).unwrap();
        }
        ctx
    }

    #[test]
    fn point_select_by_pk() {
        let mut ctx = ctx_with_data();
        let q = Query::Select(Select::by_pk(TableId(0), vec![2.into()]));
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][1], Value::from("beta book"));
    }

    #[test]
    fn auto_access_picks_index() {
        let mut ctx = ctx_with_data();
        let q = Query::Select(Select::scan(TableId(0)).access(Access::Auto).filter(Expr::eq(0, 3)));
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn like_filter_scan() {
        let mut ctx = ctx_with_data();
        let q = Query::Select(Select::scan(TableId(0)).filter(Expr::like(1, "%book%")));
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn join_with_index() {
        let mut ctx = ctx_with_data();
        // item join author on i_a_id = a_id
        let q = Query::Select(
            Select::scan(TableId(0))
                .join(Join { table: TableId(1), left_col: 2, right_col: 0, right_index: Some(0) })
                .project(vec![1, 5]), // title, author name
        );
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert!(rs
            .rows
            .iter()
            .any(|r| r[0] == Value::from("gamma tome") && r[1] == Value::from("Lamport")));
    }

    #[test]
    fn join_without_index_falls_back_to_scan() {
        let mut ctx = ctx_with_data();
        let q = Query::Select(Select::scan(TableId(0)).join(Join {
            table: TableId(1),
            left_col: 2,
            right_col: 0,
            right_index: None,
        }));
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0].len(), 6);
    }

    #[test]
    fn bestsellers_shape_group_sum_order_limit() {
        let mut ctx = ctx_with_data();
        // order_line (ol_o_id >= 1) join item, group by i_id+title, sum qty,
        // order by sum desc limit 2
        let q = Query::Select(
            Select::scan(TableId(2))
                .access(Access::IndexRange {
                    index_no: 1,
                    lo: Some((vec![1.into()], true)),
                    hi: None,
                    rev: false,
                    scan_limit: None,
                })
                .join(Join { table: TableId(0), left_col: 2, right_col: 0, right_index: Some(0) })
                // joined row: ol(4 cols) ++ item(4 cols) -> i_id=4, i_title=5
                .group(vec![4, 5], vec![AggFn::Sum(3)])
                .order_by(2, true)
                .limit(2),
        );
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.rows.len(), 2);
        // item 3 sold 7, item 1 sold 6, item 2 sold 1
        assert_eq!(rs.rows[0][0], Value::Int(3));
        assert_eq!(rs.rows[0][2], Value::Int(7));
        assert_eq!(rs.rows[1][0], Value::Int(1));
        assert_eq!(rs.rows[1][2], Value::Int(6));
    }

    #[test]
    fn aggregates_count_avg_min_max() {
        let mut ctx = ctx_with_data();
        let q = Query::Select(
            Select::scan(TableId(2))
                .group(vec![], vec![AggFn::Count, AggFn::Avg(3), AggFn::Min(3), AggFn::Max(3)]),
        );
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(4));
        assert_eq!(rs.rows[0][1], Value::Float(3.5));
        assert_eq!(rs.rows[0][2], Value::Int(1));
        assert_eq!(rs.rows[0][3], Value::Int(7));
    }

    #[test]
    fn index_range_desc_with_scan_limit() {
        let mut ctx = ctx_with_data();
        let q = Query::Select(Select::scan(TableId(0)).access(Access::IndexRange {
            index_no: 0,
            lo: None,
            hi: None,
            rev: true,
            scan_limit: Some(2),
        }));
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Int(3));
        assert_eq!(rs.rows[1][0], Value::Int(2));
    }

    #[test]
    fn update_with_add_int() {
        let mut ctx = ctx_with_data();
        let q = Query::Update {
            table: TableId(0),
            access: Access::Auto,
            filter: Some(Expr::eq(0, 1)),
            set: vec![(3, SetExpr::AddInt(-2))],
        };
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.affected, 1);
        let check =
            execute(&mut ctx, &Query::Select(Select::by_pk(TableId(0), vec![1.into()]))).unwrap();
        assert_eq!(check.rows[0][3], Value::Int(3));
    }

    #[test]
    fn update_set_value_and_float_add() {
        let mut ctx = ctx_with_data();
        let q = Query::Update {
            table: TableId(0),
            access: Access::Auto,
            filter: Some(Expr::eq(0, 2)),
            set: vec![(1, SetExpr::Value("renamed".into()))],
        };
        assert_eq!(execute(&mut ctx, &q).unwrap().affected, 1);
        let bad = Query::Update {
            table: TableId(0),
            access: Access::Auto,
            filter: Some(Expr::eq(0, 2)),
            set: vec![(1, SetExpr::AddInt(1))],
        };
        assert!(execute(&mut ctx, &bad).is_err(), "AddInt on a string must fail");
    }

    #[test]
    fn delete_with_filter() {
        let mut ctx = ctx_with_data();
        let q =
            Query::Delete { table: TableId(2), access: Access::Auto, filter: Some(Expr::eq(1, 1)) };
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.affected, 2);
        let left = execute(&mut ctx, &Query::Select(Select::scan(TableId(2)))).unwrap();
        assert_eq!(left.rows.len(), 2);
    }

    #[test]
    fn insert_validates_and_detects_duplicates() {
        let mut ctx = ctx_with_data();
        let bad_arity = Query::Insert { table: TableId(1), rows: vec![vec![Value::Int(1)]] };
        assert!(matches!(execute(&mut ctx, &bad_arity), Err(DmvError::Schema(_))));
        let dup = Query::Insert { table: TableId(1), rows: vec![vec![10.into(), "Dup".into()]] };
        assert!(matches!(execute(&mut ctx, &dup), Err(DmvError::DuplicateKey(_))));
    }

    #[test]
    fn order_by_multiple_keys() {
        let mut ctx = ctx_with_data();
        // order items by author asc, stock desc
        let q = Query::Select(Select::scan(TableId(0)).order_by(2, false).order_by(3, true));
        let rs = execute(&mut ctx, &q).unwrap();
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn scalar_helper() {
        let mut ctx = ctx_with_data();
        let q = Query::Select(Select::by_pk(TableId(1), vec![10.into()]).project(vec![1]));
        let rs = execute(&mut ctx, &q).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::from("Knuth")));
    }

    #[test]
    fn filter_comparison_ops() {
        let mut ctx = ctx_with_data();
        let q = Query::Select(Select::scan(TableId(0)).filter(Expr::cmp(3, CmpOp::Ge, 3)));
        assert_eq!(execute(&mut ctx, &q).unwrap().rows.len(), 2);
        let q = Query::Select(Select::scan(TableId(0)).filter(Expr::cmp(3, CmpOp::Lt, 3)));
        assert_eq!(execute(&mut ctx, &q).unwrap().rows.len(), 1);
    }
}
