//! # dmv-sql
//!
//! Relational substrate shared by the in-memory engine (`dmv-memdb`) and
//! the on-disk engine (`dmv-ondisk`): typed [`value::Value`]s, table
//! [`schema`]s, a compact row codec, a structured [`query`] AST covering
//! everything the TPC-W interactions need (index lookups, range scans,
//! LIKE filters, nested-loop joins, grouped aggregation, ordering and
//! limits), and an [`exec`] executor that runs queries against any engine
//! implementing [`exec::ExecContext`].
//!
//! The middleware of the paper receives SQL text from the PHP
//! application; this reproduction uses the structured AST directly — the
//! queries are the same, only the parsing stage is elided (the scheduler
//! still sees per-query table access types, which is what its routing
//! decisions need).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod exec;
pub mod query;
pub mod row;
pub mod schema;
pub mod value;

pub use exec::{execute, ExecContext, ExecRunner, RecordingRunner, ResultSet, StatementRunner};
pub use query::{Access, AggFn, CmpOp, Expr, Join, Query, Select, SetExpr};
pub use row::{decode_row, encode_row, Row};
pub use schema::{ColType, Column, IndexDef, Schema, TableSchema};
pub use value::Value;
