//! Structured query AST.
//!
//! The application (TPC-W interactions) builds these values instead of SQL
//! text. The AST deliberately covers exactly what the benchmark and the
//! middleware need: indexed point/range access, scans, boolean filters
//! with LIKE, left-deep inner joins, grouped aggregation, ordering,
//! limits, and write statements.

use crate::row::Row;
use crate::value::Value;
use dmv_common::ids::TableId;
use serde::{Deserialize, Serialize};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    pub fn test(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// A boolean/scalar expression over a (possibly joined) row.
///
/// Column references are flat indexes into the concatenated row: the base
/// table's columns first, then each join's columns in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference (flat index).
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// SQL LIKE with `%` wildcards.
    Like(Box<Expr>, String),
    /// Membership in a literal list.
    InList(Box<Expr>, Vec<Value>),
}

impl Expr {
    /// `Col(i) op lit` convenience.
    pub fn cmp(col: usize, op: CmpOp, lit: impl Into<Value>) -> Expr {
        Expr::Cmp(op, Box::new(Expr::Col(col)), Box::new(Expr::Lit(lit.into())))
    }

    /// `Col(i) = lit` convenience.
    pub fn eq(col: usize, lit: impl Into<Value>) -> Expr {
        Expr::cmp(col, CmpOp::Eq, lit)
    }

    /// `a AND b` convenience.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `a OR b` convenience.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `Col(i) LIKE pattern` convenience.
    pub fn like(col: usize, pattern: &str) -> Expr {
        Expr::Like(Box::new(Expr::Col(col)), pattern.to_owned())
    }

    /// Evaluates to a scalar value over `row`.
    ///
    /// Boolean results are `Value::Bool`; comparisons involving NULL are
    /// false (SQL three-valued logic collapsed to two values, which is
    /// sufficient for the benchmark's queries).
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Expr::Col(i) => row.get(*i).cloned().unwrap_or(Value::Null),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let va = a.eval(row);
                let vb = b.eval(row);
                if va.is_null() || vb.is_null() {
                    return Value::Bool(false);
                }
                Value::Bool(op.test(va.cmp(&vb)))
            }
            Expr::And(a, b) => Value::Bool(a.truthy(row) && b.truthy(row)),
            Expr::Or(a, b) => Value::Bool(a.truthy(row) || b.truthy(row)),
            Expr::Not(a) => Value::Bool(!a.truthy(row)),
            Expr::Like(e, p) => Value::Bool(e.eval(row).like(p)),
            Expr::InList(e, list) => {
                let v = e.eval(row);
                Value::Bool(!v.is_null() && list.contains(&v))
            }
        }
    }

    /// Evaluates as a boolean predicate.
    pub fn truthy(&self, row: &[Value]) -> bool {
        matches!(self.eval(row), Value::Bool(true))
    }

    /// Collects `AND`-connected conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

/// How the base table's rows are accessed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Access {
    /// Let the executor pick an index from equality conjuncts, falling
    /// back to a full scan.
    Auto,
    /// Scan every row.
    FullScan,
    /// Exact-match lookup on index `index_no` of the base table.
    IndexEq {
        /// Which index.
        index_no: u8,
        /// Full key (one value per index column).
        key: Vec<Value>,
    },
    /// Range scan on index `index_no`.
    IndexRange {
        /// Which index.
        index_no: u8,
        /// Lower bound `(key prefix, inclusive)`.
        lo: Option<(Vec<Value>, bool)>,
        /// Upper bound `(key prefix, inclusive)`.
        hi: Option<(Vec<Value>, bool)>,
        /// Scan in descending key order.
        rev: bool,
        /// Stop after this many rows (applied before joins/filters).
        scan_limit: Option<usize>,
    },
}

/// An inner join step in a left-deep join chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Join {
    /// Table joined in.
    pub table: TableId,
    /// Equi-join column in the accumulated (left) row, as a flat index.
    pub left_col: usize,
    /// Equi-join column in the joined table.
    pub right_col: usize,
    /// Index on the joined table whose first column is `right_col`; when
    /// absent the join falls back to scan-and-filter.
    pub right_index: Option<u8>,
}

/// Aggregate functions (the column is a flat index into the joined row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// `COUNT(*)`
    Count,
    /// `SUM(col)`
    Sum(usize),
    /// `AVG(col)`
    Avg(usize),
    /// `MIN(col)`
    Min(usize),
    /// `MAX(col)`
    Max(usize),
}

/// Grouped aggregation: output rows are `group columns ++ aggregates`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupBy {
    /// Grouping columns (flat indexes into the joined row).
    pub cols: Vec<usize>,
    /// Aggregates appended after the grouping columns.
    pub aggs: Vec<AggFn>,
}

/// A SELECT statement.
///
/// Pipeline order: access → joins → filter → group → order → limit →
/// project. When `group_by` is set, `order_by` and `project` indexes refer
/// to the aggregated row (group columns then aggregates); otherwise to the
/// joined row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    /// Base table.
    pub table: TableId,
    /// Base access path.
    pub access: Access,
    /// Joins, applied left to right.
    pub joins: Vec<Join>,
    /// Residual filter over the joined row.
    pub filter: Option<Expr>,
    /// Grouped aggregation.
    pub group_by: Option<GroupBy>,
    /// Sort keys: `(column, descending)`.
    pub order_by: Vec<(usize, bool)>,
    /// Row limit (after ordering).
    pub limit: Option<usize>,
    /// Output columns; `None` keeps all.
    pub project: Option<Vec<usize>>,
}

impl Select {
    /// A full scan of `table` with no joins or filters.
    pub fn scan(table: TableId) -> Self {
        Select {
            table,
            access: Access::FullScan,
            joins: Vec::new(),
            filter: None,
            group_by: None,
            order_by: Vec::new(),
            limit: None,
            project: None,
        }
    }

    /// Point lookup on the primary key (index 0).
    pub fn by_pk(table: TableId, key: Vec<Value>) -> Self {
        let mut s = Self::scan(table);
        s.access = Access::IndexEq { index_no: 0, key };
        s
    }

    /// Sets the access path.
    pub fn access(mut self, access: Access) -> Self {
        self.access = access;
        self
    }

    /// Adds a join.
    pub fn join(mut self, join: Join) -> Self {
        self.joins.push(join);
        self
    }

    /// Sets the residual filter.
    pub fn filter(mut self, e: Expr) -> Self {
        self.filter = Some(e);
        self
    }

    /// Sets grouped aggregation.
    pub fn group(mut self, cols: Vec<usize>, aggs: Vec<AggFn>) -> Self {
        self.group_by = Some(GroupBy { cols, aggs });
        self
    }

    /// Adds a sort key.
    pub fn order_by(mut self, col: usize, desc: bool) -> Self {
        self.order_by.push((col, desc));
        self
    }

    /// Sets the row limit.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Sets the projection.
    pub fn project(mut self, cols: Vec<usize>) -> Self {
        self.project = Some(cols);
        self
    }
}

/// Value computed for a SET clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SetExpr {
    /// Assign a literal.
    Value(Value),
    /// Add to the current integer value (e.g. stock decrement).
    AddInt(i64),
    /// Add to the current float value.
    AddFloat(f64),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Read-only select.
    Select(Select),
    /// Insert fully-specified rows.
    Insert {
        /// Target table.
        table: TableId,
        /// Rows to insert.
        rows: Vec<Row>,
    },
    /// Update rows matched by `access` + `filter`.
    Update {
        /// Target table.
        table: TableId,
        /// Base access path for locating rows.
        access: Access,
        /// Residual filter.
        filter: Option<Expr>,
        /// `(column, new value)` assignments.
        set: Vec<(usize, SetExpr)>,
    },
    /// Delete rows matched by `access` + `filter`.
    Delete {
        /// Target table.
        table: TableId,
        /// Base access path for locating rows.
        access: Access,
        /// Residual filter.
        filter: Option<Expr>,
    },
}

impl Query {
    /// True for statements that modify data.
    pub fn is_write(&self) -> bool {
        !matches!(self, Query::Select(_))
    }

    /// All tables the statement touches (base + joins), used by the
    /// scheduler for conflict-class routing.
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            Query::Select(s) => {
                let mut v = vec![s.table];
                v.extend(s.joins.iter().map(|j| j.table));
                v
            }
            Query::Insert { table, .. }
            | Query::Update { table, .. }
            | Query::Delete { table, .. } => vec![*table],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.test(Equal));
        assert!(!CmpOp::Eq.test(Less));
        assert!(CmpOp::Ne.test(Greater));
        assert!(CmpOp::Le.test(Equal) && CmpOp::Le.test(Less) && !CmpOp::Le.test(Greater));
        assert!(CmpOp::Ge.test(Equal) && CmpOp::Ge.test(Greater));
    }

    #[test]
    fn expr_eval_basics() {
        let row = vec![Value::Int(5), Value::from("abc"), Value::Null];
        assert!(Expr::eq(0, 5).truthy(&row));
        assert!(!Expr::eq(0, 6).truthy(&row));
        assert!(Expr::cmp(0, CmpOp::Gt, 4).truthy(&row));
        assert!(Expr::like(1, "%b%").truthy(&row));
        assert!(Expr::eq(0, 5).and(Expr::like(1, "a%")).truthy(&row));
        assert!(Expr::eq(0, 9).or(Expr::eq(0, 5)).truthy(&row));
        assert!(Expr::Not(Box::new(Expr::eq(0, 9))).truthy(&row));
    }

    #[test]
    fn null_comparisons_are_false() {
        let row = vec![Value::Null];
        assert!(!Expr::eq(0, 5).truthy(&row));
        assert!(!Expr::cmp(0, CmpOp::Ne, 5).truthy(&row));
        let in_list = Expr::InList(Box::new(Expr::Col(0)), vec![Value::Null]);
        assert!(!in_list.truthy(&row));
    }

    #[test]
    fn out_of_range_col_is_null() {
        let row = vec![Value::Int(1)];
        assert!(!Expr::eq(7, 1).truthy(&row));
    }

    #[test]
    fn in_list() {
        let row = vec![Value::Int(3)];
        let e = Expr::InList(Box::new(Expr::Col(0)), vec![1.into(), 3.into()]);
        assert!(e.truthy(&row));
        let e2 = Expr::InList(Box::new(Expr::Col(0)), vec![9.into()]);
        assert!(!e2.truthy(&row));
    }

    #[test]
    fn conjunct_collection() {
        let e = Expr::eq(0, 1).and(Expr::eq(1, 2)).and(Expr::eq(2, 3));
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(Expr::eq(0, 1).conjuncts().len(), 1);
    }

    #[test]
    fn query_tables_and_write_flag() {
        let t0 = TableId(0);
        let t1 = TableId(1);
        let s = Select::scan(t0).join(Join {
            table: t1,
            left_col: 0,
            right_col: 0,
            right_index: Some(0),
        });
        let q = Query::Select(s);
        assert_eq!(q.tables(), vec![t0, t1]);
        assert!(!q.is_write());
        let u = Query::Update { table: t1, access: Access::Auto, filter: None, set: vec![] };
        assert!(u.is_write());
        assert_eq!(u.tables(), vec![t1]);
    }

    #[test]
    fn select_builder_chains() {
        let s = Select::by_pk(TableId(2), vec![7.into()])
            .filter(Expr::eq(1, "x"))
            .order_by(0, true)
            .limit(10)
            .project(vec![0, 1]);
        assert_eq!(s.table, TableId(2));
        assert!(matches!(s.access, Access::IndexEq { index_no: 0, .. }));
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.order_by, vec![(0, true)]);
    }
}
