//! Compact row codec: rows are serialized into page records with a
//! self-describing, deterministic byte encoding.

use crate::value::Value;
use dmv_common::error::{DmvError, DmvResult};

/// A row: one value per column.
pub type Row = Vec<Value>;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;

/// Encodes a row into bytes.
///
/// The encoding is deterministic: the same row always produces the same
/// bytes, which keeps replica page images bit-identical.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + row.len() * 9);
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(false) => out.push(TAG_FALSE),
            Value::Bool(true) => out.push(TAG_TRUE),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Decodes a row previously produced by [`encode_row`].
///
/// # Errors
///
/// Returns [`DmvError::Storage`] if the bytes are truncated or malformed.
pub fn decode_row(bytes: &[u8]) -> DmvResult<Row> {
    let err = || DmvError::Storage("malformed row encoding".into());
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> DmvResult<&[u8]> {
        if *at + n > bytes.len() {
            return Err(err());
        }
        let s = &bytes[*at..*at + n];
        *at += n;
        Ok(s)
    };
    let n = u16::from_le_bytes(take(&mut at, 2)?.try_into().unwrap()) as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = take(&mut at, 1)?[0];
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_FALSE => Value::Bool(false),
            TAG_TRUE => Value::Bool(true),
            TAG_INT => Value::Int(i64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap())),
            TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(
                take(&mut at, 8)?.try_into().unwrap(),
            ))),
            TAG_STR => {
                let len = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
                let s = take(&mut at, len)?;
                Value::Str(String::from_utf8(s.to_vec()).map_err(|_| err())?)
            }
            _ => return Err(err()),
        };
        row.push(v);
    }
    if at != bytes.len() {
        return Err(err());
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_row() {
        let row: Row = vec![
            Value::Int(42),
            Value::from("hello"),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
            Value::Bool(false),
        ];
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn empty_row() {
        let row: Row = vec![];
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }

    #[test]
    fn encoding_is_deterministic() {
        let row: Row = vec![Value::from("x"), Value::Int(1)];
        assert_eq!(encode_row(&row), encode_row(&row));
    }

    #[test]
    fn truncated_bytes_error() {
        let bytes = encode_row(&[Value::Int(5)]);
        assert!(decode_row(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_row(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_error() {
        let mut bytes = encode_row(&[Value::Int(5)]);
        bytes.push(0);
        assert!(decode_row(&bytes).is_err());
    }

    #[test]
    fn bad_tag_error() {
        let mut bytes = encode_row(&[Value::Null]);
        bytes[2] = 99;
        assert!(decode_row(&bytes).is_err());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "\\PC{0,32}".prop_map(Value::Str),
        ]
    }

    proptest! {
        #[test]
        fn codec_roundtrip(row in proptest::collection::vec(arb_value(), 0..20)) {
            let bytes = encode_row(&row);
            let back = decode_row(&bytes).unwrap();
            prop_assert_eq!(back.len(), row.len());
            for (a, b) in back.iter().zip(&row) {
                // bitwise compare floats (NaN-safe) via encoding again
                prop_assert_eq!(encode_row(std::slice::from_ref(a)), encode_row(std::slice::from_ref(b)));
            }
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_row(&bytes);
        }
    }
}
