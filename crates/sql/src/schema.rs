//! Table and database schemas.

use crate::value::Value;
use dmv_common::error::{DmvError, DmvResult};
use dmv_common::ids::TableId;
use serde::{Deserialize, Serialize};

/// Column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// 64-bit integer (also used for dates).
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl ColType {
    /// True if `v` is an acceptable value for this column type.
    pub fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColType::Int, Value::Int(_))
                | (ColType::Float, Value::Float(_))
                | (ColType::Float, Value::Int(_))
                | (ColType::Str, Value::Str(_))
                | (ColType::Bool, Value::Bool(_))
        )
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: &str, ty: ColType) -> Self {
        Column { name: name.into(), ty, nullable: false }
    }

    /// A nullable column.
    pub fn nullable(name: &str, ty: ColType) -> Self {
        Column { name: name.into(), ty, nullable: true }
    }
}

/// An index definition. Index 0 of every table is its primary key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name (diagnostics only).
    pub name: String,
    /// Column positions forming the key, in order.
    pub columns: Vec<usize>,
    /// Whether keys must be unique.
    pub unique: bool,
}

impl IndexDef {
    /// A unique index.
    pub fn unique(name: &str, columns: Vec<usize>) -> Self {
        IndexDef { name: name.into(), columns, unique: true }
    }

    /// A non-unique index.
    pub fn non_unique(name: &str, columns: Vec<usize>) -> Self {
        IndexDef { name: name.into(), columns, unique: false }
    }

    /// Extracts this index's key from a row.
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }
}

/// A table schema: columns plus indexes (index 0 = primary key).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table id; must equal the table's position in its [`Schema`].
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Columns.
    pub columns: Vec<Column>,
    /// Indexes; `indexes[0]` is the primary key.
    pub indexes: Vec<IndexDef>,
}

impl TableSchema {
    /// Creates a table schema.
    ///
    /// # Panics
    ///
    /// Panics if no index is given (every table needs a primary key) or an
    /// index references a column out of range.
    pub fn new(id: TableId, name: &str, columns: Vec<Column>, indexes: Vec<IndexDef>) -> Self {
        assert!(!indexes.is_empty(), "table {name} needs a primary key index");
        for ix in &indexes {
            for &c in &ix.columns {
                assert!(c < columns.len(), "index {} references column {c} out of range", ix.name);
            }
        }
        TableSchema { id, name: name.into(), columns, indexes }
    }

    /// Position of the named column.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The primary-key index definition.
    pub fn primary_key(&self) -> &IndexDef {
        &self.indexes[0]
    }

    /// Validates a row against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`DmvError::Schema`] on arity mismatch, type mismatch, or
    /// NULL in a non-nullable column.
    pub fn validate(&self, row: &[Value]) -> DmvResult<()> {
        if row.len() != self.columns.len() {
            return Err(DmvError::Schema(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (col, v) in self.columns.iter().zip(row) {
            if v.is_null() {
                if !col.nullable {
                    return Err(DmvError::Schema(format!(
                        "table {}: column {} is not nullable",
                        self.name, col.name
                    )));
                }
                continue;
            }
            if !col.ty.accepts(v) {
                return Err(DmvError::Schema(format!(
                    "table {}: column {} type mismatch for {v}",
                    self.name, col.name
                )));
            }
        }
        Ok(())
    }
}

/// A database schema: tables indexed by [`TableId`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<TableSchema>,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Panics
    ///
    /// Panics if a table's id does not match its position.
    pub fn new(tables: Vec<TableSchema>) -> Self {
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(t.id.0 as usize, i, "table {} id must match its position", t.name);
        }
        Schema { tables }
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if there are no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Table schema by id.
    ///
    /// # Errors
    ///
    /// Returns [`DmvError::Schema`] for an unknown id.
    pub fn table(&self, id: TableId) -> DmvResult<&TableSchema> {
        self.tables
            .get(id.0 as usize)
            .ok_or_else(|| DmvError::Schema(format!("unknown table id {id}")))
    }

    /// Table schema by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableSchema> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Iterator over tables.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> TableSchema {
        TableSchema::new(
            TableId(0),
            "item",
            vec![
                Column::new("i_id", ColType::Int),
                Column::new("i_title", ColType::Str),
                Column::nullable("i_cost", ColType::Float),
            ],
            vec![IndexDef::unique("pk", vec![0]), IndexDef::non_unique("by_title", vec![1])],
        )
    }

    #[test]
    fn col_lookup() {
        let t = demo_table();
        assert_eq!(t.col("i_title"), Some(1));
        assert_eq!(t.col("nope"), None);
        assert_eq!(t.primary_key().columns, vec![0]);
    }

    #[test]
    fn validate_accepts_good_row() {
        let t = demo_table();
        assert!(t.validate(&[Value::Int(1), "x".into(), Value::Float(9.5)]).is_ok());
        assert!(t.validate(&[Value::Int(1), "x".into(), Value::Null]).is_ok());
        // Int widens into Float columns
        assert!(t.validate(&[Value::Int(1), "x".into(), Value::Int(9)]).is_ok());
    }

    #[test]
    fn validate_rejects_bad_rows() {
        let t = demo_table();
        assert!(t.validate(&[Value::Int(1)]).is_err(), "arity");
        assert!(t.validate(&[Value::Null, "x".into(), Value::Null]).is_err(), "null pk");
        assert!(t.validate(&[Value::Int(1), Value::Int(2), Value::Null]).is_err(), "type mismatch");
    }

    #[test]
    fn index_key_extraction() {
        let t = demo_table();
        let row = vec![Value::Int(7), "t".into(), Value::Null];
        assert_eq!(t.indexes[1].key_of(&row), vec![Value::from("t")]);
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![demo_table()]);
        assert_eq!(s.len(), 1);
        assert!(s.table(TableId(0)).is_ok());
        assert!(s.table(TableId(9)).is_err());
        assert!(s.table_by_name("item").is_some());
        assert!(s.table_by_name("none").is_none());
    }

    #[test]
    #[should_panic]
    fn mismatched_table_id_panics() {
        let mut t = demo_table();
        t.id = TableId(5);
        let _ = Schema::new(vec![t]);
    }

    #[test]
    #[should_panic]
    fn table_without_pk_panics() {
        let _ = TableSchema::new(TableId(0), "x", vec![Column::new("a", ColType::Int)], vec![]);
    }
}
