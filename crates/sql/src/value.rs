//! Typed values with a total order suitable for index keys.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A typed SQL value.
///
/// Values have a *total* order (used for B+Tree index keys and ORDER BY):
/// values of different types order by type rank (`Null < Bool < numbers <
/// Str`); `Int` and `Float` compare numerically with each other; `NaN`
/// sorts above all other floats and equal to itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (also used for dates as days since epoch).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Type rank used for cross-type ordering.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, widening `Int` if needed.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL LIKE with `%` wildcards (multi-char) anywhere in the pattern.
    /// Non-`Str` values never match.
    pub fn like(&self, pattern: &str) -> bool {
        let Some(s) = self.as_str() else { return false };
        like_match(s, pattern)
    }
}

/// Greedy `%`-wildcard matcher (case-sensitive, `_` not supported — the
/// TPC-W search queries only use `%`).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let segments: Vec<&str> = pattern.split('%').collect();
    if segments.len() == 1 {
        return s == pattern;
    }
    let mut rest = s;
    // First segment must be a prefix.
    let first = segments[0];
    if !rest.starts_with(first) {
        return false;
    }
    rest = &rest[first.len()..];
    // Last segment must be a suffix (checked at the end).
    let last = segments[segments.len() - 1];
    // Middle segments match greedily left to right.
    for seg in &segments[1..segments.len() - 1] {
        if seg.is_empty() {
            continue;
        }
        match rest.find(seg) {
            Some(pos) => rest = &rest[pos + seg.len()..],
            None => return false,
        }
    }
    rest.ends_with(last) && rest.len() >= last.len()
}

fn float_total_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => float_total_cmp(*a, *b),
            (Int(a), Float(b)) => float_total_cmp(*a as f64, *b),
            (Float(a), Int(b)) => float_total_cmp(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_rank_order() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(i64::MAX) < Value::Str(String::new()));
    }

    #[test]
    fn numeric_cross_compare() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn nan_is_self_equal_and_max() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn hash_consistent_with_eq_for_numbers() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(42)), h(&Value::Float(42.0)));
    }

    #[test]
    fn like_exact() {
        assert!(Value::from("abc").like("abc"));
        assert!(!Value::from("abc").like("abd"));
        assert!(!Value::from("abc").like("ab"));
    }

    #[test]
    fn like_wildcards() {
        let v = Value::from("the quick brown fox");
        assert!(v.like("%quick%"));
        assert!(v.like("the%"));
        assert!(v.like("%fox"));
        assert!(v.like("the%fox"));
        assert!(v.like("%the quick brown fox%"));
        assert!(v.like("%"));
        assert!(!v.like("%cat%"));
        assert!(!v.like("fox%"));
    }

    #[test]
    fn like_multiple_middles() {
        assert!(like_match("abcdefg", "a%c%e%g"));
        assert!(!like_match("abcdefg", "a%e%c%g"));
        assert!(like_match("aaa", "a%a"));
        assert!(!like_match("a", "a%a"));
    }

    #[test]
    fn like_non_string_is_false() {
        assert!(!Value::Int(5).like("%5%"));
        assert!(!Value::Null.like("%"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "[a-z]{0,8}".prop_map(Value::from),
        ]
    }

    proptest! {
        #[test]
        fn ordering_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
            let ab = a.cmp(&b);
            let ba = b.cmp(&a);
            prop_assert_eq!(ab, ba.reverse());
        }

        #[test]
        fn ordering_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
            let mut v = [a, b, c];
            v.sort();
            prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
        }

        #[test]
        fn eq_reflexive(a in arb_value()) {
            prop_assert_eq!(a.clone(), a);
        }
    }
}
