//! One workload driver for the three systems under test.

use crate::interactions::Interaction;
use crate::populate::Population;
use dmv_common::error::{DmvError, DmvResult};
use dmv_core::Session;
use dmv_ondisk::{DiskDb, InnoDbTier};
use std::sync::Arc;

/// A system that can execute TPC-W interactions.
#[derive(Clone)]
pub enum Backend {
    /// The DMV in-memory middleware tier (the paper's system).
    Dmv(Session),
    /// A stand-alone on-disk database (the Figure 3 baseline).
    Disk(Arc<DiskDb>),
    /// The replicated on-disk tier (the Figure 5 fail-over baseline).
    Tier(Arc<InnoDbTier>),
}

impl Backend {
    /// Executes one planned interaction, retrying retryable aborts up to
    /// `retries` times.
    ///
    /// # Errors
    ///
    /// The last error if retries are exhausted or a non-retryable error
    /// occurs.
    pub fn run(&self, interaction: &mut Interaction, retries: usize) -> DmvResult<()> {
        match self {
            Backend::Dmv(session) => {
                if interaction.kind.is_update() {
                    let tables = interaction.kind.tables();
                    session.update_with_retry(&tables, &mut interaction.exec, retries)
                } else {
                    session.read_with_retry(&mut interaction.exec, retries)
                }
            }
            Backend::Disk(db) => {
                let mut last: Option<DmvError> = None;
                for attempt in 0..=retries {
                    if attempt > 0 {
                        dmv_common::rng::retry_backoff(attempt);
                    }
                    match db.run_with(&mut interaction.exec) {
                        Ok(_) => return Ok(()),
                        Err(e) if e.is_retryable() => last = Some(e),
                        Err(e) => return Err(e),
                    }
                }
                Err(last.expect("at least one attempt"))
            }
            Backend::Tier(tier) => {
                let mut last: Option<DmvError> = None;
                for attempt in 0..=retries {
                    if attempt > 0 {
                        dmv_common::rng::retry_backoff(attempt);
                    }
                    let res = if interaction.kind.is_update() {
                        tier.update_with(&mut interaction.exec)
                    } else {
                        tier.read_with(&mut interaction.exec)
                    };
                    match res {
                        Ok(()) => return Ok(()),
                        Err(e) if e.is_retryable() => last = Some(e),
                        Err(e) => return Err(e),
                    }
                }
                Err(last.expect("at least one attempt"))
            }
        }
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Backend::Dmv(_) => "Dmv",
            Backend::Disk(_) => "Disk",
            Backend::Tier(_) => "Tier",
        };
        f.debug_tuple("Backend").field(&name).finish()
    }
}

/// Loads a generated population into a DMV cluster (before
/// `finish_load`).
///
/// # Errors
///
/// Propagates load errors.
pub fn load_cluster(cluster: &dmv_core::DmvCluster, pop: &Population) -> DmvResult<()> {
    for (table, rows) in &pop.tables {
        cluster.load_rows(*table, rows.clone())?;
    }
    Ok(())
}

/// Loads a generated population into a stand-alone on-disk database.
///
/// # Errors
///
/// Propagates load errors.
pub fn load_diskdb(db: &DiskDb, pop: &Population) -> DmvResult<()> {
    for (table, rows) in &pop.tables {
        db.bulk_load(*table, rows)?;
    }
    Ok(())
}

/// Loads a generated population into every replica of an on-disk tier.
///
/// # Errors
///
/// Propagates load errors.
pub fn load_tier(tier: &InnoDbTier, pop: &Population) -> DmvResult<()> {
    for (table, rows) in &pop.tables {
        tier.bulk_load(*table, rows)?;
    }
    Ok(())
}
